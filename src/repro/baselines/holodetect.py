"""HoloDetect-style error detection: few-shot learning with augmentation.

HoloDetect (Heidari et al., SIGMOD'19) learns an error detector from a
handful of labeled examples by (1) learning the *error channel* — how
errors transform clean values — from the labeled errors, (2) augmenting
the training set by pushing clean values through that channel, and (3)
training a classifier on representation features of each cell.

This reimplementation keeps all three stages: the channel is the typo
family observed in the examples, augmentation corrupts sampled clean cells,
and the classifier is logistic regression over cell-representation features
(column frequency, vocabulary overlap, character-trigram likelihood under
the column's clean language model, numeric z-score, format signals).
"""

from __future__ import annotations

import math
import random
import statistics
from collections import Counter
from typing import Sequence

import numpy as np

from repro.data.instances import EDInstance
from repro.datasets.corruption import typo
from repro.errors import EvaluationError
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import MultinomialNB
from repro.ml.scaling import StandardScaler
from repro.text.similarity import ngrams


def _best_f1_threshold(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Pick the probability cut maximizing F1 over the given labels."""
    best_threshold, best_f1 = 0.5, -1.0
    for threshold in np.linspace(0.05, 0.95, 19):
        predicted = probabilities >= threshold
        tp = float(np.sum(predicted & (labels == 1)))
        fp = float(np.sum(predicted & (labels == 0)))
        fn = float(np.sum(~predicted & (labels == 1)))
        denom = 2 * tp + fp + fn
        f1 = 2 * tp / denom if denom else 0.0
        if f1 > best_f1:
            best_f1, best_threshold = f1, float(threshold)
    return best_threshold


class HoloDetectDetector:
    """Few-shot, augmentation-based ML error detector."""

    def __init__(self, augmentation_factor: int = 20, seed: int = 0):
        if augmentation_factor < 1:
            raise EvaluationError("augmentation_factor must be >= 1")
        self._augmentation_factor = augmentation_factor
        self._seed = seed
        self._column_counts: dict[str, Counter[str]] = {}
        self._column_vocab: dict[str, set[str]] = {}
        self._token_counts: dict[str, Counter[str]] = {}
        self._numeric_stats: dict[str, tuple[float, float]] = {}
        self._fds: dict[tuple[str, str], dict[str, str]] = {}
        self._trigram_model: MultinomialNB | None = None
        self._classifier: LogisticRegression | None = None
        self._scaler: StandardScaler | None = None
        self._threshold = 0.5

    # -- representation ------------------------------------------------------

    def _features(
        self,
        attribute: str,
        value: str,
        record_values: dict[str, str] | None = None,
    ) -> list[float]:
        counts = self._column_counts.get(attribute, Counter())
        total = sum(counts.values()) or 1
        # Leave-one-out frequency: the dirty population contains this very
        # cell, so its own occurrence must not vouch for it.
        frequency = max(counts[value] - 1, 0) / total
        vocab = self._column_vocab.get(attribute, set())
        tokens = value.replace("-", " ").split()
        in_vocab = (
            sum(1 for t in tokens if t in vocab) / len(tokens) if tokens else 1.0
        )
        # The weakest token's column support (leave-one-out): one typo'd
        # token in an otherwise familiar value drives this to zero.
        token_counts = self._token_counts.get(attribute, Counter())
        # Digit-bearing tokens (house numbers, phones) are naturally unique
        # and must not read as typos.
        word_tokens = [t for t in tokens if not any(c.isdigit() for c in t)]
        if word_tokens:
            min_support = min(
                max(token_counts.get(t, 0) - 1, 0) for t in word_tokens
            )
        else:
            min_support = 5
        min_support_feature = math.log1p(min_support)
        trigram_ll = 0.0
        if self._trigram_model is not None and self._trigram_model.is_fitted:
            grams = ngrams(value, 3)
            if grams:
                clean = self._trigram_model.log_likelihood(grams, "clean")
                dirty = self._trigram_model.log_likelihood(grams, "dirty")
                trigram_ll = (clean - dirty) / len(grams)
        z = 0.0
        numeric = 0.0
        stats = self._numeric_stats.get(attribute)
        if stats is not None:
            try:
                x = float(value)
                numeric = 1.0
                mean, std = stats
                z = min(abs(x - mean) / std, 10.0)
            except ValueError:
                z = 10.0  # text in a numeric column
        has_digit_and_alpha = float(
            any(c.isdigit() for c in value) and any(c.isalpha() for c in value)
        )
        fd_violation = 0.0
        if record_values:
            for (a, b), mapping in self._fds.items():
                if b != attribute:
                    continue
                witness = record_values.get(a)
                if witness is None:
                    continue
                expected = mapping.get(witness)
                if expected is not None and expected != value:
                    fd_violation = 1.0
                    break
        return [
            frequency,
            in_vocab,
            min_support_feature,
            trigram_ll,
            z,
            numeric,
            has_digit_and_alpha,
            fd_violation,
            float(len(value)),
        ]

    def _record_values(self, instance: EDInstance) -> dict[str, str]:
        return {
            name: str(value)
            for name, value in instance.record
            if value is not None
        }

    # -- training --------------------------------------------------------------

    def fit(
        self,
        population: Sequence[EDInstance],
        labeled: Sequence[EDInstance],
    ) -> "HoloDetectDetector":
        """Fit from the unlabeled population plus a few labeled examples.

        ``population`` provides column statistics (no labels read);
        ``labeled`` is the few-shot supervision the error channel and the
        classifier are learned from.
        """
        if not population or not labeled:
            raise EvaluationError("HoloDetect needs a population and labels")
        self._profile_columns(population)
        rng = random.Random(self._seed)

        texts: list[tuple[str, str]] = []  # (value, class) for trigram LM
        rows: list[list[float]] = []
        ys: list[int] = []
        for instance in labeled:
            value = instance.record[instance.target_attribute]
            if value is None:
                continue
            label = "dirty" if instance.label else "clean"
            texts.append((str(value), label))
            rows.append(
                self._features(
                    instance.target_attribute,
                    str(value),
                    self._record_values(instance),
                )
            )
            ys.append(int(instance.label))

        # Augmentation: push clean cells through the learned error channel.
        clean_cells = [
            (inst.target_attribute, str(inst.record[inst.target_attribute]))
            for inst in labeled
            if not inst.label and inst.record[inst.target_attribute] is not None
        ]
        if clean_cells:
            for __ in range(self._augmentation_factor * len(clean_cells)):
                attribute, value = rng.choice(clean_cells)
                if not value:
                    continue
                corrupted = typo(value, rng).corrupted
                texts.append((corrupted, "dirty"))
                texts.append((value, "clean"))

        self._trigram_model = MultinomialNB().fit(
            [ngrams(v, 3) for v, __ in texts], [c for __, c in texts]
        )
        # Re-extract features now that the trigram model exists, and add the
        # augmented cells as labeled rows too.
        rows = []
        ys = []
        for instance in labeled:
            value = instance.record[instance.target_attribute]
            if value is None:
                continue
            rows.append(
                self._features(
                    instance.target_attribute,
                    str(value),
                    self._record_values(instance),
                )
            )
            ys.append(int(instance.label))
        # Augment at the labeled prior so the classifier's probabilities are
        # calibrated for the deployment class balance.
        positive_rate = sum(ys) / len(ys) if ys else 0.25
        if clean_cells:
            for __ in range(2 * self._augmentation_factor * len(clean_cells)):
                attribute, value = rng.choice(clean_cells)
                if not value:
                    continue
                if rng.random() < positive_rate:
                    rows.append(self._features(attribute, typo(value, rng).corrupted))
                    ys.append(1)
                else:
                    rows.append(self._features(attribute, value))
                    ys.append(0)
        X = np.asarray(rows, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        if len(set(ys)) < 2:
            raise EvaluationError("labeled examples cover only one class")
        self._scaler = StandardScaler().fit(X)
        scaled = self._scaler.transform(X)
        # Proper validation split for threshold tuning: probabilities on
        # rows the model was fit on are overconfident and would drag the
        # operating point toward extremes.
        order = np.arange(len(y))
        random.Random(self._seed + 1).shuffle(order)
        cut = max(1, int(0.7 * len(order)))
        train_idx, valid_idx = order[:cut], order[cut:]
        tuner = LogisticRegression(n_iter=800, class_weight=None).fit(
            scaled[train_idx], y[train_idx]
        )
        if len(valid_idx) >= 10 and len(set(y[valid_idx].tolist())) == 2:
            tuned = _best_f1_threshold(
                tuner.predict_proba(scaled[valid_idx]), y[valid_idx]
            )
            # The augmented validation rows under-represent the subtle
            # errors, which biases the tuned point low; clamp to a sane
            # operating band.
            self._threshold = min(max(tuned, 0.55), 0.9)
        self._classifier = LogisticRegression(n_iter=800, class_weight=None).fit(
            scaled, y
        )
        return self

    def _profile_columns(self, population: Sequence[EDInstance]) -> None:
        self._column_counts = {}
        numeric_values: dict[str, list[float]] = {}
        for instance in population:
            for name, value in instance.record:
                if value is None:
                    continue
                self._column_counts.setdefault(name, Counter())[str(value)] += 1
                try:
                    numeric_values.setdefault(name, []).append(float(value))
                except (TypeError, ValueError):
                    pass
        # Column vocabulary with support >= 2: a token seen in exactly one
        # cell of a dirty column is as likely a typo as a word, so it must
        # not self-vouch.
        self._column_vocab = {}
        self._token_counts = {}
        for name, counts in self._column_counts.items():
            token_counts: Counter[str] = Counter()
            for value, count in counts.items():
                for token in value.replace("-", " ").split():
                    token_counts[token] += count
            self._token_counts[name] = token_counts
            self._column_vocab[name] = {
                token for token, count in token_counts.items() if count >= 2
            }
        self._numeric_stats = {}
        for name, values in numeric_values.items():
            total = sum(self._column_counts[name].values())
            if len(values) >= 10 and len(values) >= 0.9 * total:
                mean = statistics.fmean(values)
                std = statistics.pstdev(values) or 1.0
                self._numeric_stats[name] = (mean, std)
        self._mine_fds(population)

    def _mine_fds(self, population: Sequence[EDInstance]) -> None:
        """Mine approximate FDs between small-vocabulary columns."""
        small = [
            name
            for name, counts in self._column_counts.items()
            if 1 < len(counts) <= 60
        ]
        records = [inst.record for inst in population]
        self._fds = {}
        for a in small:
            for b in small:
                if a == b:
                    continue
                mapping: dict[str, Counter[str]] = {}
                for record in records:
                    va, vb = record[a], record[b]
                    if va is None or vb is None:
                        continue
                    mapping.setdefault(str(va), Counter())[str(vb)] += 1
                total = sum(sum(c.values()) for c in mapping.values())
                if total == 0:
                    continue
                agreements = sum(
                    c.most_common(1)[0][1] for c in mapping.values()
                )
                if agreements / total >= 0.9:
                    self._fds[(a, b)] = {
                        va: c.most_common(1)[0][0]
                        for va, c in mapping.items()
                    }

    # -- inference ---------------------------------------------------------------

    def predict_one(self, instance: EDInstance) -> bool:
        if self._classifier is None or self._scaler is None:
            raise EvaluationError("predict called before fit")
        value = instance.record[instance.target_attribute]
        if value is None:
            return False
        features = np.asarray(
            [
                self._features(
                    instance.target_attribute,
                    str(value),
                    self._record_values(instance),
                )
            ]
        )
        probability = self._classifier.predict_proba(
            self._scaler.transform(features)
        )[0]
        return bool(probability >= self._threshold)

    def predict(self, instances: Sequence[EDInstance]) -> list[bool]:
        return [self.predict_one(inst) for inst in instances]
