"""Magellan-style entity matching: feature engineering + a trained model.

Magellan (Konda et al., PVLDB'16) generates a per-attribute similarity
feature vector for each candidate pair and trains a conventional ML
classifier.  This reimplementation produces, per shared attribute: exact
match, token Jaccard, Levenshtein similarity, Monge-Elkan, numeric
closeness, and missingness indicators — then fits logistic regression.

Its published profile — strong on clean benchmarks (Fodors-Zagats 100,
DBLP-ACM 98.4), weak on dirty ones (Amazon-Google 49.1) — follows from the
mechanism: hand-built string similarities cannot see that two differently
worded titles are the same product.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.instances import EMInstance
from repro.errors import EvaluationError
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler
from repro.text.normalize import normalize_text
from repro.text.similarity import (
    jaccard,
    levenshtein_similarity,
    monge_elkan,
)


def _numeric(value: str) -> float | None:
    try:
        return float(value.replace("$", "").replace("%", "").replace(",", ""))
    except ValueError:
        return None


def attribute_features(a: str | None, b: str | None) -> list[float]:
    """The Magellan feature set for one attribute pair."""
    if a is None or b is None:
        # Missingness indicators; similarity features are neutral zeros.
        return [0.0, 0.0, 0.0, 0.0, 0.0, 1.0]
    a_norm, b_norm = normalize_text(str(a)), normalize_text(str(b))
    exact = float(a_norm == b_norm)
    tokens_a, tokens_b = a_norm.split(), b_norm.split()
    na, nb = _numeric(str(a)), _numeric(str(b))
    if na is not None and nb is not None:
        denom = max(abs(na), abs(nb), 1e-9)
        numeric_sim = max(0.0, 1.0 - abs(na - nb) / denom)
    else:
        numeric_sim = 0.0
    return [
        exact,
        jaccard(tokens_a, tokens_b),
        levenshtein_similarity(a_norm, b_norm),
        monge_elkan(tokens_a, tokens_b),
        numeric_sim,
        0.0,
    ]


def pair_features(instance: EMInstance) -> list[float]:
    """Concatenated per-attribute features, in schema order."""
    features: list[float] = []
    left, right = instance.pair.left, instance.pair.right
    for name in left.schema.attribute_names:
        a = left[name]
        b = right[name] if name in right.schema else None
        features.extend(
            attribute_features(
                str(a) if a is not None else None,
                str(b) if b is not None else None,
            )
        )
    return features


class MagellanMatcher:
    """Feature-engineering EM with logistic regression."""

    def __init__(self, threshold: float = 0.5):
        if not 0.0 < threshold < 1.0:
            raise EvaluationError("threshold must be in (0, 1)")
        self._threshold = threshold
        self._classifier: LogisticRegression | None = None
        self._scaler: StandardScaler | None = None

    def fit(self, train: Sequence[EMInstance]) -> "MagellanMatcher":
        if not train:
            raise EvaluationError("cannot fit Magellan on zero instances")
        X = np.asarray([pair_features(i) for i in train], dtype=np.float64)
        y = np.asarray([float(i.label) for i in train])
        if len(set(y.tolist())) < 2:
            raise EvaluationError("training set covers only one class")
        self._scaler = StandardScaler().fit(X)
        self._classifier = LogisticRegression(n_iter=800).fit(
            self._scaler.transform(X), y
        )
        return self

    def predict_one(self, instance: EMInstance) -> bool:
        if self._classifier is None or self._scaler is None:
            raise EvaluationError("predict called before fit")
        features = np.asarray([pair_features(instance)])
        probability = self._classifier.predict_proba(
            self._scaler.transform(features)
        )[0]
        return bool(probability >= self._threshold)

    def predict(self, instances: Sequence[EMInstance]) -> list[bool]:
        return [self.predict_one(inst) for inst in instances]
