"""HoloClean-style error detection: denial constraints + statistics.

HoloClean (Rekatsinas et al., PVLDB'17) detects candidate errors with
integrity constraints and statistical outlier signals, then repairs them
by probabilistic inference.  This reimplementation covers the detection
side the paper scores (F1 on cell error labels):

- **approximate functional dependencies** mined from the observed records
  (e.g. ``education -> educationnum``); a cell violating the majority
  mapping of a high-confidence FD is flagged;
- **numeric outliers** by z-score, plus type violations (text in a numeric
  column).

Its published weakness — mediocre F1 (~52) on these benchmarks — comes
from exactly what this implementation reproduces: a single-character typo
in an open-text cell violates no constraint and no statistic, so recall on
typo-dominated benchmarks is structurally limited.
"""

from __future__ import annotations

import statistics
from collections import Counter, defaultdict
from typing import Sequence

from repro.data.instances import EDInstance
from repro.errors import EvaluationError

#: a column is "categorical enough" for frequency signals below this ratio
_CARDINALITY_RATIO = 0.2
#: FDs must hold on at least this fraction of co-occurrences
_FD_CONFIDENCE = 0.95


class HoloCleanDetector:
    """Constraint- and statistics-based error detector."""

    def __init__(self, min_support: int = 2):
        if min_support < 1:
            raise EvaluationError("min_support must be >= 1")
        self._min_support = min_support
        self._value_counts: dict[str, Counter[str]] = {}
        self._n_records = 0
        self._categorical: set[str] = set()
        self._numeric_stats: dict[str, tuple[float, float]] = {}
        self._fds: dict[tuple[str, str], dict[str, str]] = {}

    def fit(self, instances: Sequence[EDInstance]) -> "HoloCleanDetector":
        """Mine statistics and FDs from the instances' records.

        HoloClean profiles the *dirty* dataset itself; no labels are used.
        """
        if not instances:
            raise EvaluationError("cannot fit HoloClean on zero instances")
        records = [inst.record for inst in instances]
        self._n_records = len(records)
        attributes = records[0].schema.attribute_names
        self._value_counts = {a: Counter() for a in attributes}
        numeric_values: dict[str, list[float]] = defaultdict(list)
        for record in records:
            for name, value in record:
                if value is None:
                    continue
                self._value_counts[name][str(value)] += 1
                try:
                    numeric_values[name].append(float(value))
                except (TypeError, ValueError):
                    pass
        for name in attributes:
            counts = self._value_counts[name]
            total = sum(counts.values())
            if total and len(counts) / total <= _CARDINALITY_RATIO:
                self._categorical.add(name)
            values = numeric_values.get(name, [])
            if len(values) >= 10 and len(values) >= 0.9 * total:
                mean = statistics.fmean(values)
                std = statistics.pstdev(values) or 1.0
                self._numeric_stats[name] = (mean, std)
        self._mine_fds(records, attributes)
        return self

    def _mine_fds(self, records, attributes) -> None:
        """Mine approximate FDs a -> b between categorical columns."""
        for a in self._categorical:
            for b in self._categorical:
                if a == b:
                    continue
                mapping: dict[str, Counter[str]] = defaultdict(Counter)
                for record in records:
                    va, vb = record[a], record[b]
                    if va is None or vb is None:
                        continue
                    mapping[str(va)][str(vb)] += 1
                total = sum(sum(c.values()) for c in mapping.values())
                if total == 0:
                    continue
                agreements = sum(c.most_common(1)[0][1] for c in mapping.values())
                if agreements / total >= _FD_CONFIDENCE:
                    self._fds[(a, b)] = {
                        va: c.most_common(1)[0][0] for va, c in mapping.items()
                    }

    def predict_one(self, instance: EDInstance) -> bool:
        """Is the target cell erroneous according to constraints/statistics?"""
        if self._n_records == 0:
            raise EvaluationError("predict called before fit")
        record = instance.record
        attribute = instance.target_attribute
        value = record[attribute]
        if value is None:
            return False
        value = str(value)
        # Domain constraint: in a *small closed* vocabulary (sex, state),
        # an unseen value violates the column's domain.  Open-text columns
        # get no such signal — that is HoloClean's structural blind spot.
        counts = self._value_counts.get(attribute, Counter())
        if (
            attribute in self._categorical
            and len(counts) <= 20
            and counts[value] <= 1
        ):
            # The value occurs (at most) only in this very cell of a
            # small, enumerable vocabulary: a domain violation.  Columns
            # with larger vocabularies get no rule — users write denial
            # constraints only for domains they can enumerate, which is
            # HoloClean's coverage gap on these benchmarks.
            return True
        # FD violations in either direction involving this attribute.
        for (a, b), mapping in self._fds.items():
            if b != attribute:
                continue
            va = record[a]
            if va is None:
                continue
            expected = mapping.get(str(va))
            if expected is not None and expected != value:
                return True
        # Numeric outlier.
        stats = self._numeric_stats.get(attribute)
        if stats is not None:
            try:
                x = float(value)
            except ValueError:
                return True  # non-numeric value in a numeric column
            mean, std = stats
            if abs(x - mean) / std > 3.0:
                return True
        return False

    def predict(self, instances: Sequence[EDInstance]) -> list[bool]:
        return [self.predict_one(inst) for inst in instances]
