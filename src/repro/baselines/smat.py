"""SMAT-style schema matching: learned similarity over (name, description).

SMAT (Zhang et al., ADBIS'21) trains an attention-based model over
attribute names and descriptions.  The offline stand-in trains logistic
regression over a similarity feature vector of the pair — token overlap of
the names, character n-gram cosine, description token-set similarity,
length ratios — which is the same *learned lexical alignment* family, and
reproduces SMAT's published weakness on Synthea (38.5 F1): lexical
evidence is misleading when negatives share vocabulary and positives do
not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.instances import SMInstance
from repro.errors import EvaluationError
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler
from repro.text.similarity import jaccard, ngrams, token_set_ratio


def _name_tokens(name: str) -> list[str]:
    return [t for t in name.replace("_", " ").replace("-", " ").split() if t]


def _pair_features(instance: SMInstance) -> list[float]:
    left, right = instance.pair.left, instance.pair.right
    name_l, name_r = left.name, right.name
    desc_l, desc_r = left.description, right.description
    tokens_l, tokens_r = _name_tokens(name_l), _name_tokens(name_r)
    grams_l, grams_r = set(ngrams(name_l, 3)), set(ngrams(name_r, 3))
    gram_jaccard = (
        len(grams_l & grams_r) / len(grams_l | grams_r)
        if grams_l | grams_r
        else 1.0
    )
    return [
        jaccard(tokens_l, tokens_r),
        gram_jaccard,
        token_set_ratio(desc_l, desc_r),
        token_set_ratio(name_l.replace("_", " "), desc_r),
        token_set_ratio(name_r.replace("_", " "), desc_l),
        abs(len(tokens_l) - len(tokens_r)),
        min(len(name_l), len(name_r)) / max(len(name_l), len(name_r), 1),
    ]


class SMATMatcher:
    """Trained lexical schema matcher."""

    def __init__(self) -> None:
        self._classifier: LogisticRegression | None = None
        self._scaler: StandardScaler | None = None

    def fit(self, train: Sequence[SMInstance]) -> "SMATMatcher":
        if not train:
            raise EvaluationError("cannot fit SMAT on zero instances")
        X = np.asarray([_pair_features(i) for i in train], dtype=np.float64)
        y = np.asarray([float(i.label) for i in train])
        if len(set(y.tolist())) < 2:
            raise EvaluationError("training set covers only one class")
        self._scaler = StandardScaler().fit(X)
        self._classifier = LogisticRegression(n_iter=800, nonnegative=True).fit(
            self._scaler.transform(X), y
        )
        return self

    def predict_one(self, instance: SMInstance) -> bool:
        if self._classifier is None or self._scaler is None:
            raise EvaluationError("predict called before fit")
        features = np.asarray([_pair_features(instance)])
        return bool(self._classifier.predict(self._scaler.transform(features))[0])

    def predict(self, instances: Sequence[SMInstance]) -> list[bool]:
        return [self.predict_one(inst) for inst in instances]
