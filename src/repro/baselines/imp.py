"""IMP-style data imputation: semantics of the record context.

IMP (Mei et al., ICDE'21) imputes missing cells by capturing the semantics
of the record's observed attributes with a pre-trained language model and
attending to the context features that predict the missing value.  The
offline stand-in keeps the mechanism — *learn which context features
predict the target value* — with TF-IDF-weighted context vectors and
nearest-class-centroid retrieval: IDF plays the attention's role of
down-weighting uninformative context (a cuisine type appears everywhere;
the phone trigram ``404`` appears only with Atlanta records).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.instances import DIInstance
from repro.errors import EvaluationError
from repro.text.normalize import normalize_text
from repro.text.similarity import ngrams
from repro.text.tfidf import TfidfVectorizer


def context_terms(instance: DIInstance) -> list[str]:
    """Feature terms of the record's observed attributes.

    Word tokens capture categorical evidence (brand names); character
    trigrams of digit-bearing tokens capture sub-token evidence (area
    codes, street numbers) without flooding the space with name trigrams.
    """
    terms: list[str] = []
    for name, value in instance.record:
        if value is None or name == instance.target_attribute:
            continue
        text = normalize_text(str(value))
        for token in text.split():
            terms.append(f"{name}={token}")
            if any(ch.isdigit() for ch in token):
                terms.extend(f"{name}~{g}" for g in ngrams(token, 3))
    return terms


class IMPImputer:
    """Context-retrieval imputer with TF-IDF attention weighting."""

    def __init__(self) -> None:
        self._vectorizer = TfidfVectorizer(analyzer=self._analyze)
        self._centroids: np.ndarray | None = None
        self._values: list[str] = []
        self._documents: dict[str, list[str]] = {}

    @staticmethod
    def _analyze(document: str) -> list[str]:
        # Documents are pre-tokenized term lists joined by newlines.
        return document.split("\n")

    def fit(self, train: Sequence[DIInstance]) -> "IMPImputer":
        """Fit on training instances whose true value is known."""
        if not train:
            raise EvaluationError("cannot fit IMP on zero instances")
        by_value: dict[str, list[str]] = {}
        all_documents: list[str] = []
        for instance in train:
            document = "\n".join(context_terms(instance))
            all_documents.append(document)
            by_value.setdefault(instance.true_value, []).append(document)
        self._vectorizer.fit(all_documents)
        self._values = sorted(by_value)
        centroids = []
        for value in self._values:
            matrix = self._vectorizer.transform(by_value[value])
            centroid = matrix.mean(axis=0)
            norm = np.linalg.norm(centroid)
            centroids.append(centroid / norm if norm > 0 else centroid)
        self._centroids = np.vstack(centroids)
        return self

    def predict_one(self, instance: DIInstance) -> str:
        if self._centroids is None:
            raise EvaluationError("predict called before fit")
        document = "\n".join(context_terms(instance))
        vector = self._vectorizer.transform([document])[0]
        scores = self._centroids @ vector
        return self._values[int(np.argmax(scores))]

    def predict(self, instances: Sequence[DIInstance]) -> list[str]:
        return [self.predict_one(inst) for inst in instances]
