"""Ditto-style entity matching: serialized pairs + dense representations.

Ditto (Li et al., PVLDB'20) serializes both records into one sequence,
fine-tunes a pre-trained language model on it, and adds domain-knowledge
injections (marking identifiers like model numbers) plus normalization.
The offline stand-in keeps the architecture's load-bearing pieces:

- whole-record serialization (so token evidence crosses attribute
  boundaries, which is exactly what lifts Ditto above Magellan on dirty
  data),
- dense hashing embeddings of both serializations with interaction
  features (cosine, elementwise-product summary),
- the domain-knowledge injection: identifier tokens are detected and
  their agreement is an explicit feature,
- abbreviation normalization before encoding,
- a trained logistic-regression head.
"""

from __future__ import annotations

import re
from typing import Sequence

import numpy as np

from repro.data.instances import EMInstance
from repro.data.records import Record
from repro.errors import EvaluationError
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler
from repro.text.similarity import jaccard, ngrams
from repro.text.tfidf import TfidfVectorizer
from repro.text.normalize import expand_abbreviations, normalize_text

_IDENTIFIER_RE = re.compile(r"\b(?=\w*\d)[\w.\-]{2,}\b")


def serialize(record: Record) -> str:
    """Ditto's COL/VAL serialization of one record."""
    parts = []
    for name, value in record:
        if value is None:
            continue
        text = expand_abbreviations(normalize_text(str(value)))
        parts.append(f"col {name} val {text}")
    return " ".join(parts)


def _identity_text(record: Record) -> str:
    """The first non-missing attribute's value (title/name field)."""
    for __, value in record:
        if value is not None:
            return str(value)
    return ""


def _identifiers(text: str) -> set[str]:
    return {
        re.sub(r"[^a-z0-9]", "", m)
        for m in _IDENTIFIER_RE.findall(text.lower())
    }


class DittoMatcher:
    """Dense-representation EM with identifier-aware features."""

    def __init__(self, threshold: float = 0.5):
        if not 0.0 < threshold < 1.0:
            raise EvaluationError("threshold must be in (0, 1)")
        # The contextual encoder stand-in: TF-IDF over words + char
        # trigrams.  IDF learns that retail filler ("oem", "dvd") carries
        # no identity — the kind of invariance the fine-tuned LM acquires.
        self._vectorizer = TfidfVectorizer(analyzer=self._analyzer)
        self._threshold = threshold
        self._classifier: LogisticRegression | None = None
        self._scaler: StandardScaler | None = None

    @staticmethod
    def _analyzer(text: str) -> list[str]:
        tokens = text.split()
        terms = list(tokens)
        for token in tokens:
            terms.extend(ngrams(token, 3))
        return terms

    def _features(self, instance: EMInstance) -> list[float]:
        text_l = serialize(instance.pair.left)
        text_r = serialize(instance.pair.right)
        pair_matrix = self._vectorizer.transform([text_l, text_r])
        v_l, v_r = pair_matrix[0], pair_matrix[1]
        cosine = float(np.dot(v_l, v_r))
        hadamard = v_l * v_r
        diff = np.abs(v_l - v_r)
        # Domain-knowledge injection: identifiers from the identity field
        # only (Ditto tags product IDs, not prices).
        ids_l = _identifiers(_identity_text(instance.pair.left))
        ids_r = _identifiers(_identity_text(instance.pair.right))
        if ids_l and ids_r:
            id_overlap = len(ids_l & ids_r) / min(len(ids_l), len(ids_r))
            id_disjoint = float(not (ids_l & ids_r))
        else:
            id_overlap, id_disjoint = 0.5, 0.0
        tokens_l = set(text_l.split())
        tokens_r = set(text_r.split())
        return [
            cosine,
            float(hadamard.sum()),
            float(diff.mean()),
            jaccard(tokens_l, tokens_r),
            id_overlap,
            id_disjoint,
            abs(len(tokens_l) - len(tokens_r)) / max(len(tokens_l), len(tokens_r), 1),
        ]

    def fit(self, train: Sequence[EMInstance]) -> "DittoMatcher":
        if not train:
            raise EvaluationError("cannot fit Ditto on zero instances")
        corpus = []
        for instance in train:
            corpus.append(serialize(instance.pair.left))
            corpus.append(serialize(instance.pair.right))
        self._vectorizer.fit(corpus)
        X = np.asarray([self._features(i) for i in train], dtype=np.float64)
        y = np.asarray([float(i.label) for i in train])
        if len(set(y.tolist())) < 2:
            raise EvaluationError("training set covers only one class")
        self._scaler = StandardScaler().fit(X)
        self._classifier = LogisticRegression(n_iter=1000).fit(
            self._scaler.transform(X), y
        )
        return self

    def predict_one(self, instance: EMInstance) -> bool:
        if self._classifier is None or self._scaler is None:
            raise EvaluationError("predict called before fit")
        features = np.asarray([self._features(instance)])
        probability = self._classifier.predict_proba(
            self._scaler.transform(features)
        )[0]
        return bool(probability >= self._threshold)

    def predict(self, instances: Sequence[EMInstance]) -> list[bool]:
        return [self.predict_one(inst) for inst in instances]
