"""Load generation and the serving benchmark harness.

Traces are synthesized per tenant: Poisson arrivals (exponential
inter-arrival times at a configured mean rate) over a finite instance
population with Pareto-skewed popularity — a few hot records dominate,
the long tail trickles — which is what makes a prompt/answer cache earn
its keep at scale.  Everything is seeded; the same ``(tenants, seed)``
always produces the same trace, byte for byte.

``run_serve_bench`` replays one trace twice — through the coalescing
service and through an uncoalesced baseline (batch size 1, no cache) —
and writes ``BENCH_serving.json`` with latency percentiles, throughput,
coalesce rate, cache hit rate, and the token-reduction ratio between the
two (the paper's Table 3 amortization, measured online).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from random import Random

from repro.core.config import PipelineConfig
from repro.data.instances import PreprocessingDataset
from repro.errors import ServingError
from repro.serving.request import ServeRequest
from repro.serving.service import (
    PreprocessingService,
    ServeConfig,
    ServeReport,
)
from repro.serving.tenants import TenantBudget


@dataclass(frozen=True)
class TenantSpec:
    """One synthetic tenant: arrival rate, volume, and popularity skew.

    ``rate_rps`` is the mean arrivals per virtual second;
    ``pareto_alpha`` shapes popularity (smaller = more skew; values near
    1 make a handful of records absorb most requests).
    """

    name: str
    rate_rps: float
    n_requests: int
    pareto_alpha: float = 1.1

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ServingError(
                f"tenant {self.name!r} rate_rps must be positive"
            )
        if self.n_requests < 0:
            raise ServingError(
                f"tenant {self.name!r} n_requests cannot be negative"
            )
        if self.pareto_alpha <= 0:
            raise ServingError(
                f"tenant {self.name!r} pareto_alpha must be positive"
            )


def generate_trace(
    dataset: PreprocessingDataset,
    tenants: list[TenantSpec],
    seed: int = 0,
) -> list[ServeRequest]:
    """A deterministic multi-tenant request trace over ``dataset``.

    Each tenant gets an independent seeded stream (keyed by name, so
    adding a tenant never perturbs the others); streams are merged by
    arrival time with ties broken by tenant name and per-tenant sequence,
    and ``request_id`` is assigned in final order — globally monotone, the
    scheduler's deterministic tie-breaker.
    """
    population = list(dataset.instances)
    if not population:
        raise ServingError(f"dataset {dataset.name!r} has no instances")
    popularity = list(range(len(population)))
    Random(f"{seed}:popularity").shuffle(popularity)
    merged: list[tuple[float, str, int, int]] = []
    for spec in tenants:
        rng = Random(f"{seed}:{spec.name}")
        arrival = 0.0
        for sequence in range(spec.n_requests):
            arrival += rng.expovariate(spec.rate_rps)
            rank = min(
                int(rng.paretovariate(spec.pareto_alpha)) - 1,
                len(population) - 1,
            )
            merged.append((arrival, spec.name, sequence, popularity[rank]))
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        ServeRequest(
            request_id=request_id,
            tenant=tenant,
            arrival_s=arrival,
            instance=population[position],
        )
        for request_id, (arrival, tenant, __, position) in enumerate(merged)
    ]


def default_tenants(
    n_tenants: int, n_requests: int, rate_rps: float = 50.0
) -> list[TenantSpec]:
    """A simple heterogeneous fleet: rates spread geometrically (×2 per
    tenant) around the requested aggregate, volume split evenly."""
    if n_tenants < 1:
        raise ServingError(f"need at least one tenant, got {n_tenants}")
    weights = [2.0 ** index for index in range(n_tenants)]
    scale = rate_rps / sum(weights)
    per_tenant = n_requests // n_tenants
    remainder = n_requests - per_tenant * n_tenants
    return [
        TenantSpec(
            name=f"tenant-{index}",
            rate_rps=weights[index] * scale,
            n_requests=per_tenant + (1 if index < remainder else 0),
        )
        for index in range(n_tenants)
    ]


def run_serve_bench(
    out_path: str | Path = "BENCH_serving.json",
    n_requests: int = 200_000,
    dataset_name: str = "adult",
    dataset_size: int = 200,
    n_tenants: int = 3,
    seed: int = 0,
    concurrency: int = 4,
    max_batch: int = 8,
    max_wait_s: float = 2.0,
    coalesce: str = "window",
    model: str = "gpt-3.5",
    baseline_requests: int | None = 2000,
) -> dict:
    """Replay a synthetic trace coalesced and uncoalesced; write the report.

    The uncoalesced baseline serves batch size 1, eager flushing, answer
    cache disabled — one prompt per request, the pre-serving cost model.
    Because that baseline pays a completion call *per request*, it
    replays only the first ``baseline_requests`` arrivals of the trace
    (``None`` = all of them) and the ``token_reduction`` ratio compares
    *per-served-request* token cost, which is exact for the baseline (its
    marginal cost is constant — no cache, no batching) and conservative
    for the coalesced run.
    """
    from repro.datasets import load_dataset
    from repro.llm.simulated import SimulatedLLM

    dataset = load_dataset(dataset_name, size=dataset_size, seed=seed)
    tenants = default_tenants(n_tenants, n_requests)
    trace = generate_trace(dataset, tenants, seed=seed)
    budgets = [
        TenantBudget(
            name=spec.name,
            requests_per_minute=max(60, int(spec.rate_rps * 60 * 2)),
            tokens_per_minute=max(60_000, int(spec.rate_rps * 60 * 2) * 300),
        )
        for spec in tenants
    ]
    pipeline_config = PipelineConfig(
        model=model, seed=seed, concurrency=concurrency
    )

    def _serve(
        serve_config: ServeConfig, requests: list[ServeRequest]
    ) -> ServeReport:
        service = PreprocessingService(
            SimulatedLLM(model, seed=seed),
            dataset,
            budgets,
            serve_config=serve_config,
            pipeline_config=pipeline_config,
        )
        return service.serve(requests)

    coalesced = _serve(ServeConfig(
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        coalesce=coalesce,
    ), trace)
    baseline_trace = (
        trace if baseline_requests is None else trace[:baseline_requests]
    )
    uncoalesced = _serve(ServeConfig(
        max_batch=1,
        max_wait_s=0.0,
        coalesce="eager",
        cache_entries=0,
    ), baseline_trace)

    def _tokens_per_request(report: ServeReport) -> float:
        if report.n_served == 0:
            return 0.0
        return report.usage.total_tokens / report.n_served

    coalesced_cost = max(_tokens_per_request(coalesced), 1e-9)
    payload = {
        "bench": "serving",
        "config": {
            "n_requests": n_requests,
            "dataset": dataset_name,
            "dataset_size": dataset_size,
            "n_tenants": n_tenants,
            "seed": seed,
            "concurrency": concurrency,
            "max_batch": max_batch,
            "max_wait_s": max_wait_s,
            "coalesce": coalesce,
            "model": model,
            "baseline_requests": len(baseline_trace),
            "tenants": [dataclasses.asdict(spec) for spec in tenants],
        },
        "coalesced": coalesced.summary(),
        "uncoalesced": uncoalesced.summary(),
        "token_reduction": _tokens_per_request(uncoalesced) / coalesced_cost,
    }
    # The headline numbers, flattened for dashboards that read one level.
    for name in (
        "p50_latency_s", "p99_latency_s", "throughput_rps",
        "coalesce_rate", "cache_hit_rate",
    ):
        payload[name] = payload["coalesced"][name]
    Path(out_path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return payload
