"""Per-tenant admission control.

Each tenant gets its own one-minute RPM/TPM window
(:class:`~repro.llm.ratelimit.SlidingWindowBudget`), layered *under* the
executor's global rate limiter: admission refuses work the tenant's plan
does not cover before it ever queues, while the global limiter still
paces whatever is admitted against the provider's account-wide budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ServingError
from repro.llm.ratelimit import RateLimit, SlidingWindowBudget


@dataclass(frozen=True)
class TenantBudget:
    """One tenant's plan: requests and tokens per minute."""

    name: str
    requests_per_minute: int
    tokens_per_minute: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("tenant name cannot be empty")
        if self.requests_per_minute <= 0 or self.tokens_per_minute <= 0:
            raise ServingError(
                f"tenant {self.name!r} budgets must be positive"
            )

    def limit(self) -> RateLimit:
        return RateLimit(
            requests_per_minute=self.requests_per_minute,
            tokens_per_minute=self.tokens_per_minute,
        )


class TenantAdmission:
    """Admission decisions across a fixed set of tenants.

    ``admit`` returns ``None`` (admitted, budget charged) or a typed
    refusal reason ``"tenant_rpm"`` / ``"tenant_tpm"`` (nothing charged).
    An unknown tenant is a caller bug, not a quota decision, and raises
    :class:`~repro.errors.ServingError`.
    """

    def __init__(self, budgets: Iterable[TenantBudget]):
        self._windows: dict[str, SlidingWindowBudget] = {}
        self._budgets: dict[str, TenantBudget] = {}
        for budget in budgets:
            if budget.name in self._windows:
                raise ServingError(f"duplicate tenant {budget.name!r}")
            self._windows[budget.name] = SlidingWindowBudget(budget.limit())
            self._budgets[budget.name] = budget
        if not self._windows:
            raise ServingError("admission control needs at least one tenant")

    @property
    def tenants(self) -> list[str]:
        return list(self._windows)

    def budget_of(self, tenant: str) -> TenantBudget:
        try:
            return self._budgets[tenant]
        except KeyError:
            raise ServingError(f"unknown tenant {tenant!r}") from None

    def admit(self, tenant: str, tokens: int, now: float) -> str | None:
        window = self._windows.get(tenant)
        if window is None:
            raise ServingError(
                f"unknown tenant {tenant!r}; known: "
                f"{', '.join(sorted(self._windows))}"
            )
        verdict = window.try_admit(tokens, now)
        if verdict is None:
            return None
        return f"tenant_{verdict}"
