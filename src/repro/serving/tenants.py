"""Per-tenant admission control and degradation-aware load shedding.

Each tenant gets its own one-minute RPM/TPM window
(:class:`~repro.llm.ratelimit.SlidingWindowBudget`), layered *under* the
executor's global rate limiter: admission refuses work the tenant's plan
does not cover before it ever queues, while the global limiter still
paces whatever is admitted against the provider's account-wide budget.

When resilience mode is on, a :class:`DegradationMonitor` sits beside
admission: it folds the executor's failure counters (and the failover
router's own stress view, when the client is a pool) into an EWMA stress
score, and tells the service to shed new arrivals — typed reject reason
``backend_degraded`` — while the backend is too sick to keep up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ServingError
from repro.llm.ratelimit import RateLimit, SlidingWindowBudget
from repro.resilience.config import ResilienceConfig


@dataclass(frozen=True)
class TenantBudget:
    """One tenant's plan: requests and tokens per minute."""

    name: str
    requests_per_minute: int
    tokens_per_minute: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("tenant name cannot be empty")
        if self.requests_per_minute <= 0 or self.tokens_per_minute <= 0:
            raise ServingError(
                f"tenant {self.name!r} budgets must be positive"
            )

    def limit(self) -> RateLimit:
        return RateLimit(
            requests_per_minute=self.requests_per_minute,
            tokens_per_minute=self.tokens_per_minute,
        )


class TenantAdmission:
    """Admission decisions across a fixed set of tenants.

    ``admit`` returns ``None`` (admitted, budget charged) or a typed
    refusal reason ``"tenant_rpm"`` / ``"tenant_tpm"`` (nothing charged).
    An unknown tenant is a caller bug, not a quota decision, and raises
    :class:`~repro.errors.ServingError`.
    """

    def __init__(self, budgets: Iterable[TenantBudget]):
        self._windows: dict[str, SlidingWindowBudget] = {}
        self._budgets: dict[str, TenantBudget] = {}
        for budget in budgets:
            if budget.name in self._windows:
                raise ServingError(f"duplicate tenant {budget.name!r}")
            self._windows[budget.name] = SlidingWindowBudget(budget.limit())
            self._budgets[budget.name] = budget
        if not self._windows:
            raise ServingError("admission control needs at least one tenant")

    @property
    def tenants(self) -> list[str]:
        return list(self._windows)

    def budget_of(self, tenant: str) -> TenantBudget:
        try:
            return self._budgets[tenant]
        except KeyError:
            raise ServingError(f"unknown tenant {tenant!r}") from None

    def admit(self, tenant: str, tokens: int, now: float) -> str | None:
        window = self._windows.get(tenant)
        if window is None:
            raise ServingError(
                f"unknown tenant {tenant!r}; known: "
                f"{', '.join(sorted(self._windows))}"
            )
        verdict = window.try_admit(tokens, now)
        if verdict is None:
            return None
        return f"tenant_{verdict}"


class DegradationMonitor:
    """EWMA stress score over backend failures, with shed hysteresis.

    The service feeds it two signals after every executed flush:

    - the executor's cumulative :class:`~repro.core.executor.ExecutionReport`
      counters (the monitor diffs them internally, so it sees only this
      flush's successes/failures), and
    - the failover router's own shedding verdict when the client exposes
      ``should_shed`` (a pool under heavy failover knows it is sick
      before the executor's counters do).

    Shedding starts when stress reaches ``shed_enter`` and stops only
    once stress decays below ``shed_exit`` *and* the coalescer backlog
    has drained back under ``drain_backlog_s`` — hysteresis on both the
    error signal and the queue-pressure signal, so the service does not
    flap at the threshold.  All inputs live on the arrival clock; the
    verdict is a pure function of the trace, hence deterministic.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        drain_backlog_s: float = 0.0,
    ):
        self._enter = config.shed_enter
        self._exit = config.shed_exit
        self._alpha = config.shed_alpha
        self._drain_backlog_s = max(0.0, drain_backlog_s)
        self._stress = 0.0
        self._shedding = False
        self._seen_ok = 0
        self._seen_failed = 0
        self.n_shed_windows = 0

    @property
    def stress(self) -> float:
        return self._stress

    def observe_report(self, report) -> None:
        """Fold one flush's executor counter deltas into the stress EWMA."""
        ok = report.n_calls
        failed = (
            report.n_retries + report.n_rate_limit_waits + report.n_giveups
        )
        delta_ok = ok - self._seen_ok
        delta_failed = failed - self._seen_failed
        self._seen_ok = ok
        self._seen_failed = failed
        events = delta_ok + delta_failed
        if events <= 0:
            return
        sample = delta_failed / events
        self._stress = (1.0 - self._alpha) * self._stress + self._alpha * sample

    def observe_router(self, shedding: bool) -> None:
        """Adopt the failover router's verdict (it sees per-backend health)."""
        if shedding:
            self._stress = max(self._stress, self._enter)

    def should_shed(self, backlog_age_s: float = 0.0) -> bool:
        if self._shedding:
            if (
                self._stress <= self._exit
                and backlog_age_s <= self._drain_backlog_s
            ):
                self._shedding = False
        elif self._stress >= self._enter:
            self._shedding = True
            self.n_shed_windows += 1
        return self._shedding
