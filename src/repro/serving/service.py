"""The long-lived preprocessing service.

One :class:`PreprocessingService` wraps one configured
:class:`~repro.core.pipeline.Preprocessor` for one dataset's task and
serves request traces against it:

    arrivals ──▶ admission (per-tenant RPM/TPM) ──▶ answer cache
                        │ reject (typed)              │ hit
                        ▼                             ▼
                 batch coalescer ──flush──▶ executor ──▶ responses

Every scheduling decision — admission, cache lookups, coalescing,
flushes, batch partitioning — runs on the *arrival clock* (the trace's
virtual times); execution finish times feed only the reported latencies.
That split is the determinism contract: batch composition, predictions,
and every metric counter are bit-identical at executor concurrency 1, 2,
or 8, while latency percentiles honestly reflect lane parallelism.

The service is long-lived: the answer cache, the prep-artifact cache, the
tenant windows, and the executor's virtual clock all persist across
:meth:`~PreprocessingService.serve` calls, so a second trace benefits
from the first one's work (the cross-run cache the benchmark measures).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.batching import make_batches
from repro.core.config import PipelineConfig
from repro.core.executor import BatchExecutor, ExecutorConfig
from repro.core.pipeline import Preprocessor, Quarantined, RunStats
from repro.core.prep import PrepArtifacts
from repro.core.prompts import PromptBuilder
from repro.core.tasks import question_text, target_attribute_of
from repro.data.instances import Instance, PreprocessingDataset
from repro.errors import ServingError
from repro.llm.base import LLMClient, Usage
from repro.obs.manifest import canonical_json, jsonable
from repro.obs.metrics import MetricsRegistry
from repro.serving.cache import CachedAnswer, ServingCache
from repro.serving.request import (
    RejectedRequest,
    ServeRequest,
    ServeResponse,
)
from repro.serving.scheduler import (
    BatchCoalescer,
    CoalescePolicy,
    Flush,
    PendingEntry,
)
from repro.serving.tenants import (
    DegradationMonitor,
    TenantAdmission,
    TenantBudget,
)
from repro.text.tokenize import count_tokens


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving layer itself (the pipeline has its own).

    ``max_queue`` bounds the number of *unique* in-flight questions; an
    arrival that would create one more is rejected ``queue_full`` (its
    tenant budget is still charged — the request was made).
    ``cache_entries`` bounds the completed-answer LRU (``None`` =
    unbounded, ``0`` = disabled); ``prep_texts`` optionally bounds the
    serialized-text LRU inside :class:`~repro.core.prep.PrepArtifacts`.
    """

    max_batch: int = 8
    max_wait_s: float = 2.0
    coalesce: str = "window"
    max_queue: int = 1024
    cache_entries: int | None = 4096
    prep_texts: int | None = None

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ServingError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        # CoalescePolicy validates max_batch / max_wait_s / coalesce.
        self.policy()

    def policy(self) -> CoalescePolicy:
        return CoalescePolicy(
            max_batch=self.max_batch,
            max_wait_s=self.max_wait_s,
            mode=self.coalesce,
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = q * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    within = rank - low
    return sorted_values[low] * (1.0 - within) + sorted_values[high] * within


@dataclass
class ServeReport:
    """Everything one :meth:`PreprocessingService.serve` run produced.

    ``responses``/``rejections`` partition the trace exactly (queue
    conservation); ``batches`` records every coalesced prompt batch in
    execution order.  ``metrics`` is the service registry snapshot —
    cumulative over the service's lifetime, deterministic at any
    concurrency; ``usage`` is this run's token delta.
    """

    n_requests: int
    responses: list[ServeResponse]
    rejections: list[RejectedRequest]
    batches: list[dict]
    usage: Usage
    metrics: dict
    config: dict = field(default_factory=dict)
    #: per-backend health + shedding stress, present only in resilience
    #: mode (``None`` keeps historical payload bytes unchanged)
    backend_health: dict | None = None

    @property
    def n_served(self) -> int:
        return len(self.responses)

    @property
    def n_rejected(self) -> int:
        return len(self.rejections)

    def _source_counts(self) -> dict[str, int]:
        counts = {"llm": 0, "shared": 0, "cache": 0}
        for response in self.responses:
            counts[response.source] += 1
        return counts

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served requests answered from the completed cache."""
        if not self.responses:
            return 0.0
        return self._source_counts()["cache"] / len(self.responses)

    @property
    def coalesce_rate(self) -> float:
        """How much batching compressed the executed questions:
        ``1 - batches/questions`` (0.0 = every question got its own
        prompt, →1.0 = heavy amortization)."""
        n_questions = sum(batch["n_entries"] for batch in self.batches)
        if n_questions == 0:
            return 0.0
        return 1.0 - len(self.batches) / n_questions

    @property
    def makespan_s(self) -> float:
        """Virtual span from the first arrival to the last completion."""
        if not self.responses:
            return 0.0
        start = min(r.arrival_s for r in self.responses)
        return max(r.completed_s for r in self.responses) - start

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.n_served / span if span > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        return _percentile(
            sorted(r.latency_s for r in self.responses), q
        )

    def summary(self) -> dict:
        """The benchmark-facing scalars (BENCH_serving.json rows)."""
        sources = self._source_counts()
        return {
            "n_requests": self.n_requests,
            "n_served": self.n_served,
            "n_rejected": self.n_rejected,
            "n_batches": len(self.batches),
            "sources": sources,
            "p50_latency_s": self.latency_quantile(0.50),
            "p99_latency_s": self.latency_quantile(0.99),
            "throughput_rps": self.throughput_rps,
            "coalesce_rate": self.coalesce_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "makespan_s": self.makespan_s,
            "prompt_tokens": self.usage.prompt_tokens,
            "completion_tokens": self.usage.completion_tokens,
            "total_tokens": self.usage.total_tokens,
        }

    def payload(self) -> dict:
        """The full run as canonical-JSON-ready data (golden snapshots)."""
        payload = {
            "config": self.config,
            "summary": self.summary(),
            "responses": [
                {
                    "request_id": r.request_id,
                    "tenant": r.tenant,
                    "arrival_s": r.arrival_s,
                    "prediction": r.prediction,
                    "source": r.source,
                    "flushed_s": r.flushed_s,
                    "completed_s": r.completed_s,
                    "batch_seq": r.batch_seq,
                    "quarantine_reason": r.quarantine_reason,
                }
                for r in sorted(self.responses, key=lambda r: r.request_id)
            ],
            "rejections": [
                {
                    "request_id": r.request_id,
                    "tenant": r.tenant,
                    "arrival_s": r.arrival_s,
                    "reason": r.reason,
                }
                for r in sorted(self.rejections, key=lambda r: r.request_id)
            ],
            "batches": self.batches,
            "metrics": self.metrics,
        }
        if self.backend_health is not None:
            payload["backend_health"] = self.backend_health
        return payload

    def render(self) -> str:
        summary = self.summary()
        lines = [
            f"served {summary['n_served']}/{summary['n_requests']} "
            f"request(s), {summary['n_rejected']} rejected, "
            f"{summary['n_batches']} coalesced batch(es)",
            f"p50 latency {summary['p50_latency_s']:.3f}s · "
            f"p99 {summary['p99_latency_s']:.3f}s · "
            f"throughput {summary['throughput_rps']:.1f} req/s",
            f"coalesce rate {summary['coalesce_rate']:.3f} · "
            f"cache hit rate {summary['cache_hit_rate']:.3f} · "
            f"{summary['total_tokens']} token(s)",
        ]
        return "\n".join(lines)


class PreprocessingService:
    """Serves preprocessing questions for one dataset task, many tenants.

    Parameters
    ----------
    client:
        The LLM client completion calls go to (usually a
        :class:`~repro.llm.simulated.SimulatedLLM` or a caching wrapper).
    dataset:
        Supplies the task and the few-shot pool; request instances must
        carry the same task but need not come from this dataset.
    budgets:
        One :class:`~repro.serving.tenants.TenantBudget` per tenant the
        service will accept requests from.
    serve_config / pipeline_config / executor_config:
        Serving knobs, prompt/batching knobs, and executor fault
        tolerance, respectively.
    """

    def __init__(
        self,
        client: LLMClient,
        dataset: PreprocessingDataset,
        budgets: list[TenantBudget],
        serve_config: ServeConfig | None = None,
        pipeline_config: PipelineConfig | None = None,
        executor_config: ExecutorConfig | None = None,
    ):
        self._dataset = dataset
        self._client = client
        self._serve_config = serve_config or ServeConfig()
        self._preprocessor = Preprocessor(
            client, pipeline_config, executor_config
        )
        config = self._preprocessor.config
        resilience = self._preprocessor.executor_config.resilience
        self._monitor = (
            DegradationMonitor(
                resilience,
                drain_backlog_s=2.0 * self._serve_config.max_wait_s,
            )
            if resilience is not None
            else None
        )
        self.metrics = MetricsRegistry()
        self._prep = PrepArtifacts(
            metrics=self.metrics, max_texts=self._serve_config.prep_texts
        )
        self._admission = TenantAdmission(budgets)
        self._cache = ServingCache(
            self._serve_config.cache_entries, metrics=self.metrics
        )
        self._coalescer = BatchCoalescer(self._serve_config.policy())
        self._executor = BatchExecutor(
            client, self._preprocessor.executor_config
        )
        self._stats = RunStats()
        fewshot = dataset.sample_fewshot(
            config.fewshot_for(dataset.task), seed=config.seed
        )
        self._fewshot = fewshot
        self._fewshot_by_target: dict[str | None, list[Instance]] = {}
        self._builders: dict[str | None, PromptBuilder] = {}
        #: id -> (pinned instance, question key); pinning keeps ids unique
        self._keys: dict[int, tuple[Instance, str]] = {}
        self._question_tokens: dict[str, int] = {}
        self._pending: dict[str, PendingEntry] = {}
        self._batch_seq = 0
        self._last_arrival = float("-inf")
        # The question key must name the question's *semantics*, so the
        # fingerprint covers only prompt-affecting config — scheduling
        # knobs (concurrency, observability) are excluded, or the same
        # question would key differently across lane counts and break
        # the cross-concurrency determinism of the batch records.
        semantic = {
            name: value
            for name, value in jsonable(config).items()
            if name not in ("concurrency", "observability")
        }
        digest = hashlib.blake2b(digest_size=8)
        digest.update(canonical_json(semantic).encode("utf-8"))
        self._config_fp = digest.hexdigest()

    @property
    def serve_config(self) -> ServeConfig:
        return self._serve_config

    @property
    def pipeline_config(self) -> PipelineConfig:
        return self._preprocessor.config

    # -- request identity -------------------------------------------------

    def _key_of(self, instance: Instance) -> str:
        """Content digest naming this question across tenants and runs."""
        pinned = self._keys.get(id(instance))
        if pinned is not None:
            return pinned[1]
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._config_fp.encode("ascii"))
        digest.update(instance.task.name.encode("ascii"))
        digest.update(repr(target_attribute_of(instance)).encode("utf-8"))
        digest.update(self._prep.text_of(instance).encode("utf-8"))
        key = digest.hexdigest()
        self._keys[id(instance)] = (instance, key)
        return key

    def _tokens_of(self, key: str, instance: Instance) -> int:
        """Admission-time token estimate: the question text itself."""
        tokens = self._question_tokens.get(key)
        if tokens is None:
            tokens = count_tokens(
                question_text(
                    instance, 1, serialized=self._prep.text_of(instance)
                )
            )
            self._question_tokens[key] = tokens
        return tokens

    def _builder_for(self, target: str | None) -> PromptBuilder:
        builder = self._builders.get(target)
        if builder is None:
            builder = PromptBuilder(
                self._dataset.task,
                self._preprocessor.config,
                target_attribute=target,
                artifacts=self._prep,
            )
            self._builders[target] = builder
        return builder

    def _fewshot_for(self, target: str | None) -> list[Instance]:
        examples = self._fewshot_by_target.get(target)
        if examples is None:
            examples = Preprocessor._fewshot_for_target(
                self._fewshot, self._dataset.task, target
            )
            self._fewshot_by_target[target] = examples
        return examples

    # -- the serve loop ---------------------------------------------------

    def serve(self, trace: list[ServeRequest]) -> ServeReport:
        """Replay ``trace`` (sorted by arrival) through the service.

        Raises :class:`~repro.errors.ServingError` on a non-monotonic
        trace, a request for a different task, or an unknown tenant.
        Returns a report whose responses + rejections partition the trace
        exactly.
        """
        responses: list[ServeResponse] = []
        rejections: list[RejectedRequest] = []
        batches: list[dict] = []
        usage_before = self._stats.usage

        for request in trace:
            if request.arrival_s < self._last_arrival:
                raise ServingError(
                    f"trace is not sorted: request {request.request_id} "
                    f"arrives at {request.arrival_s:.3f} after "
                    f"{self._last_arrival:.3f}"
                )
            self._last_arrival = request.arrival_s
            if request.instance.task is not self._dataset.task:
                raise ServingError(
                    f"request {request.request_id} carries a "
                    f"{request.instance.task.name} instance; this service "
                    f"serves {self._dataset.task.name}"
                )
            self.metrics.counter("serving.requests").inc()
            for flush in self._coalescer.due(request.arrival_s):
                self._execute_flush(flush, responses, batches)
            self._admit(request, responses, rejections, batches)

        for flush in self._coalescer.drain():
            self._execute_flush(flush, responses, batches)

        if len(responses) + len(rejections) != len(trace):
            raise ServingError(  # pragma: no cover - internal invariant
                f"queue conservation violated: {len(trace)} arrived, "
                f"{len(responses)} served + {len(rejections)} rejected"
            )
        usage_after = self._stats.usage
        return ServeReport(
            n_requests=len(trace),
            responses=responses,
            rejections=rejections,
            batches=batches,
            usage=Usage(
                prompt_tokens=(
                    usage_after.prompt_tokens - usage_before.prompt_tokens
                ),
                completion_tokens=(
                    usage_after.completion_tokens
                    - usage_before.completion_tokens
                ),
            ),
            metrics=self.metrics.snapshot(),
            config={
                "serve": jsonable(self._serve_config),
                "pipeline": jsonable(self._preprocessor.config),
                "tenants": [
                    jsonable(self._admission.budget_of(name))
                    for name in self._admission.tenants
                ],
            },
            backend_health=self._backend_health(),
        )

    def _admit(
        self,
        request: ServeRequest,
        responses: list[ServeResponse],
        rejections: list[RejectedRequest],
        batches: list[dict],
    ) -> None:
        """Admission → cache → coalescer for one arrival."""
        if self._monitor is not None and self._monitor.should_shed(
            self._coalescer.backlog_age_s(request.arrival_s)
        ):
            # Shed at the front door, before the tenant window is
            # charged: the backend is too sick to take on new work.
            self._reject(
                request, "backend_degraded", rejections,
                detail=f"stress {self._monitor.stress:.3f}",
            )
            return
        key = self._key_of(request.instance)
        tokens = self._tokens_of(key, request.instance)
        reason = self._admission.admit(
            request.tenant, tokens, request.arrival_s
        )
        if reason is not None:
            self._reject(request, reason, rejections)
            return
        cached = self._cache.get(key)
        if cached is not None:
            responses.append(ServeResponse(
                request_id=request.request_id,
                tenant=request.tenant,
                arrival_s=request.arrival_s,
                prediction=cached.prediction,
                source="cache",
                flushed_s=request.arrival_s,
                completed_s=max(request.arrival_s, cached.completed_s),
                batch_seq=None,
                quarantine_reason=cached.quarantine_reason,
            ))
            return
        entry = self._pending.get(key)
        if entry is not None:
            # The same question is already queued: ride along.
            entry.waiters.append(request)
            self.metrics.counter("serving.coalesce.joined").inc()
            return
        if self._coalescer.n_pending >= self._serve_config.max_queue:
            # The budget window already charged this request — admission
            # happens at the front door, before queue capacity is known.
            self._reject(
                request, "queue_full", rejections,
                detail=f"{self._coalescer.n_pending} question(s) in flight",
            )
            return
        self.metrics.counter("serving.cache.misses").inc()
        entry = PendingEntry(
            key=key,
            instance=request.instance,
            target=target_attribute_of(request.instance),
            arrival_s=request.arrival_s,
            deadline_s=request.arrival_s + self._serve_config.max_wait_s,
            waiters=[request],
        )
        self._pending[key] = entry
        flush = self._coalescer.add(entry)
        if flush is not None:
            self._execute_flush(flush, responses, batches)

    def _reject(
        self,
        request: ServeRequest,
        reason: str,
        rejections: list[RejectedRequest],
        detail: str = "",
    ) -> None:
        self.metrics.counter(f"serving.rejected.{reason}").inc()
        rejections.append(RejectedRequest(
            request_id=request.request_id,
            tenant=request.tenant,
            arrival_s=request.arrival_s,
            reason=reason,
            detail=detail,
        ))

    # -- execution --------------------------------------------------------

    def _partition(self, flush: Flush) -> list[list[int]]:
        """Split a flushed group into prompt-batch index lists.

        Eager mode chunks in arrival order (a "full" flush is exactly one
        chunk); window mode partitions the gathered window through
        :func:`~repro.core.batching.make_batches`, i.e. the paper's
        random/cluster batching applied to the live group.
        """
        n = len(flush.entries)
        max_batch = self._serve_config.max_batch
        if n <= max_batch:
            return [list(range(n))]
        if self._serve_config.coalesce == "eager":
            return [
                list(range(start, min(start + max_batch, n)))
                for start in range(0, n, max_batch)
            ]
        config = self._preprocessor.config
        return make_batches(
            [entry.instance for entry in flush.entries],
            batch_size=max_batch,
            mode=config.batching,
            seed=config.seed,
            artifacts=self._prep,
        )

    def _execute_flush(
        self,
        flush: Flush,
        responses: list[ServeResponse],
        batches: list[dict],
    ) -> None:
        self.metrics.counter(f"serving.flush.{flush.reason}").inc()
        builder = self._builder_for(flush.target)
        fewshot = self._fewshot_for(flush.target)
        for positions in self._partition(flush):
            entries = [flush.entries[p] for p in positions]
            # Reset the finish high-water mark so this batch's completion
            # time can be read back after the call.
            self._stats.last_finish_s = flush.at
            answers = self._preprocessor.answer_batch(
                builder,
                [entry.instance for entry in entries],
                fewshot,
                self._dataset.task,
                self._stats,
                self._executor,
                ready_at=flush.at,
            )
            finished = self._stats.last_finish_s
            seq = self._batch_seq
            self._batch_seq += 1
            self.metrics.counter("serving.batches").inc()
            self.metrics.histogram(
                "serving.batch_size", buckets=(1, 2, 4, 8, 16, 32)
            ).observe(len(entries))
            batches.append({
                "seq": seq,
                "at": flush.at,
                "reason": flush.reason,
                "target": flush.target,
                "n_entries": len(entries),
                "n_requests": sum(len(e.waiters) for e in entries),
                "keys": [entry.key for entry in entries],
            })
            for entry, answer in zip(entries, answers):
                if isinstance(answer, Quarantined):
                    prediction: bool | str | None = None
                    quarantine_reason: str | None = answer.reason
                    self.metrics.counter("serving.quarantined").inc()
                else:
                    prediction = answer
                    quarantine_reason = None
                self._cache.put(entry.key, CachedAnswer(
                    prediction=prediction,
                    completed_s=finished,
                    quarantine_reason=quarantine_reason,
                ))
                del self._pending[entry.key]
                for position, waiter in enumerate(entry.waiters):
                    responses.append(ServeResponse(
                        request_id=waiter.request_id,
                        tenant=waiter.tenant,
                        arrival_s=waiter.arrival_s,
                        prediction=prediction,
                        source="llm" if position == 0 else "shared",
                        flushed_s=flush.at,
                        completed_s=max(waiter.arrival_s, finished),
                        batch_seq=seq,
                        quarantine_reason=quarantine_reason,
                    ))
        if self._monitor is not None:
            self._monitor.observe_report(self._executor.report())
            router_shed = getattr(self._client, "should_shed", None)
            if callable(router_shed):
                self._monitor.observe_router(router_shed(flush.at))

    def _backend_health(self) -> dict | None:
        """Per-backend health + shedding stress (resilience mode only)."""
        if self._monitor is None:
            return None
        health = getattr(self._client, "health_payload", None)
        payload = dict(health()) if callable(health) else {}
        payload["shedding"] = {
            "stress": round(self._monitor.stress, 6),
            "n_shed_windows": self._monitor.n_shed_windows,
        }
        return payload
