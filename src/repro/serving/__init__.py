"""Preprocessing-as-a-service: the online serving layer.

The offline pipeline answers a closed batch; this package keeps a
:class:`~repro.core.pipeline.Preprocessor` alive behind an admission-
controlled, batch-coalescing front door so many tenants share one model
deployment — and one cache — across hundreds of thousands of requests on
the simulated clock.  See :mod:`repro.serving.service` for the
architecture and the determinism contract.
"""

from repro.serving.cache import CachedAnswer, ServingCache
from repro.serving.loadgen import (
    TenantSpec,
    default_tenants,
    generate_trace,
    run_serve_bench,
)
from repro.serving.request import (
    ANSWER_SOURCES,
    REJECT_REASONS,
    RejectedRequest,
    ServeRequest,
    ServeResponse,
)
from repro.serving.scheduler import (
    BatchCoalescer,
    CoalescePolicy,
    Flush,
    PendingEntry,
)
from repro.serving.service import (
    PreprocessingService,
    ServeConfig,
    ServeReport,
)
from repro.serving.tenants import TenantAdmission, TenantBudget

__all__ = [
    "ANSWER_SOURCES",
    "REJECT_REASONS",
    "BatchCoalescer",
    "CachedAnswer",
    "CoalescePolicy",
    "Flush",
    "PendingEntry",
    "PreprocessingService",
    "RejectedRequest",
    "ServeConfig",
    "ServeReport",
    "ServeRequest",
    "ServeResponse",
    "ServingCache",
    "TenantAdmission",
    "TenantBudget",
    "TenantSpec",
    "default_tenants",
    "generate_trace",
    "run_serve_bench",
]
