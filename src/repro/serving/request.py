"""Request/response vocabulary of the serving layer.

A :class:`ServeRequest` is one tenant asking one question (a single data
instance) at a virtual arrival time.  Every request the service accepts
produces exactly one :class:`ServeResponse`; every request it refuses
produces exactly one :class:`RejectedRequest` with a typed reason — the
queue-conservation invariant the property suite enforces (arrived =
served + rejected, nothing dropped silently).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instances import Instance

#: every reason a request can be refused admission; ``backend_degraded``
#: is load shedding under sustained backend sickness (resilience mode)
REJECT_REASONS: tuple[str, ...] = (
    "queue_full", "tenant_rpm", "tenant_tpm", "backend_degraded",
)

#: where a served answer came from: a completion call this request rode
#: on, a coalesced batch another request triggered, or the completed-
#: answer cache
ANSWER_SOURCES: tuple[str, ...] = ("llm", "shared", "cache")


@dataclass(frozen=True)
class ServeRequest:
    """One tenant question arriving at a virtual time.

    ``request_id`` is globally unique and monotone in arrival order — the
    deterministic tie-breaker whenever two requests arrive at the same
    instant.
    """

    request_id: int
    tenant: str
    arrival_s: float
    instance: Instance


@dataclass(frozen=True)
class ServeResponse:
    """One answered request.

    ``flushed_s`` is when the arrival-clock scheduler released the
    request's question for execution (equal to ``arrival_s`` for cache
    hits); the fairness bound lives here: ``flushed_s - arrival_s`` never
    exceeds the coalescer's max wait.  ``completed_s`` adds the modeled
    execution time, so it is the only field that varies with executor
    concurrency.  ``batch_seq`` names the coalesced batch that produced
    the answer (``None`` for cache hits); ``quarantine_reason`` is set
    when the degradation ladder gave up on the question (the prediction
    is then ``None``).
    """

    request_id: int
    tenant: str
    arrival_s: float
    prediction: bool | str | None
    source: str
    flushed_s: float
    completed_s: float
    batch_seq: int | None = None
    quarantine_reason: str | None = None

    @property
    def latency_s(self) -> float:
        """Virtual time from arrival to completed answer."""
        return self.completed_s - self.arrival_s

    @property
    def wait_s(self) -> float:
        """Virtual time the request spent queued before its flush."""
        return self.flushed_s - self.arrival_s


@dataclass(frozen=True)
class RejectedRequest:
    """One refused request, with a typed reason from :data:`REJECT_REASONS`."""

    request_id: int
    tenant: str
    arrival_s: float
    reason: str
    detail: str = ""
