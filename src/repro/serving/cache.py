"""Cross-run answer cache with LRU eviction, metered through the registry.

The service keys every request by its *question digest* (model, task,
target, config fingerprint, serialized record).  Once a coalesced batch
completes, each answered question lands here; later requests for the same
question — from any tenant, in any later :meth:`serve` run — are answered
without a completion call.  The cache stores only *completed* answers
(in-flight questions live on the coalescer as waiters), so eviction can
never lose work, only force a recomputation.

Hit/insert/eviction traffic is counted into the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``serving.cache.*``) — all
arrival-driven and therefore identical at any executor concurrency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ServingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class CachedAnswer:
    """One completed question: its prediction and when it finished.

    ``completed_s`` is the virtual finish time of the batch that answered
    it; a later hit completes at ``max(arrival, completed_s)`` — zero
    added latency once the answer exists.  ``quarantine_reason`` is kept
    so a question the ladder gave up on is *remembered* as unanswerable
    instead of being retried on every arrival.
    """

    prediction: bool | str | None
    completed_s: float
    quarantine_reason: str | None = None


class ServingCache:
    """Bounded LRU over completed answers.

    ``max_entries=None`` means unbounded; ``0`` disables storage entirely
    (every lookup misses — the uncoalesced baseline the benchmark
    compares against).
    """

    def __init__(
        self,
        max_entries: int | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        if max_entries is not None and max_entries < 0:
            raise ServingError(
                f"max_entries cannot be negative, got {max_entries}"
            )
        self._max_entries = max_entries
        self._metrics = metrics
        self._answers: OrderedDict[str, CachedAnswer] = OrderedDict()

    def __len__(self) -> int:
        return len(self._answers)

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def get(self, key: str) -> CachedAnswer | None:
        """The completed answer for ``key``, touching its LRU position.

        Counts a hit on success and nothing on a miss — the service
        counts misses only when a request actually *creates* work, so
        rejected requests cannot skew the hit rate.
        """
        answer = self._answers.get(key)
        if answer is None:
            return None
        self._answers.move_to_end(key)
        self._count("serving.cache.hits")
        return answer

    def put(self, key: str, answer: CachedAnswer) -> None:
        """Store a completed answer, evicting from the LRU end if full."""
        if self._max_entries == 0:
            return
        self._answers[key] = answer
        self._answers.move_to_end(key)
        if (
            self._max_entries is not None
            and len(self._answers) > self._max_entries
        ):
            self._answers.popitem(last=False)
            self._count("serving.cache.evictions")
