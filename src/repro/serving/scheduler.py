"""The batch-coalescing scheduler.

Single-instance requests from many tenants are coalesced into batched
prompts so the instruction/few-shot overhead amortizes online exactly as
the paper's Table 3 shows it does offline.  One :class:`PendingEntry` is
one *unique question* (duplicate requests attach to the existing entry as
waiters); entries group by target attribute — the unit a prompt can
legally batch — and a group flushes when

- **full** (``eager`` mode): it reaches ``max_batch`` entries, flushing
  at the arrival that filled it, or
- **deadline** (both modes): the *oldest* entry's ``arrival + max_wait``
  passes, flushing the whole group at that deadline.

Every decision reads only arrival-clock times, never execution finish
times, so the flush sequence — and with it batch composition, predictions
and all metrics counts — is bit-identical at any executor concurrency.
Ties break on the first waiter's ``request_id`` (globally monotone), so
replays are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.instances import Instance
from repro.errors import ServingError
from repro.serving.request import ServeRequest

#: flush triggers, as recorded on :class:`Flush` and in the metrics
FLUSH_REASONS: tuple[str, ...] = ("full", "deadline")


@dataclass(frozen=True)
class CoalescePolicy:
    """How long a question may wait and how large a batch may grow.

    ``mode`` selects what happens between arrival and deadline:
    ``"eager"`` flushes a group the moment it holds ``max_batch``
    questions (lowest latency); ``"window"`` holds the group until the
    oldest deadline and then partitions *everything* gathered through
    :func:`~repro.core.batching.make_batches` — the paper's cluster
    batching applied to the live window (highest homogeneity).
    """

    max_batch: int = 8
    max_wait_s: float = 2.0
    mode: str = "window"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_s < 0:
            raise ServingError(
                f"max_wait_s cannot be negative, got {self.max_wait_s}"
            )
        if self.mode not in ("eager", "window"):
            raise ServingError(
                f"unknown coalesce mode {self.mode!r}; "
                f"expected 'eager' or 'window'"
            )


@dataclass
class PendingEntry:
    """One unique in-flight question and every request waiting on it."""

    key: str
    instance: Instance
    target: str | None
    arrival_s: float
    deadline_s: float
    waiters: list[ServeRequest] = field(default_factory=list)

    @property
    def tie_break(self) -> int:
        return self.waiters[0].request_id if self.waiters else -1


@dataclass(frozen=True)
class Flush:
    """One released group: execute these entries no earlier than ``at``."""

    at: float
    reason: str
    target: str | None
    entries: tuple[PendingEntry, ...]


class BatchCoalescer:
    """Accumulates pending entries per target group and decides flushes.

    Drive it with nondecreasing arrival times: call :meth:`due` before
    admitting each arrival, :meth:`add` for each new unique question, and
    :meth:`drain` once the trace ends.  The coalescer never executes
    anything — it only hands back :class:`Flush` records in a
    deterministic order.
    """

    def __init__(self, policy: CoalescePolicy):
        self._policy = policy
        self._groups: dict[str | None, list[PendingEntry]] = {}
        self._n_pending = 0

    @property
    def policy(self) -> CoalescePolicy:
        return self._policy

    @property
    def n_pending(self) -> int:
        """Unique questions currently waiting."""
        return self._n_pending

    def backlog_age_s(self, now: float) -> float:
        """Age of the oldest pending question at ``now`` (0.0 when idle).

        The serving layer's queue-pressure signal: under a healthy
        backend the coalescer drains every group by its deadline, so a
        backlog growing past the max wait means execution is falling
        behind arrivals — the symptom of sustained degradation.
        """
        oldest = min(
            (group[0].arrival_s for group in self._groups.values() if group),
            default=None,
        )
        return 0.0 if oldest is None else max(0.0, now - oldest)

    def add(self, entry: PendingEntry) -> Flush | None:
        """Queue a new unique question; eager mode may flush its group."""
        group = self._groups.setdefault(entry.target, [])
        group.append(entry)
        self._n_pending += 1
        if (
            self._policy.mode == "eager"
            and len(group) >= self._policy.max_batch
        ):
            return self._flush_group(
                entry.target, at=entry.arrival_s, reason="full"
            )
        return None

    def due(self, now: float) -> list[Flush]:
        """Every group whose oldest deadline has passed by ``now``.

        A group flushes *whole* at its oldest entry's deadline, so no
        entry ever waits past its own ``max_wait`` on the arrival clock —
        the starvation bound a high-rate tenant cannot break.
        """
        ripe = [
            (group[0].deadline_s, group[0].tie_break, target)
            for target, group in self._groups.items()
            if group and group[0].deadline_s <= now
        ]
        ripe.sort()
        return [
            self._flush_group(target, at=deadline, reason="deadline")
            for deadline, __, target in ripe
        ]

    def drain(self) -> list[Flush]:
        """Flush everything still pending (the trace is over).

        Remaining groups release at their oldest deadline — virtual time
        runs past every deadline once arrivals stop — in deadline order,
        so a drained trace is indistinguishable from one followed by a
        long quiet period.
        """
        flushes: list[Flush] = []
        while any(self._groups.values()):
            ripe = [
                (group[0].deadline_s, group[0].tie_break, target)
                for target, group in self._groups.items()
                if group
            ]
            deadline, __, target = min(ripe)
            flushes.append(
                self._flush_group(target, at=deadline, reason="deadline")
            )
        return flushes

    def _flush_group(
        self, target: str | None, at: float, reason: str
    ) -> Flush:
        entries = tuple(self._groups.pop(target, ()))
        if not entries:
            raise ServingError(
                f"flush of empty group {target!r}"
            )  # pragma: no cover - internal invariant
        self._n_pending -= len(entries)
        return Flush(at=at, reason=reason, target=target, entries=entries)
