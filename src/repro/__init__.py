"""repro — LLMs as Data Preprocessors, reproduced offline.

A faithful, fully offline reimplementation of the framework and the
experimental study of *Large Language Models as Data Preprocessors*
(VLDB 2024): error detection, data imputation, schema matching, and
entity matching through prompt-engineered (simulated) LLMs, plus the six
classical baselines and the twelve benchmark datasets.

Quickstart::

    from repro import Preprocessor, PipelineConfig, SimulatedLLM, load_dataset
    from repro.eval import evaluate_pipeline

    dataset = load_dataset("restaurant")
    config = PipelineConfig(model="gpt-4")
    run = evaluate_pipeline(SimulatedLLM("gpt-4"), config, dataset)
    print(run.score_pct)
"""

from repro.core import (
    CostEstimate,
    ExecutionReport,
    ExecutorConfig,
    PipelineConfig,
    PipelineResult,
    Preprocessor,
    PromptBuilder,
    detect_errors,
    estimate_cost,
    impute_missing,
    match_entities,
    match_schemas,
)
from repro.core.feature_selection import FeatureSelection
from repro.data import (
    Attribute,
    AttrType,
    Record,
    Schema,
    Table,
    Task,
)
from repro.datasets import DATASET_NAMES, load_dataset
from repro.llm import SimulatedLLM, get_profile

__version__ = "1.0.0"

__all__ = [
    "Preprocessor",
    "CostEstimate",
    "estimate_cost",
    "detect_errors",
    "impute_missing",
    "match_schemas",
    "match_entities",
    "PipelineConfig",
    "PipelineResult",
    "PromptBuilder",
    "ExecutorConfig",
    "ExecutionReport",
    "FeatureSelection",
    "SimulatedLLM",
    "get_profile",
    "load_dataset",
    "DATASET_NAMES",
    "Task",
    "Schema",
    "Attribute",
    "AttrType",
    "Record",
    "Table",
    "__version__",
]
