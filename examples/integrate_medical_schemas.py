"""Schema matching for clinical data integration (the hard task).

Synthea-style attribute pairs defeat lexical matching: negatives share
vocabulary (visit_start_date / visit_end_date) while positives may share
none (dob / birth_date).  This example shows the paper's findings: SMAT's
learned lexical matcher plateaus low, LLM domain knowledge helps, and the
prompt components matter — including the zero-shot-reasoning *collapse*
when no examples anchor the task.

Run:
    python examples/integrate_medical_schemas.py
"""

from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.baselines import SMATMatcher
from repro.eval import evaluate_pipeline
from repro.eval.metrics import f1_score


def main() -> None:
    test = load_dataset("synthea")
    train = load_dataset("synthea", size=400, seed=99)
    labels = [instance.label for instance in test.instances]
    print(f"Synthea SM: {len(test)} attribute pairs, "
          f"{sum(labels)} true correspondences\n")

    print("A hard positive (no shared words):")
    positive = next(i for i in test.instances if i.label)
    print(f"  {positive.pair.left.name!r:<22} ~ {positive.pair.right.name!r}")
    print("A hard negative (mostly shared words):")
    negative = max(
        (i for i in test.instances if not i.label),
        key=lambda i: len(set(i.pair.left.name.split("_"))
                          & set(i.pair.right.name.split("_"))),
    )
    print(f"  {negative.pair.left.name!r:<22} ~ {negative.pair.right.name!r}\n")

    smat = SMATMatcher().fit(train.instances)
    print(f"SMAT (learned lexical):        "
          f"F1 {f1_score(smat.predict(test.instances), labels) * 100:5.1f}"
          f"   (paper: 38.5)")

    for model, paper in (("gpt-3.5", 57.1), ("gpt-4", 66.7)):
        run = evaluate_pipeline(
            SimulatedLLM(model), PipelineConfig(model=model), test
        )
        print(f"{model} (3-shot, best setting):  "
              f"F1 {run.score_pct:>5}   (paper: {paper})")

    # The in-text cautionary tale: reasoning with zero examples collapses.
    collapse = evaluate_pipeline(
        SimulatedLLM("gpt-3.5"),
        PipelineConfig(model="gpt-3.5", fewshot=0, reasoning=True),
        test,
    )
    print(f"gpt-3.5 zero-shot + reasoning: F1 {collapse.score_pct:>5}   "
          f"(paper Table 2: 5.9 — over-literal reading of 'the same')")


if __name__ == "__main__":
    main()
