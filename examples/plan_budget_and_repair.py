"""Plan the spend, then repair a table: the practitioner workflow.

Uses the dry-run cost planner to choose a batch size *before* spending a
token (the decision behind the paper's Table 3), then runs the table-level
workflows: detect errors in a hospital table, impute the missing cities in
a restaurant table, and report the bill.

Run:
    python examples/plan_budget_and_repair.py
"""

from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.core.dryrun import compare_batch_sizes
from repro.core.workflows import detect_errors, impute_missing
from repro.data.records import Table


def plan() -> None:
    print("Step 1 — plan the budget (no tokens spent):")
    dataset = load_dataset("adult", size=2000)
    for estimate in compare_batch_sizes(dataset, PipelineConfig(model="gpt-3.5")):
        print(f"  batch {estimate.n_requests:>4} requests  "
              f"{estimate.total_tokens / 1e6:.2f} M tokens  "
              f"${estimate.cost_usd:6.2f}  {estimate.hours:5.2f} h")
    print("  -> the instruction block amortizes: biggest batch wins.\n")


def repair() -> None:
    client = SimulatedLLM("gpt-4")
    config = PipelineConfig(model="gpt-4")

    print("Step 2 — detect errors in a hospital table:")
    hospital = load_dataset("hospital", size=60)
    table = Table(
        hospital.instances[0].record.schema,
        [instance.record.copy() for instance in hospital.instances[:25]],
    )
    result = detect_errors(
        client, table,
        attributes=["city", "condition", "measurename"],
        config=config, fewshot=list(hospital.fewshot_pool),
    )
    for cell in result.flagged[:6]:
        print(f"  row {cell.row:>2}  {cell.attribute:<12} = {cell.value!r}")
    print(f"  flagged {len(result.flagged)} cells "
          f"({result.report.usage.total_tokens:,} tokens)\n")

    print("Step 3 — impute missing cities in a restaurant table:")
    restaurant = load_dataset("restaurant", size=30)
    schema = restaurant.instances[0].record.schema
    rows = [instance.record.copy() for instance in restaurant.instances]
    broken = Table(schema, rows)  # every city is missing in this benchmark
    repaired = impute_missing(
        client, broken, "city", config=config,
        fewshot=list(restaurant.fewshot_pool),
    )
    truths = {i: inst.true_value for i, inst in enumerate(restaurant.instances)}
    correct = sum(1 for row, value in repaired.imputed.items()
                  if value == truths[row])
    print(f"  imputed {len(repaired.imputed)} cities, "
          f"{correct} correct "
          f"({repaired.report.usage.total_tokens:,} tokens)")
    for row in list(repaired.imputed)[:4]:
        flag = "ok " if repaired.imputed[row] == truths[row] else "MISS"
        print(f"  [{flag}] {repaired.table[row]['phone']} -> "
              f"{repaired.imputed[row]!r}")


if __name__ == "__main__":
    plan()
    repair()
