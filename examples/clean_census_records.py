"""Error detection on census records: LLMs vs classical cleaners.

Runs the Adult benchmark three ways — HoloClean-style constraints,
HoloDetect-style few-shot ML, and the LLM pipeline — and shows what each
catches and misses, reproducing the qualitative story of the paper's
Table 1 ED columns.

Run:
    python examples/clean_census_records.py
"""

from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.baselines import HoloCleanDetector, HoloDetectDetector
from repro.core.pipeline import Preprocessor
from repro.eval.metrics import confusion_counts


def describe(name: str, predictions, labels) -> None:
    metrics = confusion_counts(predictions, labels)
    print(f"  {name:<12} F1 {metrics.f1 * 100:5.1f}   "
          f"precision {metrics.precision:.2f}   recall {metrics.recall:.2f}")


def main() -> None:
    test = load_dataset("adult", size=600)
    train = load_dataset("adult", size=400, seed=99)
    labels = [instance.label for instance in test.instances]
    print(f"Adult census ED: {len(test)} cells to judge, "
          f"{sum(labels)} truly erroneous\n")

    holoclean = HoloCleanDetector().fit(test.instances)
    hc_predictions = holoclean.predict(test.instances)

    labeled = list(train.fewshot_pool) + list(train.instances[:48])
    holodetect = HoloDetectDetector().fit(test.instances, labeled)
    hd_predictions = holodetect.predict(test.instances)

    llm = Preprocessor(SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4"))
    llm_predictions = llm.run(test).predictions

    print("Method comparison (paper: HoloClean 54.5, HoloDetect 99.1, "
          "GPT-4 92.0):")
    describe("HoloClean", hc_predictions, labels)
    describe("HoloDetect", hd_predictions, labels)
    describe("GPT-4", llm_predictions, labels)

    print("\nErrors only the LLM caught (constraint-free evidence):")
    shown = 0
    for inst, hc, llm_p in zip(test.instances, hc_predictions, llm_predictions):
        if inst.label and llm_p and not hc and shown < 5:
            shown += 1
            value = inst.record[inst.target_attribute]
            print(f"  {inst.target_attribute} = {value!r}"
                  f"   (clean value: {inst.clean_value!r})")

    print("\nPer-attribute F1 of the LLM (worst attributes first):")
    from repro.eval.analysis import per_group_metrics

    for group in per_group_metrics(list(test.instances), llm_predictions)[:5]:
        print(f"  {str(group.group):<15} F1 {group.score * 100:5.1f}   "
              f"({group.n} cells, {group.n_positive} errors)")

    print("\nErrors nobody caught:")
    shown = 0
    for inst, hd, llm_p in zip(test.instances, hd_predictions, llm_predictions):
        if inst.label and not hd and not llm_p and shown < 5:
            shown += 1
            value = inst.record[inst.target_attribute]
            print(f"  {inst.target_attribute} = {value!r}"
                  f"   (clean value: {inst.clean_value!r})")


if __name__ == "__main__":
    main()
