"""Entity matching across product catalogs: blocking + LLM matching.

The classical EM stack (paper Section 2.1): blocking first generates
candidate pairs cheaply, then pairwise matching decides each candidate.
This example blocks two product tables, compares Magellan/Ditto/GPT-4 on
the resulting pairs, and prints the cost of each choice.

Run:
    python examples/match_product_catalogs.py
"""

from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.baselines import Blocker, DittoMatcher, MagellanMatcher
from repro.data.records import Table
from repro.eval import evaluate_pipeline
from repro.eval.metrics import f1_score


def blocking_demo(dataset) -> None:
    """Block the left and right sides of the benchmark's pairs."""
    schema = dataset.instances[0].pair.left.schema
    left = Table(schema, [i.pair.left for i in dataset.instances])
    right = Table(schema, [i.pair.right for i in dataset.instances])
    true_matches = [
        (index, index) for index, instance in enumerate(dataset.instances)
        if instance.label
    ]
    print("Blocking on the title attribute:")
    for method in ("equality", "soundex", "token"):
        result = Blocker("title", method=method).block(left, right)
        print(f"  {method:<9} candidates {len(result.pairs):>7,}   "
              f"reduction {result.reduction_ratio * 100:5.1f}%   "
              f"pair completeness "
              f"{result.pair_completeness(true_matches) * 100:5.1f}%")
    print()


def main() -> None:
    test = load_dataset("walmart_amazon", size=400)
    train = load_dataset("walmart_amazon", size=600, seed=99)
    labels = [instance.label for instance in test.instances]
    print(f"Walmart-Amazon EM: {len(test)} candidate pairs, "
          f"{sum(labels)} true matches\n")

    blocking_demo(test)

    magellan = MagellanMatcher().fit(train.instances)
    ditto = DittoMatcher().fit(train.instances)
    print("Pairwise matching (paper: Magellan 71.9, Ditto 86.8, GPT-4 90.3):")
    print(f"  Magellan  F1 {f1_score(magellan.predict(test.instances), labels) * 100:5.1f}")
    print(f"  Ditto     F1 {f1_score(ditto.predict(test.instances), labels) * 100:5.1f}")

    run = evaluate_pipeline(
        SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4"), test
    )
    print(f"  GPT-4     F1 {run.score_pct:>5}   "
          f"(${run.cost_usd:.2f}, {run.total_tokens:,} tokens, "
          f"{run.hours:.2f} h modeled)")

    cheap = evaluate_pipeline(
        SimulatedLLM("gpt-3.5"), PipelineConfig(model="gpt-3.5"), test
    )
    print(f"  GPT-3.5   F1 {cheap.score_pct:>5}   "
          f"(${cheap.cost_usd:.2f}, {cheap.total_tokens:,} tokens, "
          f"{cheap.hours:.2f} h modeled)")
    print("\nThe trained matchers are free per pair but need labeled "
          "training data; the LLMs need none but meter every token.")


if __name__ == "__main__":
    main()
