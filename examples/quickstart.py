"""Quickstart: impute missing cities with an LLM, end to end.

Walks every block of the paper's Figure 1 on the Restaurant benchmark:
contextualization, zero-shot + few-shot prompting, batch prompting, the
(simulated) LLM call, answer parsing, and scoring.

Run:
    python examples/quickstart.py
"""

from repro import PipelineConfig, Preprocessor, SimulatedLLM, load_dataset
from repro.core.prompts import PromptBuilder
from repro.data.instances import Task
from repro.eval import evaluate_pipeline


def show_one_prompt(dataset) -> None:
    """Print the exact prompt the framework sends for two instances."""
    builder = PromptBuilder(
        Task.DATA_IMPUTATION, PipelineConfig(model="gpt-4"),
        target_attribute="city",
    )
    examples = dataset.sample_fewshot(2)
    prompt = builder.build(list(dataset.instances[:2]), fewshot_examples=examples)
    print("=" * 72)
    print("The prompt, block by block (Figure 1):")
    print("=" * 72)
    for message in prompt.messages:
        print(f"--- {message.role} " + "-" * (60 - len(message.role)))
        print(message.content)
    print("=" * 72)


def main() -> None:
    dataset = load_dataset("restaurant")
    print(f"dataset: {dataset.name} — {len(dataset)} records with a missing "
          f"city; {len(dataset.fewshot_pool)} hand-labeled examples\n")

    show_one_prompt(dataset)

    client = SimulatedLLM("gpt-4")
    config = PipelineConfig(model="gpt-4")  # the paper's best setting
    preprocessor = Preprocessor(client, config)
    result = preprocessor.run(dataset)

    print("\nFirst five imputations vs ground truth:")
    for instance, predicted in list(zip(dataset.instances, result.predictions))[:5]:
        truth = instance.true_value
        flag = "ok " if predicted == truth else "MISS"
        print(f"  [{flag}] phone={instance.record['phone']}  ->  "
              f"{predicted!r}  (truth: {truth!r})")

    run = evaluate_pipeline(client, config, dataset)
    print(f"\naccuracy: {run.score_pct}%  "
          f"(paper, GPT-4 best setting: 97.7%)")
    print(f"tokens: {run.total_tokens:,}   cost: ${run.cost_usd:.2f}   "
          f"modeled time: {run.hours * 60:.1f} min   "
          f"requests: {run.n_requests}")

    # Concurrency: the same run over 4 worker lanes. Predictions are
    # bit-identical — only the modeled wall-clock shrinks, because lane
    # latencies overlap instead of summing (time is now a makespan).
    concurrent = Preprocessor(
        SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4", concurrency=4)
    ).run(dataset)
    assert concurrent.predictions == result.predictions
    report = concurrent.execution
    print(f"\nwith concurrency=4: modeled time "
          f"{concurrent.estimated_seconds / 60:.1f} min vs "
          f"{report.sequential_s / 60:.1f} min sequential "
          f"(speedup {report.speedup:.1f}x, "
          f"mean lane utilization {report.mean_utilization * 100:.0f}%)")


if __name__ == "__main__":
    main()
