"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` via pyproject-only metadata) fail
with ``invalid command 'bdist_wheel'``.  Keeping this shim lets pip use the
legacy ``setup.py develop`` path; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
