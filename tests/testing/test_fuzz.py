"""The deterministic reply fuzzer: invariants, determinism, and teeth."""

import pytest

from repro.core import parsing
from repro.data.instances import Task
from repro.testing import OPERATORS, FuzzCase, generate_case, run_fuzz
from repro.testing.fuzz import WELLFORMED_EVERY, _make_reply
import random


class TestFuzzInvariants:
    def test_200_cases_hold_the_invariants(self):
        report = run_fuzz(n_cases=200, seed=0)
        assert report.ok, report.render()
        assert report.n_cases == 200

    def test_second_seed_also_holds(self):
        report = run_fuzz(n_cases=100, seed=7)
        assert report.ok, report.render()

    def test_every_operator_is_exercised(self):
        report = run_fuzz(n_cases=200, seed=0)
        assert set(report.op_counts) == set(OPERATORS)
        assert all(count > 0 for count in report.op_counts.values())

    def test_wellformed_fraction_is_reserved(self):
        report = run_fuzz(n_cases=200, seed=0)
        assert report.n_wellformed == 200 // WELLFORMED_EVERY
        # malformed cases must actually trip the strict parser sometimes,
        # or the corpus is too gentle to test anything
        assert report.n_strict_rejected > 20


class TestFuzzDeterminism:
    def test_cases_are_pure_functions_of_seed_and_index(self):
        for index in range(40):
            first = generate_case(index, seed=3)
            second = generate_case(index, seed=3)
            assert first == second

    def test_corpus_digest_is_stable(self):
        assert run_fuzz(80, seed=0).digest == run_fuzz(80, seed=0).digest

    def test_different_seeds_differ(self):
        assert run_fuzz(80, seed=0).digest != run_fuzz(80, seed=1).digest

    def test_wellformed_cases_carry_their_answers(self):
        case = generate_case(0, seed=0)  # index 0 is always well-formed
        assert case.wellformed
        parsed = parsing.parse_batch_answers(case.text, case.task, case.expected)
        assert parsed == list(case.answers)


class TestFuzzTeeth:
    """The harness must detect a broken parser, not just bless a good one."""

    def test_crashing_lenient_parser_is_reported(self, monkeypatch):
        def explode(text, task, expected):
            raise ValueError("boom")

        monkeypatch.setattr(parsing, "parse_batch_answers_lenient", explode)
        report = run_fuzz(n_cases=20, seed=0)
        assert not report.ok
        assert any(
            v.invariant == "lenient-never-raises" for v in report.violations
        )

    def test_wrong_shape_is_reported(self, monkeypatch):
        monkeypatch.setattr(
            parsing, "parse_batch_answers_lenient",
            lambda text, task, expected: [None] * (expected + 1),
        )
        report = run_fuzz(n_cases=20, seed=0)
        assert any(v.invariant == "lenient-length" for v in report.violations)

    def test_strict_crash_is_reported(self, monkeypatch):
        def explode(text, task, expected):
            raise RuntimeError("not a format error")

        monkeypatch.setattr(parsing, "parse_batch_answers", explode)
        report = run_fuzz(n_cases=20, seed=0)
        assert any(
            v.invariant == "strict-only-raises-AnswerFormatError"
            for v in report.violations
        )

    def test_violation_render_is_reproducible_from_its_text(self, monkeypatch):
        monkeypatch.setattr(
            parsing, "parse_batch_answers",
            lambda *a: (_ for _ in ()).throw(RuntimeError("x")),
        )
        report = run_fuzz(n_cases=5, seed=4)
        text = report.render()
        assert "seed 4" in text and "ops" in text and "reply:" in text


class TestOperators:
    def test_operators_are_deterministic(self):
        text, __ = _make_reply(random.Random(1), Task.ENTITY_MATCHING, 4, True)
        for name, op in OPERATORS.items():
            assert op(text, random.Random(9)) == op(text, random.Random(9)), name

    def test_drop_marker_removes_exactly_one_marker(self):
        text, __ = _make_reply(random.Random(1), Task.ENTITY_MATCHING, 4, False)
        mutated = OPERATORS["drop_marker"](text, random.Random(2))
        count = sum(
            1 for line in mutated.splitlines()
            if parsing._ANSWER_RE.match(line)
        )
        assert count == 3

    def test_renumber_markers_keeps_line_count(self):
        text, __ = _make_reply(random.Random(1), Task.ENTITY_MATCHING, 4, True)
        mutated = OPERATORS["renumber_markers"](text, random.Random(2))
        assert len(mutated.splitlines()) == len(text.splitlines())

    def test_truncate_never_grows(self):
        text, __ = _make_reply(random.Random(1), Task.DATA_IMPUTATION, 3, False)
        assert len(OPERATORS["truncate_tail"](text, random.Random(5))) <= len(text)

    def test_case_preserved_fields(self):
        case = generate_case(17, seed=0)
        assert isinstance(case, FuzzCase)
        assert case.expected == len(case.answers)
        assert all(name in OPERATORS for name in case.ops)
