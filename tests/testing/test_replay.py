"""Differential replay over the recorded reply corpus + mutation canary.

The replay suite re-feeds every raw reply stored in the golden snapshots
through the *current* parsing stack — no pipeline, no datasets, no model
— and diffs the outcome against what was recorded at capture time.  The
mutation canary then proves the suite has teeth: compiling
``core/parsing.py`` with a single-character edit must produce mismatches,
and the unmutated module must replay clean.  Flipping one character in
the real file on disk fails ``test_replay_matches_recordings`` with the
same readable diff.
"""

from pathlib import Path

import pytest

from repro.core import parsing as live_parsing
from repro.data.instances import Task
from repro.errors import AnswerFormatError
from repro.testing import (
    GOLDEN_CELLS,
    GoldenStore,
    ReplayError,
    load_mutated_parsing,
    parse_outcomes,
    replay_exchanges,
    replay_snapshot,
)

STORE = GoldenStore(Path(__file__).parent.parent / "golden" / "snapshots")
#: only pipeline cells record a reply corpus; serving snapshots freeze
#: scheduler behavior and have nothing for the parser to replay
SNAPSHOT_NAMES = [
    name for name in STORE.names()
    if name in {cell.name for cell in GOLDEN_CELLS}
]

#: single-character edits of core/parsing.py, each breaking a different
#: layer: marker detection, block splitting, block classification, and
#: the lenient parser's salvage alignment
MUTATIONS = (
    (r"answer\s*(\d+)", r"answeq\s*(\d+)"),
    ("lines[start + 1 : end]", "lines[start + 2 : end]"),
    ("if len(body) == 1:", "if len(body) == 2:"),
    ("not 1 <= current", "not 2 <= current"),
)


@pytest.mark.parametrize("name", SNAPSHOT_NAMES)
def test_replay_matches_recordings(name):
    """The current parser reproduces every recorded parse outcome."""
    report = replay_snapshot(STORE.load(name), snapshot=name)
    assert report.ok, report.render()
    assert report.n_exchanges > 0


@pytest.mark.parametrize(
    "old, new", MUTATIONS, ids=[old for old, __ in MUTATIONS]
)
def test_mutation_canary_detects_single_character_edits(old, new):
    """A one-character parser mutation must fail replay with a readable diff."""
    mutant = load_mutated_parsing(old, new)
    total_mismatches = 0
    for name in SNAPSHOT_NAMES:
        report = replay_snapshot(
            STORE.load(name), snapshot=name, parsing_module=mutant
        )
        total_mismatches += len(report.mismatches)
        if report.mismatches:
            text = report.render()
            assert name in text
            assert "recorded:" in text and "replayed:" in text
            assert "reply:" in text
    assert total_mismatches > 0, (
        f"mutation {old!r} -> {new!r} went undetected by the replay corpus"
    )


def test_mutation_canary_reverts_to_green():
    """The same harness is clean against the unmutated module — the canary
    detects the mutation, not itself."""
    for name in SNAPSHOT_NAMES:
        report = replay_snapshot(
            STORE.load(name), snapshot=name, parsing_module=live_parsing
        )
        assert report.ok, report.render()


class TestParseOutcomes:
    def test_ok_outcome_is_json_native(self):
        outcome = parse_outcomes("Answer 1: yes\nAnswer 2: no",
                                 Task.ENTITY_MATCHING, 2)
        assert outcome["strict"] == {"ok": [True, False]}
        assert outcome["lenient"] == [True, False]

    def test_error_outcome_records_message(self):
        outcome = parse_outcomes("", Task.ENTITY_MATCHING, 2)
        assert "error" in outcome["strict"]
        assert outcome["lenient"] == [None, None]

    def test_imputation_values_survive(self):
        outcome = parse_outcomes("Answer 1: tokyo", Task.DATA_IMPUTATION, 1)
        assert outcome["strict"] == {"ok": ["tokyo"]}

    def test_non_format_errors_propagate(self):
        class Exploding:
            @staticmethod
            def parse_batch_answers(reply, task, expected):
                raise ValueError("boom")

            @staticmethod
            def parse_batch_answers_lenient(reply, task, expected):
                return [None] * expected

        with pytest.raises(ValueError):
            parse_outcomes("x", Task.ENTITY_MATCHING, 1,
                           parsing_module=Exploding)


class TestReplayPlumbing:
    def test_missing_exchange_field_is_a_replay_error(self):
        with pytest.raises(ReplayError):
            replay_exchanges([{"reply": "x"}], Task.ENTITY_MATCHING)

    def test_malformed_snapshot_payload_is_a_replay_error(self):
        with pytest.raises(ReplayError):
            replay_snapshot({"exchanges": []})

    def test_unknown_mutation_target_is_a_replay_error(self):
        with pytest.raises(ReplayError):
            load_mutated_parsing("THIS STRING IS NOT IN PARSING PY", "x")

    def test_mutant_shares_the_real_error_type(self):
        mutant = load_mutated_parsing(
            "empty model reply", "empty model replY"
        )
        with pytest.raises(AnswerFormatError):
            mutant.parse_batch_answers("", Task.ENTITY_MATCHING, 1)
