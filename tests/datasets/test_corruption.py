"""Tests for repro.datasets.corruption."""

import random

import pytest

from repro.datasets.corruption import (
    CellCorruptor,
    Corruption,
    domain_violation,
    numeric_outlier,
    typo,
    value_swap,
)
from repro.errors import DatasetError


class TestTypo:
    @pytest.mark.parametrize("kind", ["insert", "delete", "substitute",
                                      "transpose", "x_insert", "any"])
    def test_always_changes_value(self, kind):
        rng = random.Random(0)
        for __ in range(50):
            assert typo("hospital", rng, kind=kind).corrupted != "hospital"

    def test_x_insert_adds_x(self):
        rng = random.Random(1)
        out = typo("heart", rng, kind="x_insert")
        assert out.corrupted.replace("x", "", 1) == "heart" or "x" in out.corrupted

    def test_degenerate_strings_survive(self):
        rng = random.Random(2)
        for value in ("w", "ww", "www", "aa"):
            assert typo(value, rng).corrupted != value

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            typo("", random.Random(0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            typo("abc", random.Random(0), kind="mangle")


class TestDomainViolation:
    def test_replacement_differs(self):
        rng = random.Random(0)
        out = domain_violation("a", ["a", "b", "c"], rng)
        assert out.corrupted in ("b", "c")

    def test_no_distinct_candidates(self):
        with pytest.raises(DatasetError):
            domain_violation("a", ["a"], random.Random(0))


class TestNumericOutlier:
    def test_far_outside(self):
        rng = random.Random(0)
        for __ in range(30):
            out = numeric_outlier(40, rng)
            value = float(out.corrupted)
            assert value < 10 or value > 300

    def test_zero_handled(self):
        out = numeric_outlier(0, random.Random(0))
        assert float(out.corrupted) != 0.0

    def test_bad_range(self):
        with pytest.raises(DatasetError):
            numeric_outlier(1, random.Random(0), scale_range=(0.5, 2.0))


class TestValueSwap:
    def test_swap(self):
        a, b = value_swap("x", "y")
        assert a.corrupted == "y" and b.corrupted == "x"

    def test_equal_rejected(self):
        with pytest.raises(DatasetError):
            value_swap("x", "x")


class TestCorruptionInvariants:
    def test_no_op_corruption_rejected(self):
        with pytest.raises(DatasetError):
            Corruption(original="a", corrupted="a", kind="typo")

    def test_cell_corruptor_text(self):
        corruptor = CellCorruptor(random.Random(3))
        out = corruptor.corrupt_text("private", foreign_domain=["sales"])
        assert out.corrupted != "private"
