"""Tests for repro.datasets.empairs."""

import random

import pytest

from repro.data.schema import Schema
from repro.datasets.empairs import (
    EMPairGenerator,
    PairProfile,
    perturb_value,
    render_view,
    _jitter_numeric,
)


@pytest.fixture()
def schema():
    return Schema.from_names("things", ["title", "brand", "price"])


def _entity(rng, index):
    return {"title": f"brand thing t{index}", "brand": "brand",
            "price": "10.00"}


def _hard_negative(entity, rng):
    return {"title": entity["title"] + " variant", "brand": entity["brand"],
            "price": "12.00"}


class TestPairProfile:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            PairProfile(divergence=1.5, drop_rate=0, positive_rate=0.5,
                        hard_negative_rate=0)


class TestPerturbValue:
    def test_decimal_points_preserved(self):
        # Punctuation stripping removes abbreviation dots but never a
        # decimal point between digits (4.4% must not become 44%).
        import re

        stripped = re.sub(r"(?<!\d)\.|\.(?!\d)", "", "co. ltd 4.4%")
        assert stripped == "co ltd 4.4%"
        # Random typos may still delete the dot occasionally, but the
        # *systematic* punctuation strip (50% of perturbations) must not:
        # losses should stay rare.
        rng = random.Random(0)
        losses = sum(
            "44%" in perturb_value("stone co. 4.4%", rng, intensity=1.0)
            for __ in range(300)
        )
        assert losses < 30

    def test_trailing_drop_never_removes_code(self):
        rng = random.Random(1)
        for __ in range(100):
            out = perturb_value("adobe photoshop 5.0 deluxe", rng, 1.0)
            # "5.0" may be typo'd, but never dropped wholesale by the
            # trailing-token rule (only descriptive words are dropped).
            assert any(ch.isdigit() for ch in out)


class TestRenderView:
    def test_unperturbed_view_verbatim(self, schema):
        profile = PairProfile(divergence=0.9, drop_rate=0.9,
                              positive_rate=0.5, hard_negative_rate=0.5)
        record = render_view(_entity(random.Random(0), 1), schema,
                             random.Random(0), profile, "x", perturb=False)
        assert record["title"] == "brand thing t1"

    def test_identity_field_never_dropped(self, schema):
        profile = PairProfile(divergence=0.0, drop_rate=1.0,
                              positive_rate=0.5, hard_negative_rate=0.5)
        record = render_view(_entity(random.Random(0), 1), schema,
                             random.Random(0), profile, "x", perturb=True)
        assert record["title"] is not None
        assert record["brand"] is None  # everything else dropped

    def test_reroll_values(self, schema):
        profile = PairProfile(divergence=0.0, drop_rate=0.0,
                              positive_rate=0.5, hard_negative_rate=0.5,
                              reroll_values={"brand": ("other",)})
        record = render_view(_entity(random.Random(0), 1), schema,
                             random.Random(0), profile, "x", perturb=True)
        assert record["brand"] == "other"

    def test_jitter_attribute(self, schema):
        profile = PairProfile(divergence=0.0, drop_rate=0.0,
                              positive_rate=0.5, hard_negative_rate=0.5,
                              jitter_attributes=("price",))
        record = render_view(_entity(random.Random(3), 1), schema,
                             random.Random(3), profile, "x", perturb=True)
        assert record["price"] != "10.00"


class TestJitterNumeric:
    def test_within_15_percent(self):
        rng = random.Random(0)
        for __ in range(100):
            out = float(_jitter_numeric("100.00", rng))
            assert 85.0 <= out <= 115.0

    def test_affixes_kept(self):
        out = _jitter_numeric("$100.00 usd", random.Random(0))
        assert out.startswith("$") and out.endswith(" usd")

    def test_non_numeric_passthrough(self):
        assert _jitter_numeric("abc", random.Random(0)) == "abc"


class TestEMPairGenerator:
    def test_labels_and_count(self, schema):
        profile = PairProfile(divergence=0.3, drop_rate=0.1,
                              positive_rate=0.5, hard_negative_rate=0.5)
        generator = EMPairGenerator(schema, _entity, _hard_negative, profile, "t")
        instances = generator.generate(200, random.Random(0))
        assert len(instances) == 200
        rate = sum(1 for i in instances if i.label) / 200
        assert 0.35 < rate < 0.65

    def test_matches_share_identity_mostly(self, schema):
        profile = PairProfile(divergence=0.0, drop_rate=0.0,
                              positive_rate=1.0, hard_negative_rate=0.0)
        generator = EMPairGenerator(schema, _entity, _hard_negative, profile, "t")
        for inst in generator.generate(20, random.Random(0)):
            assert inst.label
            assert inst.pair.left["title"] == inst.pair.right["title"]
