"""Generator behaviour common to all twelve benchmarks, plus dataset-
specific invariants the solvers and baselines rely on."""

import subprocess
import sys

import pytest

from repro.data.instances import DIInstance, EDInstance, EMInstance, SMInstance
from repro.datasets import DATASET_NAMES, load_dataset
from repro.datasets.adult import ADULT_SCHEMA
from repro.datasets.vocabularies import AREA_CODE_TO_CITY, EDUCATION_LEVELS


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestEveryDataset:
    def test_sizes_and_pool_disjointness(self, name):
        ds = load_dataset(name, size=50, seed=3)
        assert len(ds.instances) == 50
        assert ds.fewshot_pool
        pool_ids = {i.instance_id for i in ds.fewshot_pool}
        test_ids = {i.instance_id for i in ds.instances}
        assert not pool_ids & test_ids

    def test_determinism_within_process(self, name):
        a = load_dataset(name, size=40, seed=9)
        b = load_dataset(name, size=40, seed=9)
        assert a is b  # cached

    def test_instance_ids_unique(self, name):
        ds = load_dataset(name, size=50, seed=3)
        ids = [i.instance_id for i in ds.instances + ds.fewshot_pool]
        assert len(ids) == len(set(ids))


class TestBinaryPools:
    @pytest.mark.parametrize(
        "name", [n for n in DATASET_NAMES if n not in ("buy", "restaurant")]
    )
    def test_pool_has_both_classes(self, name):
        ds = load_dataset(name, size=60, seed=4)
        labels = {i.label for i in ds.fewshot_pool}
        assert labels == {True, False}


class TestEDInvariants:
    def test_adult_positive_cells_differ_from_clean(self, adult_dataset):
        for inst in adult_dataset.instances:
            assert isinstance(inst, EDInstance)
            if inst.label:
                assert inst.clean_value is not None
                assert str(inst.record[inst.target_attribute]) != inst.clean_value

    def test_adult_clean_education_consistency(self, adult_dataset):
        mapping = dict(EDUCATION_LEVELS)
        for inst in adult_dataset.instances:
            if inst.target_attribute == "educationnum" and not inst.label:
                education = inst.record["education"]
                if education in mapping:
                    assert int(inst.record["educationnum"]) == mapping[education]

    def test_adult_schema(self, adult_dataset):
        for inst in adult_dataset.instances:
            assert inst.record.schema.attribute_names == ADULT_SCHEMA.attribute_names

    def test_hospital_stateavg_consistent_when_clean(self, hospital_dataset):
        for inst in hospital_dataset.instances:
            if inst.target_attribute == "stateavg" and not inst.label:
                value = str(inst.record["stateavg"]) or ""
                # Clean stateavg always has the {state}_{code} shape.
                assert "_" in value


class TestDIInvariants:
    def test_restaurant_phone_identifies_city(self, restaurant_dataset):
        for inst in restaurant_dataset.instances:
            assert isinstance(inst, DIInstance)
            area = str(inst.record["phone"]).split("-")[0]
            assert AREA_CODE_TO_CITY[area] == inst.true_value

    def test_buy_brand_in_name(self, buy_dataset):
        for inst in buy_dataset.instances:
            assert inst.true_value in str(inst.record["name"])

    def test_target_cell_blank(self, restaurant_dataset, buy_dataset):
        for ds in (restaurant_dataset, buy_dataset):
            for inst in ds.instances:
                assert inst.record[inst.target_attribute] is None


class TestSMInvariants:
    def test_pairs_have_descriptions(self, synthea_dataset):
        for inst in synthea_dataset.instances:
            assert isinstance(inst, SMInstance)
            assert inst.pair.left.description
            assert inst.pair.right.description

    def test_positive_pairs_distinct_names(self, synthea_dataset):
        for inst in synthea_dataset.instances:
            if inst.label:
                assert inst.pair.left.name != inst.pair.right.name


class TestEMInvariants:
    @pytest.mark.parametrize(
        "name",
        ["amazon_google", "walmart_amazon", "beer", "dblp_acm",
         "dblp_scholar", "fodors_zagat", "itunes_amazon"],
    )
    def test_schemas_aligned_and_identity_present(self, name):
        ds = load_dataset(name, size=60, seed=5)
        for inst in ds.instances:
            assert isinstance(inst, EMInstance)
            left, right = inst.pair.left, inst.pair.right
            assert left.schema.attribute_names == right.schema.attribute_names
            first = left.schema.attribute_names[0]
            # The identity field is never dropped in either view.
            assert left[first] is not None
            assert right[first] is not None

    def test_positive_rate_in_declared_ballpark(self):
        ds = load_dataset("amazon_google", size=500, seed=6)
        assert 0.05 < ds.positive_rate < 0.25


def test_cross_process_determinism():
    """The same (name, size, seed) must be identical in a fresh process."""
    snippet = (
        "from repro.datasets import load_dataset;"
        "ds = load_dataset('restaurant', size=20, seed=11);"
        "print('|'.join(str(i.record['phone']) for i in ds.instances))"
    )
    runs = {
        subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, check=True,
        ).stdout
        for __ in range(2)
    }
    assert len(runs) == 1
