"""Tests for repro.datasets.registry."""

import pytest

from repro.data.instances import Task
from repro.datasets import DATASET_NAMES, dataset_info, load_dataset
from repro.datasets.registry import clear_cache
from repro.errors import DatasetError, UnknownDatasetError


class TestRegistry:
    def test_all_twelve_present(self):
        assert len(DATASET_NAMES) == 12

    def test_unknown_name(self):
        with pytest.raises(UnknownDatasetError):
            load_dataset("nope")
        with pytest.raises(UnknownDatasetError):
            dataset_info("nope")

    def test_info_matches_paper_tasks(self):
        assert dataset_info("adult").task is Task.ERROR_DETECTION
        assert dataset_info("buy").task is Task.DATA_IMPUTATION
        assert dataset_info("synthea").task is Task.SCHEMA_MATCHING
        assert dataset_info("beer").task is Task.ENTITY_MATCHING

    def test_published_sizes(self):
        # The benchmark's published test-set sizes (fm_data_tasks).
        assert dataset_info("buy").default_size == 65
        assert dataset_info("restaurant").default_size == 86
        assert dataset_info("beer").default_size == 91
        assert dataset_info("itunes_amazon").default_size == 109
        assert dataset_info("fodors_zagat").default_size == 189

    def test_requested_size_honored(self):
        ds = load_dataset("beer", size=40)
        assert len(ds) == 40

    def test_bad_size_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("beer", size=0)

    def test_caching_returns_same_object(self):
        a = load_dataset("beer", size=30, seed=3)
        b = load_dataset("beer", size=30, seed=3)
        assert a is b

    def test_clear_cache(self):
        a = load_dataset("beer", size=31, seed=3)
        clear_cache()
        b = load_dataset("beer", size=31, seed=3)
        assert a is not b

    def test_seed_changes_content(self):
        a = load_dataset("beer", size=30, seed=1)
        b = load_dataset("beer", size=30, seed=2)
        texts_a = [str(i.pair.left) for i in a.instances]
        texts_b = [str(i.pair.left) for i in b.instances]
        assert texts_a != texts_b
