"""Tests for repro.datasets.registry."""

import pytest

from repro.data.instances import Task
from repro.datasets import DATASET_NAMES, dataset_info, load_dataset
from repro.datasets.registry import clear_cache
from repro.errors import DatasetError, UnknownDatasetError


class TestRegistry:
    def test_all_twelve_present(self):
        assert len(DATASET_NAMES) == 12

    def test_unknown_name(self):
        with pytest.raises(UnknownDatasetError):
            load_dataset("nope")
        with pytest.raises(UnknownDatasetError):
            dataset_info("nope")

    def test_info_matches_paper_tasks(self):
        assert dataset_info("adult").task is Task.ERROR_DETECTION
        assert dataset_info("buy").task is Task.DATA_IMPUTATION
        assert dataset_info("synthea").task is Task.SCHEMA_MATCHING
        assert dataset_info("beer").task is Task.ENTITY_MATCHING

    def test_published_sizes(self):
        # The benchmark's published test-set sizes (fm_data_tasks).
        assert dataset_info("buy").default_size == 65
        assert dataset_info("restaurant").default_size == 86
        assert dataset_info("beer").default_size == 91
        assert dataset_info("itunes_amazon").default_size == 109
        assert dataset_info("fodors_zagat").default_size == 189

    def test_requested_size_honored(self):
        ds = load_dataset("beer", size=40)
        assert len(ds) == 40

    def test_bad_size_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("beer", size=0)

    def test_caching_returns_same_object(self):
        a = load_dataset("beer", size=30, seed=3)
        b = load_dataset("beer", size=30, seed=3)
        assert a is b

    def test_clear_cache(self):
        a = load_dataset("beer", size=31, seed=3)
        clear_cache()
        b = load_dataset("beer", size=31, seed=3)
        assert a is not b

    def test_seed_changes_content(self):
        a = load_dataset("beer", size=30, seed=1)
        b = load_dataset("beer", size=30, seed=2)
        texts_a = [str(i.pair.left) for i in a.instances]
        texts_b = [str(i.pair.left) for i in b.instances]
        assert texts_a != texts_b


class TestSchemaCacheKeys:
    """Regression: the dataset cache must key on generator *content*.

    Before cache_token, the key was (name, size, seed) — two different
    schemas reachable under the same name (one schema file edited between
    loads, or sequential re-registration) aliased in the cache and the
    second load silently returned the first schema's data.
    """

    def _write(self, tmp_path, preset_name, filename):
        import json

        from repro.factory import preset

        path = tmp_path / filename
        path.write_text(
            json.dumps(preset(preset_name).to_dict()), encoding="utf-8"
        )
        return path

    def test_builtin_generators_have_an_empty_cache_token(self):
        from repro.datasets.registry import _GENERATORS

        assert all(g.cache_token == "" for g in _GENERATORS.values())

    def test_two_schemas_same_sizes_different_names_stay_distinct(
        self, tmp_path
    ):
        from repro.datasets import SCHEMA_PREFIX

        a_path = self._write(tmp_path, "adult_replica", "a.json")
        b_path = self._write(tmp_path, "orders", "b.json")
        a = load_dataset(f"{SCHEMA_PREFIX}{a_path}", size=10, seed=0)
        b = load_dataset(f"{SCHEMA_PREFIX}{b_path}", size=10, seed=0)
        assert a is not b
        assert str(a.instances[0].record) != str(b.instances[0].record)

    def test_edited_schema_file_is_not_aliased(self, tmp_path):
        """Same path, same (size, seed) — edited content must reload."""
        from repro.datasets import SCHEMA_PREFIX

        path = self._write(tmp_path, "adult_replica", "schema.json")
        first = load_dataset(f"{SCHEMA_PREFIX}{path}", size=10, seed=0)
        self._write(tmp_path, "orders", "schema.json")
        second = load_dataset(f"{SCHEMA_PREFIX}{path}", size=10, seed=0)
        assert first is not second
        assert first.name != second.name

    def test_same_schema_content_still_caches(self, tmp_path):
        from repro.datasets import SCHEMA_PREFIX

        path = self._write(tmp_path, "orders", "schema.json")
        a = load_dataset(f"{SCHEMA_PREFIX}{path}", size=10, seed=0)
        b = load_dataset(f"{SCHEMA_PREFIX}{path}", size=10, seed=0)
        assert a is b

    def test_sequential_reregistration_under_one_name(self):
        """Register schema A under a name, drop it, register schema B
        under the same name: the cache must not serve A's data for B."""
        from repro.datasets.registry import _GENERATORS, clear_cache
        from repro.factory import preset, register_schema

        name = "reused_name_for_cache_test"
        try:
            register_schema(preset("adult_replica"), name=name)
            first = load_dataset(name, size=10, seed=0)
            del _GENERATORS[name]
            register_schema(preset("orders"), name=name)
            second = load_dataset(name, size=10, seed=0)
            assert first is not second
            # different schemas -> different records, same registered name
            assert str(first.instances[0].record) != \
                str(second.instances[0].record)
        finally:
            _GENERATORS.pop(name, None)
            clear_cache()
