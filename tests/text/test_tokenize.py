"""Tests for repro.text.tokenize."""

from repro.text.tokenize import count_message_tokens, count_tokens, word_tokens


class TestWordTokens:
    def test_punctuation_are_tokens(self):
        assert word_tokens("a, b.") == ["a", ",", "b", "."]

    def test_contractions_stay_together(self):
        assert word_tokens("don't stop") == ["don't", "stop"]


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_short_words_cost_one(self):
        assert count_tokens("a bc def") == 3

    def test_long_words_cost_subwords(self):
        # 13 characters -> ceil(13/6) = 3 subword pieces
        assert count_tokens("extraordinary") == 3

    def test_monotone_in_text_length(self):
        assert count_tokens("one two three") > count_tokens("one two")

    def test_rough_english_rate(self):
        text = "the quick brown fox jumps over the lazy dog " * 20
        tokens = count_tokens(text)
        words = len(text.split())
        # ~1-1.5 tokens per English word
        assert words <= tokens <= int(words * 1.5)


class TestMessageTokens:
    def test_framing_overhead(self):
        base = count_tokens("hello")
        framed = count_message_tokens([("user", "hello")])
        assert framed > base  # role + separators cost extra

    def test_more_messages_cost_more(self):
        one = count_message_tokens([("user", "x")])
        two = count_message_tokens([("user", "x"), ("assistant", "y")])
        assert two > one
