"""Tests for repro.text.similarity."""

import pytest

from repro.text.similarity import (
    cosine_similarity,
    cosine_token_similarity,
    jaccard,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    ngrams,
    overlap_coefficient,
    token_set_ratio,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("ab", "ba", 2),  # transposition costs 2 edits
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcde", "xbcd") == levenshtein("xbcd", "abcde")

    def test_similarity_scale(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abcd", "wxyz") == 0.0


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler("martha", "martha") == 1.0

    def test_classic_pair(self):
        # The textbook MARTHA/MARHTA value is ~0.961.
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.961, abs=0.001)

    def test_no_similarity(self):
        assert jaro_winkler("abc", "xyz") == 0.0

    def test_prefix_bonus(self):
        base = jaro_winkler("prefixed", "prefixxx", prefix_scale=0.0)
        bonus = jaro_winkler("prefixed", "prefixxx", prefix_scale=0.1)
        assert bonus > base

    def test_bad_prefix_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    def test_bounds(self):
        assert 0.0 <= jaro_winkler("information", "informal") <= 1.0


class TestSetMeasures:
    def test_jaccard(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0
        assert jaccard(["a"], []) == 0.0

    def test_overlap(self):
        assert overlap_coefficient(["a", "b"], ["b"]) == 1.0
        assert overlap_coefficient([], []) == 1.0
        assert overlap_coefficient(["a"], []) == 0.0

    def test_cosine_tokens(self):
        assert cosine_token_similarity(["a", "a"], ["a"]) == pytest.approx(1.0)
        assert cosine_token_similarity(["a"], ["b"]) == 0.0


class TestCosineVectors:
    def test_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == 0.0

    def test_parallel(self):
        assert cosine_similarity([1, 2], [2, 4]) == pytest.approx(1.0)

    def test_zero_vector(self):
        assert cosine_similarity([0, 0], [1, 1]) == 0.0


class TestMongeElkan:
    def test_reordering_tolerated(self):
        a = ["powers", "ferry", "road"]
        b = ["road", "powers", "ferry"]
        assert monge_elkan(a, b) == pytest.approx(1.0)

    def test_typos_tolerated(self):
        assert monge_elkan(["ferry"], ["ferri"]) > 0.85

    def test_empty(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0


class TestTokenSetRatio:
    def test_case_and_punct_invariant(self):
        assert token_set_ratio("Hello, World!", "hello world") == 1.0

    def test_partial(self):
        score = token_set_ratio("golden dragon cafe", "golden dragon")
        assert 0.5 < score < 1.0

    def test_empty(self):
        assert token_set_ratio("", "") == 1.0


class TestNgrams:
    def test_padding(self):
        assert ngrams("ab", 3) == ["##a", "#ab", "ab#", "b##"]

    def test_unigrams_unpadded(self):
        assert ngrams("abc", 1) == ["a", "b", "c"]

    def test_empty_string(self):
        assert ngrams("", 3) == ["####"] or ngrams("", 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)
