"""Tests for repro.text.embeddings."""

import numpy as np
import pytest

from repro.text.embeddings import (
    HashingEmbedder,
    average_pairwise_similarity,
    clear_hash_cache,
    hash_cache_size,
    nearest_neighbors,
)


class TestHashingEmbedder:
    def test_deterministic_across_instances(self):
        a = HashingEmbedder().embed("hello world")
        b = HashingEmbedder().embed("hello world")
        assert np.array_equal(a, b)

    def test_unit_norm(self):
        v = HashingEmbedder().embed("some text here")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_empty_text_is_zero(self):
        v = HashingEmbedder().embed("")
        assert np.allclose(v, 0.0)

    def test_similar_texts_closer_than_different(self):
        e = HashingEmbedder()
        base = "stone brewing pale ale"
        near = e.similarity(base, "stone brewing pale ale 6%")
        far = e.similarity(base, "database query optimization")
        assert near > far

    def test_embed_all_shape(self):
        matrix = HashingEmbedder(dim=64).embed_all(["a", "b", "c"])
        assert matrix.shape == (3, 64)

    def test_embed_all_empty(self):
        matrix = HashingEmbedder(dim=64).embed_all([])
        assert matrix.shape == (0, 64)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=0)
        with pytest.raises(ValueError):
            HashingEmbedder(ngram=-1)


class TestVectorizedKernel:
    CORPUS = [
        '[name: "stone ipa", style: "india pale ale", abv: "6.9"]',
        '[name: "pale ale", style: ???, abv: "5.2"]',
        "",
        "   ",
        "café münchen ß 中文",
        "a",
        '[name: "stone ipa", style: "india pale ale", abv: "6.9"]',
    ]

    @pytest.mark.parametrize("ngram", [0, 1, 2, 3, 4, 5, 9])
    def test_bit_identical_to_scalar(self, ngram):
        embedder = HashingEmbedder(dim=96, ngram=ngram)
        scalar = embedder.embed_all_scalar(self.CORPUS)
        vectorized = embedder.embed_all(self.CORPUS)
        assert (scalar == vectorized).all()

    def test_process_hash_cache_fills_and_clears(self):
        clear_hash_cache()
        assert hash_cache_size() == 0
        HashingEmbedder(dim=32).embed_all(["alpha beta", "beta gamma"])
        filled = hash_cache_size()
        assert filled > 0
        HashingEmbedder(dim=32).embed_all(["alpha beta"])
        # Re-embedding known vocabulary adds nothing new.
        assert hash_cache_size() == filled
        clear_hash_cache()
        assert hash_cache_size() == 0

    def test_cache_is_dimension_independent(self):
        corpus = ["delta epsilon zeta"]
        small = HashingEmbedder(dim=16).embed_all(corpus)
        large = HashingEmbedder(dim=512).embed_all(corpus)
        assert (small == HashingEmbedder(dim=16).embed_all_scalar(corpus)).all()
        assert (large == HashingEmbedder(dim=512).embed_all_scalar(corpus)).all()


class TestNeighbors:
    def test_nearest_first(self):
        e = HashingEmbedder()
        corpus = ["red apple", "green apple", "blue car"]
        matrix = e.embed_all(corpus)
        order = nearest_neighbors(e.embed("red apple pie"), matrix, k=2)
        assert order[0] == 0

    def test_empty_matrix(self):
        e = HashingEmbedder(dim=8)
        assert nearest_neighbors(e.embed("x"), np.zeros((0, 8))) == []

    def test_ties_break_by_index(self):
        # All rows identical: scores tie exactly, and the stable order is
        # ascending index — argpartition internals must not leak through.
        row = np.ones(4) / 2.0
        matrix = np.tile(row, (6, 1))
        for k in (1, 3, 6):
            assert nearest_neighbors(row, matrix, k=k) == list(range(k))


class TestPairwiseSimilarity:
    def test_identical_rows(self):
        e = HashingEmbedder()
        matrix = e.embed_all(["same text", "same text"])
        assert average_pairwise_similarity(matrix) == pytest.approx(1.0)

    def test_single_row_is_one(self):
        e = HashingEmbedder()
        assert average_pairwise_similarity(e.embed_all(["x"])) == 1.0

    def test_mixed_lower_than_homogeneous(self):
        e = HashingEmbedder()
        homogeneous = e.embed_all(["apple pie", "apple pies"])
        mixed = e.embed_all(["apple pie", "query engine"])
        assert average_pairwise_similarity(homogeneous) > average_pairwise_similarity(mixed)
