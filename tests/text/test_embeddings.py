"""Tests for repro.text.embeddings."""

import numpy as np
import pytest

from repro.text.embeddings import (
    HashingEmbedder,
    average_pairwise_similarity,
    nearest_neighbors,
)


class TestHashingEmbedder:
    def test_deterministic_across_instances(self):
        a = HashingEmbedder().embed("hello world")
        b = HashingEmbedder().embed("hello world")
        assert np.array_equal(a, b)

    def test_unit_norm(self):
        v = HashingEmbedder().embed("some text here")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_empty_text_is_zero(self):
        v = HashingEmbedder().embed("")
        assert np.allclose(v, 0.0)

    def test_similar_texts_closer_than_different(self):
        e = HashingEmbedder()
        base = "stone brewing pale ale"
        near = e.similarity(base, "stone brewing pale ale 6%")
        far = e.similarity(base, "database query optimization")
        assert near > far

    def test_embed_all_shape(self):
        matrix = HashingEmbedder(dim=64).embed_all(["a", "b", "c"])
        assert matrix.shape == (3, 64)

    def test_embed_all_empty(self):
        matrix = HashingEmbedder(dim=64).embed_all([])
        assert matrix.shape == (0, 64)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=0)
        with pytest.raises(ValueError):
            HashingEmbedder(ngram=-1)


class TestNeighbors:
    def test_nearest_first(self):
        e = HashingEmbedder()
        corpus = ["red apple", "green apple", "blue car"]
        matrix = e.embed_all(corpus)
        order = nearest_neighbors(e.embed("red apple pie"), matrix, k=2)
        assert order[0] == 0

    def test_empty_matrix(self):
        e = HashingEmbedder(dim=8)
        assert nearest_neighbors(e.embed("x"), np.zeros((0, 8))) == []


class TestPairwiseSimilarity:
    def test_identical_rows(self):
        e = HashingEmbedder()
        matrix = e.embed_all(["same text", "same text"])
        assert average_pairwise_similarity(matrix) == pytest.approx(1.0)

    def test_single_row_is_one(self):
        e = HashingEmbedder()
        assert average_pairwise_similarity(e.embed_all(["x"])) == 1.0

    def test_mixed_lower_than_homogeneous(self):
        e = HashingEmbedder()
        homogeneous = e.embed_all(["apple pie", "apple pies"])
        mixed = e.embed_all(["apple pie", "query engine"])
        assert average_pairwise_similarity(homogeneous) > average_pairwise_similarity(mixed)
