"""Tests for repro.text.normalize."""

from repro.text.normalize import (
    expand_abbreviations,
    extract_numbers,
    extract_phone,
    extract_years,
    normalize_text,
    normalize_token,
    strip_accents,
)


class TestNormalizeText:
    def test_lowercase_and_whitespace(self):
        assert normalize_text("  Hello   WORLD ") == "hello world"

    def test_accents(self):
        assert normalize_text("Café Noël") == "cafe noel"

    def test_punctuation_dropped_by_default(self):
        assert normalize_text("a,b.c!") == "a b c"

    def test_punctuation_kept_on_request(self):
        assert "." in normalize_text("co. ltd", keep_punct=True)


class TestTokens:
    def test_normalize_token(self):
        assert normalize_token("Río!") == "rio"

    def test_strip_accents_only(self):
        assert strip_accents("Ångström") == "Angstrom"


class TestAbbreviations:
    def test_street_forms(self):
        assert expand_abbreviations("powers ferry rd.") == "powers ferry road"

    def test_case_insensitive_lookup(self):
        assert expand_abbreviations("Main St.") == "Main street"

    def test_unknown_tokens_pass_through(self):
        assert expand_abbreviations("xyzzy") == "xyzzy"


class TestExtractors:
    def test_numbers(self):
        assert extract_numbers("a 12 b 3.5c") == [12.0, 3.5]

    def test_years_bounds(self):
        assert extract_years("in 1999 and 2050, not 1850 or 2150") == [1999, 2050]

    def test_phone_formats_canonicalized(self):
        assert extract_phone("(404) 555-1234") == "404-555-1234"
        assert extract_phone("404.555.1234") == "404-555-1234"
        assert extract_phone("4045551234") == "404-555-1234"

    def test_phone_absent(self):
        assert extract_phone("no digits here") is None
