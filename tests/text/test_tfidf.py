"""Tests for repro.text.tfidf."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.text.tfidf import TfidfVectorizer, char_ngram_analyzer, cosine_matrix


class TestTfidfVectorizer:
    def test_fit_before_transform_required(self):
        with pytest.raises(ReproError):
            TfidfVectorizer().transform(["x"])

    def test_zero_documents_rejected(self):
        with pytest.raises(ReproError):
            TfidfVectorizer().fit([])

    def test_rows_l2_normalized(self):
        matrix = TfidfVectorizer().fit_transform(["a b c", "a b", "c d"])
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_rare_terms_weighted_higher(self):
        vec = TfidfVectorizer().fit(["common rare", "common x", "common y"])
        matrix = vec.transform(["common rare"])
        common_idx = vec.vocabulary_["common"]
        rare_idx = vec.vocabulary_["rare"]
        assert matrix[0, rare_idx] > matrix[0, common_idx]

    def test_unseen_terms_ignored(self):
        vec = TfidfVectorizer().fit(["a b"])
        row = vec.transform(["zzz"])
        assert np.allclose(row, 0.0)

    def test_min_df_filters(self):
        vec = TfidfVectorizer(min_df=2).fit(["a b", "a c"])
        assert "a" in vec.vocabulary_
        assert "b" not in vec.vocabulary_

    def test_min_df_validation(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_df=0)

    def test_char_ngram_analyzer(self):
        analyzer = char_ngram_analyzer(3)
        grams = analyzer("ab")
        assert "#ab" in grams


class TestCosineMatrix:
    def test_shape_and_values(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([[1.0, 0.0]])
        sims = cosine_matrix(a, b)
        assert sims.shape == (2, 1)
        assert sims[0, 0] == pytest.approx(1.0)
        assert sims[1, 0] == pytest.approx(0.0)

    def test_zero_rows_handled(self):
        a = np.zeros((1, 3))
        b = np.ones((1, 3))
        assert cosine_matrix(a, b)[0, 0] == 0.0
