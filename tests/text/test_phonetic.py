"""Tests for repro.text.phonetic."""

from repro.text.phonetic import sounds_like, soundex


class TestSoundex:
    def test_textbook_values(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Tymczak") == "T522"
        assert soundex("Pfister") == "P236"
        assert soundex("Honeyman") == "H555"

    def test_hw_transparency(self):
        # 'Ashcraft' -> A261: h does not split the s/c group.
        assert soundex("Ashcraft") == "A261"

    def test_padding(self):
        assert soundex("Lee") == "L000"

    def test_empty_and_nonalpha(self):
        assert soundex("") == "0000"
        assert soundex("123") == "0000"

    def test_sounds_like_typo(self):
        assert sounds_like("hospital", "hospitel")
        assert not sounds_like("hospital", "zebra")
