"""The chaos harness: crash-site trials and the matrix driver."""

import pytest

from repro.runtime.chaos import (
    CRASH_SITES,
    ChaosCell,
    default_chaos_cells,
    run_crash_matrix,
    run_crash_trial,
)


@pytest.fixture(scope="module")
def cell():
    return ChaosCell("ed_adult_fast", dataset="adult", size=20)


class TestDefaultCells:
    def test_matrix_covers_all_four_tasks_at_both_concurrencies(self):
        cells = default_chaos_cells()
        datasets = {cell.dataset for cell in cells}
        assert datasets == {"adult", "restaurant", "synthea", "beer"}
        assert {cell.concurrency for cell in cells} == {1, 2}
        assert len(cells) == 8
        assert len({cell.name for cell in cells}) == 8

    def test_sites_cover_batch_and_journal_crashes(self):
        assert CRASH_SITES == ("mid_batch", "pre_journal", "mid_journal")


class TestCrashTrials:
    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_every_site_resumes_bit_identical(self, cell, site, tmp_path):
        trial = run_crash_trial(cell, site, tmp_path)
        assert trial.crashed, f"{site}: the injected crash never fired"
        assert trial.identical, trial.render()
        assert trial.ok

    def test_concurrent_cell_also_survives(self, tmp_path):
        concurrent = ChaosCell(
            "ed_adult_fast_c2", dataset="adult", size=20, concurrency=2
        )
        trial = run_crash_trial(concurrent, "mid_batch", tmp_path)
        assert trial.ok, trial.render()

    def test_ladder_cell_survives_with_quarantine(self, tmp_path):
        # vicuna's replies are rich in format violations, so the ladder
        # actually engages; the quarantine must replay too.
        ladder = ChaosCell(
            "ed_hospital_ladder", dataset="hospital", size=16,
            model="vicuna-13b", degradation="ladder",
        )
        trial = run_crash_trial(ladder, "pre_journal", tmp_path)
        assert trial.ok, trial.render()

    def test_unknown_site_is_rejected(self, cell, tmp_path):
        from repro.errors import LLMError

        with pytest.raises(LLMError):
            run_crash_trial(cell, "mid_universe", tmp_path)

    def test_failed_trial_renders_diff_paths(self, cell, tmp_path):
        trial = run_crash_trial(cell, "mid_batch", tmp_path)
        ok_text = trial.render()
        assert "OK" in ok_text


class TestMatrixDriver:
    def test_matrix_writes_no_artifact_when_clean(self, cell, tmp_path):
        artifact = tmp_path / "CHAOS_DIFF.txt"
        trials = run_crash_matrix(
            cells=(cell,), sites=("pre_journal",),
            workdir=tmp_path / "chaos", artifact=artifact,
        )
        assert len(trials) == 1
        assert trials[0].ok
        assert not artifact.exists()
