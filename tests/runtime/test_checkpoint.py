"""Checkpoint sessions and pipeline resume.

The contract under test: a journaled run that dies anywhere and resumes
produces a result — predictions, accounting, execution report, metrics,
spans, manifest — bit-identical to an uninterrupted run; and journaling
itself never changes a run's behavior.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Preprocessor
from repro.datasets import load_dataset
from repro.errors import InjectedCrashError
from repro.eval.harness import evaluate_pipeline
from repro.llm.faults import Fault, FaultInjectingClient
from repro.llm.simulated import SimulatedLLM
from repro.runtime.chaos import result_payload
from repro.runtime.checkpoint import CheckpointSession, JournalChaos, RunCheckpoint
from repro.runtime.journal import ResumeMismatchError, RunJournal
from repro.testing.golden import diff_payloads


@pytest.fixture(scope="module")
def small_adult():
    return load_dataset("adult", size=24)


def _config(**overrides):
    settings = {"model": "gpt-3.5", "seed": 0, "observability": True}
    settings.update(overrides)
    return PipelineConfig(**settings)


def _client(seed=0):
    return SimulatedLLM("gpt-3.5", seed=seed)


class TestSessionLifecycle:
    def test_fresh_journal_gets_sealed_header(self, tmp_path):
        path = tmp_path / "run.journal"
        session = CheckpointSession.open(
            RunCheckpoint(path), {"model": "gpt-3.5"}
        )
        session.close()
        header, records = RunJournal.load(path)
        assert header.context == {"model": "gpt-3.5"}
        assert records == []

    def test_reopen_same_context_resumes(self, tmp_path):
        path = tmp_path / "run.journal"
        CheckpointSession.open(RunCheckpoint(path), {"k": 1}).close()
        session = CheckpointSession.open(RunCheckpoint(path), {"k": 1})
        assert session.records == []
        session.close()

    def test_mismatched_context_refused_with_diff(self, tmp_path):
        path = tmp_path / "run.journal"
        CheckpointSession.open(
            RunCheckpoint(path), {"model": "gpt-3.5", "seed": 0}
        ).close()
        with pytest.raises(ResumeMismatchError) as excinfo:
            CheckpointSession.open(
                RunCheckpoint(path), {"model": "gpt-4", "seed": 0}
            )
        assert any("$.model" in line for line in excinfo.value.diff)
        assert "gpt-4" in str(excinfo.value)

    def test_journal_chaos_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            JournalChaos(site="mid_everything", at_seq=0)


class TestJournaledRunsAreTransparent:
    def test_journaling_does_not_change_the_result(self, small_adult, tmp_path):
        plain = evaluate_pipeline(
            _client(), _config(), small_adult, keep_raw=True
        )
        journaled = evaluate_pipeline(
            _client(), _config(), small_adult, keep_raw=True,
            checkpoint=RunCheckpoint(tmp_path / "run.journal"),
        )
        assert not diff_payloads(
            result_payload(plain), result_payload(journaled)
        )

    def test_journal_holds_one_record_per_batch(self, small_adult, tmp_path):
        path = tmp_path / "run.journal"
        run = evaluate_pipeline(
            _client(), _config(), small_adult,
            checkpoint=RunCheckpoint(path),
        )
        __, records = RunJournal.load(path)
        assert records, "a run over a non-empty dataset journals batches"
        assert [r.seq for r in records] == list(range(len(records)))
        journaled = [p for r in records for p in r.predictions]
        assert len(journaled) == run.n_instances

    def test_completed_journal_resumes_to_identical_result(
        self, small_adult, tmp_path
    ):
        path = tmp_path / "run.journal"
        first = evaluate_pipeline(
            _client(), _config(), small_adult, keep_raw=True,
            checkpoint=RunCheckpoint(path),
        )
        # Every batch is journaled: the "resume" replays the whole run
        # from disk without one completion call.
        replayed = evaluate_pipeline(
            _client(), _config(), small_adult, keep_raw=True,
            checkpoint=RunCheckpoint(path),
        )
        assert not diff_payloads(
            result_payload(first), result_payload(replayed)
        )


class TestCrashResume:
    def _crash_then_resume(self, dataset, tmp_path, chaos=None, crash_call=None):
        path = tmp_path / "run.journal"
        baseline = evaluate_pipeline(
            FaultInjectingClient(_client(), plan={}),
            _config(), dataset, keep_raw=True,
            checkpoint=RunCheckpoint(tmp_path / "baseline.journal"),
        )
        plan = {}
        if crash_call is not None:
            plan = {crash_call: Fault(kind="crash")}
        with pytest.raises(InjectedCrashError):
            evaluate_pipeline(
                FaultInjectingClient(_client(), plan=plan),
                _config(), dataset, keep_raw=True,
                checkpoint=RunCheckpoint(path, chaos=chaos),
            )
        resumed = evaluate_pipeline(
            FaultInjectingClient(_client(), plan={}),
            _config(), dataset, keep_raw=True,
            checkpoint=RunCheckpoint(path),
        )
        return baseline, resumed

    def test_mid_batch_crash_resumes_bit_identical(self, small_adult, tmp_path):
        baseline, resumed = self._crash_then_resume(
            small_adult, tmp_path, crash_call=3
        )
        diffs = diff_payloads(result_payload(baseline), result_payload(resumed))
        assert not diffs, "\n".join(d.render() for d in diffs)

    def test_pre_journal_crash_resumes_bit_identical(self, small_adult, tmp_path):
        baseline, resumed = self._crash_then_resume(
            small_adult, tmp_path, chaos=JournalChaos("pre_journal", at_seq=1)
        )
        diffs = diff_payloads(result_payload(baseline), result_payload(resumed))
        assert not diffs, "\n".join(d.render() for d in diffs)

    def test_mid_journal_crash_leaves_torn_tail_and_resumes(
        self, small_adult, tmp_path
    ):
        path = tmp_path / "run.journal"
        with pytest.raises(InjectedCrashError):
            evaluate_pipeline(
                _client(), _config(), small_adult, keep_raw=True,
                checkpoint=RunCheckpoint(
                    path, chaos=JournalChaos("mid_journal", at_seq=1)
                ),
            )
        # The torn half-line really is on disk.
        assert not path.read_bytes().endswith(b"\n")
        __, records, error = RunJournal.recover(path)
        assert error is not None
        assert [r.seq for r in records] == [0]
        baseline = evaluate_pipeline(
            _client(), _config(), small_adult, keep_raw=True,
        )
        resumed = evaluate_pipeline(
            _client(), _config(), small_adult, keep_raw=True,
            checkpoint=RunCheckpoint(path),
        )
        diffs = diff_payloads(result_payload(baseline), result_payload(resumed))
        assert not diffs, "\n".join(d.render() for d in diffs)

    def test_resume_skips_journaled_completion_calls(self, small_adult, tmp_path):
        path = tmp_path / "run.journal"
        crashed_client = FaultInjectingClient(
            _client(), plan={5: Fault(kind="crash")}
        )
        with pytest.raises(InjectedCrashError):
            evaluate_pipeline(
                crashed_client, _config(), small_adult,
                checkpoint=RunCheckpoint(path),
            )

        # n_calls is itself checkpointed state (it is restored on resume),
        # so count the calls this process actually serves separately.
        resuming_client = FaultInjectingClient(_client(), plan={})
        live_calls = 0
        inner_complete = resuming_client.complete

        def counting_complete(request):
            nonlocal live_calls
            live_calls += 1
            return inner_complete(request)

        resuming_client.complete = counting_complete
        run = evaluate_pipeline(
            resuming_client, _config(), small_adult,
            checkpoint=RunCheckpoint(path),
        )
        # The resumed client made only the remaining calls, yet the run
        # reports the full call count — and n_calls lands exactly on it.
        assert 0 < live_calls < run.n_requests
        assert resuming_client.n_calls == run.n_requests

    def test_resume_refuses_a_different_config(self, small_adult, tmp_path):
        path = tmp_path / "run.journal"
        evaluate_pipeline(
            _client(), _config(), small_adult,
            checkpoint=RunCheckpoint(path),
        )
        with pytest.raises(ResumeMismatchError) as excinfo:
            evaluate_pipeline(
                _client(), _config(seed=7), small_adult,
                checkpoint=RunCheckpoint(path),
            )
        assert any("seed" in line for line in excinfo.value.diff)

    def test_resume_refuses_different_data(self, tmp_path):
        config = _config()
        path = tmp_path / "run.journal"
        evaluate_pipeline(
            _client(), config, load_dataset("adult", size=24),
            checkpoint=RunCheckpoint(path),
        )
        with pytest.raises(ResumeMismatchError):
            evaluate_pipeline(
                _client(), config, load_dataset("adult", size=30),
                checkpoint=RunCheckpoint(path),
            )

    def test_resume_without_observability_also_round_trips(
        self, small_adult, tmp_path
    ):
        config = _config(observability=False)
        path = tmp_path / "run.journal"
        client = FaultInjectingClient(_client(), plan={4: Fault(kind="crash")})
        preprocessor = Preprocessor(client, config)
        with pytest.raises(InjectedCrashError):
            preprocessor.run(small_adult, checkpoint=RunCheckpoint(path))
        baseline = Preprocessor(
            FaultInjectingClient(_client(), plan={}), config
        ).run(small_adult)
        resumed = Preprocessor(
            FaultInjectingClient(_client(), plan={}), config
        ).run(small_adult, checkpoint=RunCheckpoint(path))
        assert resumed.predictions == baseline.predictions
        assert resumed.usage == baseline.usage
        assert resumed.n_requests == baseline.n_requests
        assert resumed.estimated_seconds == baseline.estimated_seconds
