"""Chaos under degradation: crash-resume drills over the resilient stack.

The full brownout/blackout x crash-site matrix runs in CI via
``python -m repro.eval chaos --resilience``; this suite keeps a fast
representative subset in the tier-1 gate — one brownout cell and one
concurrent blackout cell, each crashed and resumed bit-identically with
the degradation script, router health, and AIMD state continuing
mid-sentence.
"""

import pytest

from repro.resilience.chaos import (
    SCENARIOS,
    ResilienceChaosCell,
    default_resilience_chaos_cells,
    run_resilience_trial,
)


class TestDefaultCells:
    def test_matrix_covers_both_scenarios_at_both_concurrencies(self):
        cells = default_resilience_chaos_cells()
        assert {cell.scenario for cell in cells} == set(SCENARIOS)
        assert {cell.concurrency for cell in cells} == {1, 2}
        assert len({cell.name for cell in cells}) == len(cells) == 4

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ValueError):
            ResilienceChaosCell(
                "bad", dataset="adult", size=8, scenario="heat_death"
            )


class TestResilientCrashTrials:
    def test_brownout_survives_a_mid_batch_crash(self, tmp_path):
        cell = ResilienceChaosCell(
            "ed_adult_brownout_fast", dataset="adult", size=16,
            scenario="brownout",
        )
        trial = run_resilience_trial(cell, "mid_batch", tmp_path)
        assert trial.crashed, "the injected crash never fired"
        assert trial.identical, trial.render()
        assert trial.ok

    def test_concurrent_blackout_survives_a_journal_crash(self, tmp_path):
        cell = ResilienceChaosCell(
            "ed_adult_blackout_fast_c2", dataset="adult", size=16,
            scenario="blackout", concurrency=2,
        )
        trial = run_resilience_trial(cell, "mid_journal", tmp_path)
        assert trial.ok, trial.render()
