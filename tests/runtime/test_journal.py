"""The write-ahead journal: durability format, corruption taxonomy.

Every way a crash (or a disk) can damage a journal — a torn tail line, a
flipped byte, a duplicated record, a wrong-run header — must surface as a
*typed* :class:`~repro.runtime.journal.JournalError` that still carries
every valid record before the damage, because resume rebuilds from that
prefix.
"""

import json

import pytest

from repro.errors import ReproError
from repro.runtime.journal import (
    JOURNAL_VERSION,
    BatchRecord,
    JournalError,
    JournalHeader,
    RunJournal,
    context_diff,
    run_fingerprint,
)


def _context(**overrides):
    base = {
        "pipeline_config": {"model": "gpt-3.5", "seed": 0},
        "dataset": {"name": "adult", "digest": "abc123"},
    }
    base.update(overrides)
    return base


def _record(seq):
    return BatchRecord(
        seq=seq,
        key=f"key-{seq}",
        predictions=[True, False],
        quarantine=[],
        outcome={"n_fallbacks": 0},
        cost={"prompt_tokens": 100 + seq},
        clock={"makespan_s": float(seq)},
        state={"stats": {"n_requests": seq + 1}},
    )


def _write_journal(path, n_records=3):
    context = _context()
    journal = RunJournal(path)
    journal.create(JournalHeader(
        fingerprint=run_fingerprint(context), context=context,
    ))
    for seq in range(n_records):
        journal.append(_record(seq))
    journal.close()
    return context


class TestRoundTrip:
    def test_load_returns_what_was_appended(self, tmp_path):
        path = tmp_path / "run.journal"
        context = _write_journal(path)
        header, records = RunJournal.load(path)
        assert header.fingerprint == run_fingerprint(context)
        assert header.context == context
        assert header.journal_version == JOURNAL_VERSION
        assert [r.seq for r in records] == [0, 1, 2]
        assert records[1].predictions == [True, False]
        assert records[2].state == {"stats": {"n_requests": 3}}

    def test_every_line_ends_with_newline_and_checksum(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        blob = path.read_bytes()
        assert blob.endswith(b"\n")
        for line in blob.splitlines():
            payload = json.loads(line)
            assert "check" in payload

    def test_fingerprint_changes_with_any_context_field(self):
        base = run_fingerprint(_context())
        assert run_fingerprint(_context(extra=1)) != base
        changed = _context()
        changed["pipeline_config"]["seed"] = 1
        assert run_fingerprint(changed) != base

    def test_context_diff_names_divergent_paths(self):
        diff = context_diff(
            {"a": 1, "b": {"c": [1, 2]}},
            {"a": 2, "b": {"c": [1, 3]}, "d": True},
        )
        assert "$.a: 1 != 2" in diff
        assert "$.b.c[1]: 2 != 3" in diff
        assert any(line.startswith("$.d:") for line in diff)


class TestCorruption:
    """Satellite: each damage mode yields a typed, recoverable error."""

    def test_truncated_last_line(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])  # tear the tail mid-line
        with pytest.raises(JournalError) as excinfo:
            RunJournal.load(path)
        error = excinfo.value
        assert "truncated" in str(error) or "not valid JSON" in str(error)
        assert [r.seq for r in error.records] == [0, 1]
        assert "2 valid record(s) recoverable" in str(error)
        # truncating to recovered_bytes yields a clean journal again
        path.write_bytes(blob[: error.recovered_bytes])
        __, records = RunJournal.load(path)
        assert [r.seq for r in records] == [0, 1]

    def test_flipped_byte_fails_checksum(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        lines = path.read_bytes().splitlines(keepends=True)
        # flip one byte inside the middle record's payload
        target = bytearray(lines[2])
        pivot = target.find(b"predictions")
        target[pivot] ^= 0x01
        lines[2] = bytes(target)
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError) as excinfo:
            RunJournal.load(path)
        error = excinfo.value
        assert "checksum" in str(error) or "not valid JSON" in str(error)
        assert [r.seq for r in error.records] == [0]
        assert error.line_no == 3

    def test_duplicated_record(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines) + lines[-1])  # re-append last line
        with pytest.raises(JournalError) as excinfo:
            RunJournal.load(path)
        assert "duplicated" in str(excinfo.value)
        assert [r.seq for r in excinfo.value.records] == [0, 1, 2]

    def test_out_of_order_record(self, tmp_path):
        path = tmp_path / "run.journal"
        context = _context()
        journal = RunJournal(path)
        journal.create(JournalHeader(
            fingerprint=run_fingerprint(context), context=context,
        ))
        journal.append(_record(0))
        journal.append(_record(2))  # seq 1 skipped
        journal.close()
        with pytest.raises(JournalError) as excinfo:
            RunJournal.load(path)
        assert "out-of-order" in str(excinfo.value)
        assert [r.seq for r in excinfo.value.records] == [0]

    def test_unsupported_version_header(self, tmp_path):
        path = tmp_path / "run.journal"
        context = _context()
        journal = RunJournal(path)
        journal.create(JournalHeader(
            fingerprint=run_fingerprint(context),
            context=context,
            journal_version=JOURNAL_VERSION + 1,
        ))
        journal.close()
        with pytest.raises(JournalError) as excinfo:
            RunJournal.load(path)
        assert "version" in str(excinfo.value)
        assert excinfo.value.records == []

    def test_missing_and_empty_files_are_typed(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal.load(tmp_path / "absent.journal")
        empty = tmp_path / "empty.journal"
        empty.write_bytes(b"")
        with pytest.raises(JournalError):
            RunJournal.load(empty)

    def test_journal_error_is_a_repro_error(self):
        assert issubclass(JournalError, ReproError)


class TestRecover:
    def test_recover_clean_journal_has_no_error(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        header, records, error = RunJournal.recover(path)
        assert error is None
        assert len(records) == 3

    def test_recover_damaged_journal_returns_prefix(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        path.write_bytes(path.read_bytes()[:-7])
        header, records, error = RunJournal.recover(path)
        assert error is not None
        assert [r.seq for r in records] == [0, 1]
        assert header.journal_version == JOURNAL_VERSION

    def test_unreadable_header_is_not_recoverable(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        blob = path.read_bytes()
        path.write_bytes(b"garbage" + blob[7:])
        with pytest.raises(JournalError):
            RunJournal.recover(path)

    def test_reopen_truncates_torn_tail_and_appends(self, tmp_path):
        path = tmp_path / "run.journal"
        _write_journal(path)
        path.write_bytes(path.read_bytes()[:-5])
        header, records, error = RunJournal.recover(path)
        journal = RunJournal(path)
        journal.reopen(error.recovered_bytes)
        journal.append(_record(2))
        journal.close()
        __, clean = RunJournal.load(path)
        assert [r.seq for r in clean] == [0, 1, 2]
