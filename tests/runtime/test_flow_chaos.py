"""Flow-level chaos: crash at a stage boundary, resume bit-identically.

The flow ledger's claim is stronger than "the run finishes": a process
killed at *any* stage boundary — after a stage ran but before its record
hit the disk, or right after the fsync'd append — must resume into a
result byte-identical (canonical JSON, timing included) to a run that
was never interrupted.  Mid-stage crashes are also covered: the stage's
own per-batch journal replays the completed batches and the ledger picks
up from there.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.errors import InjectedCrashError
from repro.flow import FLOW_CRASH_SITES, FlowChaos, run_reference_flow
from repro.llm.faults import Fault, FaultInjectingClient
from repro.llm.simulated import SimulatedLLM
from repro.obs.manifest import canonical_json

STAGES = ("detect", "impute", "align", "match")


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted reference run — the byte-level ground truth."""
    return canonical_json(run_reference_flow().payload())


@pytest.mark.parametrize("stage", STAGES)
@pytest.mark.parametrize("site", FLOW_CRASH_SITES)
def test_stage_boundary_crash_resumes_bit_identically(
    stage, site, tmp_path, baseline
):
    with pytest.raises(InjectedCrashError):
        run_reference_flow(
            workdir=tmp_path, chaos=FlowChaos(stage=stage, site=site)
        )
    resumed = run_reference_flow(workdir=tmp_path)
    assert canonical_json(resumed.payload()) == baseline
    # post_record persisted the crashed stage; pre_record lost its record
    expected_prefix = STAGES[: STAGES.index(stage) + (site == "post_record")]
    assert resumed.resumed_stages == expected_prefix


def test_mid_stage_crash_resumes_bit_identically(tmp_path):
    """Kill the client partway through a stage: the stage's own journal
    replays its completed batches, then the flow finishes normally."""
    crash_at = 4  # the reference flow's impute stage (detect uses 2 calls)

    def crashing(index: int):
        return Fault(kind="crash") if index == crash_at else None

    # the ledger seals the client class into its header, so the crashing
    # run, the resume, and the baseline all use the same wrapper — the
    # resume and baseline just with an empty fault plan
    def quiet_client():
        return FaultInjectingClient(SimulatedLLM("gpt-3.5", seed=0), {})

    baseline = canonical_json(
        run_reference_flow(client=quiet_client()).payload()
    )
    client = FaultInjectingClient(SimulatedLLM("gpt-3.5", seed=0), crashing)
    with pytest.raises(InjectedCrashError):
        run_reference_flow(client=client, workdir=tmp_path)
    resumed = run_reference_flow(client=quiet_client(), workdir=tmp_path)
    assert canonical_json(resumed.payload()) == baseline


def test_double_crash_still_converges(tmp_path, baseline):
    """Crash twice at different boundaries; the third attempt completes."""
    for stage in ("detect", "align"):
        with pytest.raises(InjectedCrashError):
            run_reference_flow(
                workdir=tmp_path, chaos=FlowChaos(stage=stage)
            )
    final = run_reference_flow(workdir=tmp_path)
    assert canonical_json(final.payload()) == baseline
    assert final.resumed_stages == ("detect", "impute", "align")
