"""Worker-kill drills: crash one shard's worker, resume, diff the merge.

Extends the single-process chaos suite (``test_chaos.py``) to the sharded
runner: the same three crash sites, but injected inside one worker of a
multi-shard run.  A passing trial proves three things at once — the
injected crash fired, sibling shards' journals survived intact, and the
resumed run's merged payload is bit-identical to an uninterrupted one.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.datasets import load_dataset
from repro.llm.backend import SimulatedBackend
from repro.shard import SHARD_CRASH_SITES, run_shard_crash_trial


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("adult", size=32, seed=0)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(observability=True)


class TestShardCrashTrials:
    @pytest.mark.parametrize("site", SHARD_CRASH_SITES)
    def test_every_site_resumes_bit_identical(self, config, dataset, site,
                                              tmp_path):
        trial = run_shard_crash_trial(
            SimulatedBackend(), config, dataset, site, tmp_path,
            n_shards=3, workers=2,
        )
        assert trial.crashed, f"{site}: the injected crash never fired"
        assert trial.identical, trial.render()
        assert trial.ok

    def test_degradation_ladder_cell_survives_too(self, dataset, tmp_path):
        config = PipelineConfig(observability=True, degradation="ladder")
        trial = run_shard_crash_trial(
            SimulatedBackend(), config, dataset, "mid_batch", tmp_path,
            n_shards=3, workers=2,
        )
        assert trial.ok, trial.render()
