"""Property tests for the resilience stack's algebraic guarantees.

Three invariants the design sells, stated as properties:

- the AIMD width stays inside ``[1, concurrency]`` for *any* event
  sequence (the executor can never schedule zero lanes or over-schedule);
- the hedge delay is a pure function of the latency samples fed in — two
  routers that observed the same history quote the same delay, and the
  delay never drops under the configured floor;
- failover routing order depends only on the pool *contents*
  ``(priority, name)``, never on the order the constructor saw them.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.base import (
    ChatMessage,
    CompletionRequest,
    CompletionResponse,
    Usage,
)
from repro.resilience import AimdController, FailoverClient, ResilienceConfig

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


def _request(i=1):
    return CompletionRequest(
        messages=(ChatMessage(role="user", content=f"Question {i}: ping"),),
        model="gpt-3.5",
    )


class _Scripted:
    """Replays a fixed latency sequence, one entry per call."""

    def __init__(self, latencies):
        self._latencies = list(latencies)
        self.n_calls = 0

    def complete(self, request):
        latency = self._latencies[self.n_calls % max(1, len(self._latencies))]
        self.n_calls += 1
        return CompletionResponse(
            text="Answer 1: yes", model=request.model,
            usage=Usage(prompt_tokens=10, completion_tokens=5),
            latency_s=latency,
        )


class TestAimdWidthBounds:
    @given(
        events=st.lists(st.booleans(), min_size=0, max_size=200),
        concurrency=st.integers(min_value=1, max_value=8),
        increase=st.floats(min_value=0.01, max_value=4.0,
                           allow_nan=False, allow_infinity=False),
        decrease=st.floats(min_value=0.01, max_value=0.99,
                           allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_width_always_in_1_to_concurrency(
        self, events, concurrency, increase, decrease
    ):
        config = ResilienceConfig(
            aimd_increase=increase, aimd_decrease=decrease
        )
        controller = AimdController(config, concurrency)
        for success in events:
            if success:
                controller.on_success()
            else:
                controller.on_throttle()
            assert 1 <= controller.width <= concurrency
            assert 1.0 <= controller.fractional_width or (
                controller.fractional_width <= float(concurrency)
            )

    @given(
        events=st.lists(st.booleans(), min_size=1, max_size=100),
        concurrency=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_checkpoint_resume_replays_identically(self, events, concurrency):
        config = ResilienceConfig()
        left = AimdController(config, concurrency)
        split = len(events) // 2
        for success in events[:split]:
            left.on_success() if success else left.on_throttle()
        right = AimdController(config, concurrency)
        right.restore_checkpoint_state(left.checkpoint_state())
        for success in events[split:]:
            left.on_success() if success else left.on_throttle()
            right.on_success() if success else right.on_throttle()
        assert left.fractional_width == right.fractional_width
        assert left.width == right.width


class TestHedgeDelayPurity:
    @given(
        latencies=st.lists(
            st.floats(min_value=0.05, max_value=60.0,
                      allow_nan=False, allow_infinity=False),
            min_size=0, max_size=40,
        ),
        warmup=st.integers(min_value=1, max_value=12),
        quantile=st.floats(min_value=0.1, max_value=1.0,
                           allow_nan=False, allow_infinity=False),
        floor=st.floats(min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_same_history_quotes_the_same_delay(
        self, latencies, warmup, quantile, floor
    ):
        config = ResilienceConfig(
            hedge=False,  # observe samples without firing duplicates
            hedge_warmup=warmup, hedge_quantile=quantile,
            hedge_min_delay_s=floor, circuit_error_threshold=1.0,
        )

        def build():
            return FailoverClient(
                [("primary", 0, _Scripted(latencies))], config
            )

        left, right = build(), build()
        for i in range(len(latencies)):
            left.complete(_request(i))
            right.complete(_request(i))
        delay_left = left.hedge_delay("primary")
        assert delay_left == right.hedge_delay("primary")
        assert delay_left >= config.hedge_min_delay_s
        if len(latencies) < warmup:
            assert delay_left == max(
                config.hedge_min_delay_s, config.hedge_default_delay_s
            )
        else:
            # past warmup the delay is one of the observed samples
            # (or the floor)
            window = latencies[-64:]
            assert delay_left == config.hedge_min_delay_s or any(
                delay_left == pytest.approx(sample) for sample in window
            )


class TestFailoverOrderInvariance:
    @given(
        pool=st.lists(
            st.tuples(_names, st.integers(min_value=0, max_value=5)),
            min_size=1, max_size=8,
            unique_by=lambda entry: entry[0],
        ),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_order_is_insertion_order_free(self, pool, data):
        entries = [
            (name, priority, _Scripted([1.0])) for name, priority in pool
        ]
        shuffled = data.draw(st.permutations(entries))
        canonical = FailoverClient(entries, ResilienceConfig())
        permuted = FailoverClient(list(shuffled), ResilienceConfig())
        assert canonical.order == permuted.order
        assert list(canonical.order) == sorted(
            (name for name, __ in pool),
            key=lambda name: (dict(pool)[name], name),
        )
