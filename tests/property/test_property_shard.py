"""Property tests for the shard plan and the merge fold.

The scale-out guarantees are algebraic, so they are stated algebraically:
the plan is a pure, insertion-order-free function that partitions the
dataset exactly; the merge fold is invariant under any permutation of its
inputs (worker scheduling can only permute, never change, the fold).
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PipelineConfig
from repro.core.contextualize import serialize_instance
from repro.data.instances import EDInstance, PreprocessingDataset, Task
from repro.llm.accounting import request_prompt_tokens
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.promptparse import PromptParseMemo
from repro.shard import merge_shards, plan_shards
from repro.shard.plan import ShardPlan, ShardSpec

_CONFIG = PipelineConfig()

_words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def ed_instances(draw):
    value = draw(_words)
    age = draw(st.integers(min_value=0, max_value=120))
    return EDInstance(
        record=(("name", value), ("age", str(age))),
        target_attribute="name",
        label=draw(st.booleans()),
    )


def _dataset(instances):
    return PreprocessingDataset(
        name="prop", task=Task.ERROR_DETECTION,
        instances=list(instances), fewshot_pool=[],
    )


class TestPlanProperties:
    @given(
        st.lists(ed_instances(), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_instance_lands_in_exactly_one_shard(self, instances, k):
        plan = plan_shards(_dataset(instances), _CONFIG, k)
        seen = [i for spec in plan.shards for i in spec.indices]
        assert sorted(seen) == list(range(len(instances)))

    @given(
        st.lists(ed_instances(), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_replanning_is_pure(self, instances, k):
        assert plan_shards(_dataset(instances), _CONFIG, k) == plan_shards(
            _dataset(instances), _CONFIG, k
        )

    @given(
        st.lists(ed_instances(), min_size=2, max_size=20),
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignment_is_insertion_order_free(self, instances, k, rng):
        def by_content(plan, items):
            owner = {}
            for spec in plan.shards:
                for index in spec.indices:
                    key = serialize_instance(items[index])
                    # duplicate content always hashes to the same shard, so
                    # the map stays well-defined under permutation
                    owner[key] = spec.shard_id
            return owner

        original = plan_shards(_dataset(instances), _CONFIG, k)
        shuffled = list(instances)
        rng.shuffle(shuffled)
        permuted = plan_shards(_dataset(shuffled), _CONFIG, k)
        assert by_content(original, instances) == by_content(
            permuted, shuffled
        )


class TestMergeProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.randoms(use_true_random=False),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_fold_is_permutation_invariant(self, n_shards, rng, data):
        sizes = [
            data.draw(st.integers(min_value=0, max_value=4))
            for __ in range(n_shards)
        ]
        indices, cursor = [], 0
        for size in sizes:
            indices.append(tuple(range(cursor, cursor + size)))
            cursor += size
        plan = ShardPlan(
            digest="d" * 32, fingerprint="f" * 16,
            n_instances=cursor, n_shards=n_shards,
            shards=tuple(
                ShardSpec(shard_id=sid, indices=owned)
                for sid, owned in enumerate(indices)
            ),
        )
        payloads = [
            {
                "shard_id": sid,
                "indices": list(owned),
                "predictions": [f"s{sid}i{i}" for i in owned],
                "quarantine": [],
                "usage": {
                    "prompt_tokens": data.draw(
                        st.integers(min_value=0, max_value=999)
                    ),
                    "completion_tokens": 1,
                },
                "n_requests": 1,
                "n_format_retries": 0,
                "n_fallbacks": 0,
                "estimated_seconds": float(
                    data.draw(st.integers(min_value=0, max_value=50))
                ),
                "raw_replies": [],
                "exchanges": [],
                "metrics": None,
                "spans": None,
            }
            for sid, owned in enumerate(indices)
            if owned
        ]
        reference = merge_shards(plan, payloads).payload()
        shuffled = list(payloads)
        rng.shuffle(shuffled)
        assert merge_shards(plan, shuffled).payload() == reference


class TestMemoProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["system", "user", "assistant"]),
                st.text(min_size=0, max_size=60),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_memoized_prompt_tokens_match_the_reference_meter(self, pairs):
        request = CompletionRequest(
            messages=tuple(
                ChatMessage(role=role, content=text) for role, text in pairs
            ),
            model="gpt-3.5",
        )
        memo = PromptParseMemo()
        assert memo.prompt_tokens(request) == request_prompt_tokens(request)
        # and again, through the warm cache
        assert memo.prompt_tokens(request) == request_prompt_tokens(request)
