"""Property-based tests (hypothesis) for the text substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.normalize import normalize_text, strip_accents
from repro.text.phonetic import soundex
from repro.text.similarity import (
    jaccard,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    ngrams,
    token_set_ratio,
)
from repro.text.tokenize import count_tokens

words = st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=12)
texts = st.text(min_size=0, max_size=60)


class TestLevenshteinProperties:
    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(words, words)
    def test_length_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(words, words, words)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    def test_similarity_in_unit_interval(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestJaroWinklerProperties:
    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert jaro_winkler(a, b) == jaro_winkler(b, a)

    @given(words)
    def test_identity(self, a):
        assert jaro_winkler(a, a) == 1.0 or a == ""


class TestSetSimilarityProperties:
    @given(st.lists(words), st.lists(words))
    def test_jaccard_bounds_and_symmetry(self, a, b):
        s = jaccard(a, b)
        assert 0.0 <= s <= 1.0
        assert s == jaccard(b, a)

    @given(texts, texts)
    @settings(max_examples=60)
    def test_token_set_ratio_bounds(self, a, b):
        assert 0.0 <= token_set_ratio(a, b) <= 1.0


class TestNormalizeProperties:
    @given(texts)
    def test_idempotent(self, t):
        once = normalize_text(t)
        assert normalize_text(once) == once

    @given(texts)
    def test_lowercase_and_single_spaced(self, t):
        out = normalize_text(t)
        assert out == out.lower()
        assert "  " not in out
        assert out == out.strip()

    @given(texts)
    def test_strip_accents_ascii_fixed_point(self, t):
        stripped = strip_accents(t)
        assert strip_accents(stripped) == stripped


class TestTokenizeProperties:
    @given(texts)
    def test_nonnegative(self, t):
        assert count_tokens(t) >= 0

    @given(texts, texts)
    @settings(max_examples=60)
    def test_superadditive_under_concat_with_space(self, a, b):
        # Concatenation with a separator never produces fewer tokens than
        # the larger part alone.
        combined = count_tokens(f"{a} {b}")
        assert combined >= max(count_tokens(a), count_tokens(b))


class TestNgramProperties:
    @given(words, st.integers(min_value=1, max_value=5))
    def test_count_formula(self, t, n):
        grams = ngrams(t, n)
        if not t:
            assert grams == []
        elif n == 1:
            assert len(grams) == len(t)
        else:
            assert len(grams) == len(t) + n - 1

    @given(words, st.integers(min_value=2, max_value=4))
    def test_all_grams_right_length(self, t, n):
        for gram in ngrams(t, n):
            assert len(gram) == n


class TestSoundexProperties:
    @given(words)
    def test_format(self, w):
        code = soundex(w)
        assert len(code) == 4
        if w:
            assert code[0] == w[0].upper() or code == "0000"
            assert all(c.isdigit() for c in code[1:]) or code == "0000"

    @given(words)
    def test_case_insensitive(self, w):
        assert soundex(w) == soundex(w.upper())
