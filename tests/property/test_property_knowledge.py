"""Property-based tests for the coverage-gated knowledge base."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.knowledge import KnowledgeBase, _knows

model_names = st.text(alphabet=string.ascii_lowercase + "-.", min_size=1,
                      max_size=12)
fact_keys = st.text(alphabet=string.ascii_lowercase + ":0123456789",
                    min_size=1, max_size=20)
coverages = st.floats(min_value=0.0, max_value=1.0)


class TestKnowsProperties:
    @given(model_names, fact_keys, coverages, coverages)
    @settings(max_examples=150)
    def test_monotone_in_coverage(self, model, key, c1, c2):
        """A model never *loses* a fact when its coverage grows."""
        low, high = sorted((c1, c2))
        if _knows(model, key, low):
            assert _knows(model, key, high)

    @given(model_names, fact_keys, coverages)
    @settings(max_examples=100)
    def test_deterministic(self, model, key, coverage):
        assert _knows(model, key, coverage) == _knows(model, key, coverage)

    @given(model_names, fact_keys)
    def test_extremes(self, model, key):
        assert not _knows(model, key, 0.0)
        assert _knows(model, key, 1.0)


class TestKnowledgeBaseProperties:
    @given(coverages)
    @settings(max_examples=30)
    def test_domain_monotone_in_coverage(self, coverage):
        """Higher-coverage models know a superset of each domain."""
        weak = KnowledgeBase("same-model", coverage=coverage * 0.5,
                             concept_coverage=0.5)
        strong = KnowledgeBase("same-model", coverage=coverage,
                               concept_coverage=0.5)
        for attribute in ("occupation", "country", "state"):
            weak_domain = weak.domain_of(attribute) or frozenset()
            strong_domain = strong.domain_of(attribute) or frozenset()
            assert weak_domain <= strong_domain

    @given(st.sampled_from(["212", "770", "617", "808", "303", "404"]))
    def test_area_codes_answer_from_world(self, code):
        """Full coverage returns exactly the generator's ground truth."""
        from repro.datasets.vocabularies import AREA_CODE_TO_CITY

        oracle = KnowledgeBase("oracle", 1.0, 1.0)
        assert oracle.city_for_area_code(code) == AREA_CODE_TO_CITY[code]
