"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.kmeans import KMeans
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(5, 30), st.integers(1, 4)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestScalerProperties:
    @given(matrices)
    @settings(max_examples=40)
    def test_transform_finite_and_centered(self, X):
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-6)


class TestLogisticProperties:
    @given(matrices)
    @settings(max_examples=25)
    def test_probabilities_valid(self, X):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=X.shape[0]).astype(np.float64)
        if len(set(y.tolist())) < 2:
            y[0] = 1.0 - y[0]
        model = LogisticRegression(n_iter=50).fit(X, y)
        p = model.predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))
        assert np.all(np.isfinite(p))

    @given(matrices)
    @settings(max_examples=25)
    def test_nonnegative_constraint_respected(self, X):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=X.shape[0]).astype(np.float64)
        if len(set(y.tolist())) < 2:
            y[0] = 1.0 - y[0]
        model = LogisticRegression(n_iter=50, nonnegative=True).fit(X, y)
        assert np.all(model.coef_ >= 0)


class TestKMeansProperties:
    @given(matrices, st.integers(min_value=1, max_value=5))
    @settings(max_examples=25)
    def test_partition_is_total(self, X, k):
        model = KMeans(k=k, n_iter=10, seed=0).fit(X)
        assert len(model.labels_) == X.shape[0]
        assert sum(len(c) for c in model.clusters()) == X.shape[0]

    @given(matrices)
    @settings(max_examples=25)
    def test_inertia_nonnegative(self, X):
        model = KMeans(k=2, n_iter=10, seed=0).fit(X)
        assert model.inertia_ >= 0.0
