"""Property-based tests (hypothesis) for the data-prep kernel layer.

The performance contract of the vectorized kernels is that they change
*nothing*: ``embed_all`` must be bit-identical to the scalar reference and
the k-means convergence exit must land on exactly the labels the full
iteration budget would.  Hypothesis hunts the corners (blank texts,
unicode, ``ngram=0``, duplicate points) that a hand-written example suite
misses.
"""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.kmeans import KMeans
from repro.text.embeddings import HashingEmbedder

#: record-ish texts plus adversarial unicode; blank/empty included
texts = st.lists(
    st.one_of(
        st.text(min_size=0, max_size=40),
        st.text(alphabet=string.ascii_lowercase + "0123456789 :,[]\"#", max_size=60),
        st.just(""),
        st.just("   "),
    ),
    min_size=0,
    max_size=12,
)

embedder_params = st.tuples(
    st.integers(min_value=1, max_value=64),   # dim
    st.integers(min_value=0, max_value=5),    # ngram (0 disables)
)


class TestVectorizedEmbeddingEquality:
    @given(texts, embedder_params)
    @settings(max_examples=120, deadline=None)
    def test_embed_all_matches_scalar_bitwise(self, corpus, params):
        dim, ngram = params
        embedder = HashingEmbedder(dim=dim, ngram=ngram)
        scalar = embedder.embed_all_scalar(corpus)
        vectorized = embedder.embed_all(corpus)
        assert scalar.shape == vectorized.shape == (len(corpus), dim)
        assert (scalar == vectorized).all()

    @given(st.text(min_size=0, max_size=80))
    @settings(max_examples=120, deadline=None)
    def test_single_text_matches_embed(self, text):
        embedder = HashingEmbedder(dim=32)
        assert (embedder.embed(text) == embedder.embed_all([text])[0]).all()

    @given(texts)
    @settings(max_examples=60, deadline=None)
    def test_rows_unit_or_zero(self, corpus):
        matrix = HashingEmbedder(dim=48).embed_all(corpus)
        norms = np.linalg.norm(matrix, axis=1)
        for norm in norms:
            assert norm == 0.0 or abs(norm - 1.0) < 1e-9


#: small random point clouds, duplicates allowed
points = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.lists(
                st.floats(
                    min_value=-10, max_value=10,
                    allow_nan=False, allow_infinity=False,
                ),
                min_size=2, max_size=2,
            ),
            min_size=n, max_size=n,
        ),
    )
)


class TestKMeansEarlyExitEquality:
    @given(points, st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_early_exit_matches_full_iteration_budget(self, cloud, k, seed):
        __, rows = cloud
        X = np.array(rows, dtype=np.float64)
        early = KMeans(k=k, seed=seed).fit(X)
        full = KMeans(k=k, seed=seed, early_stop=False).fit(X)
        assert np.array_equal(early.labels_, full.labels_)
        assert early.inertia_ == full.inertia_
        assert np.array_equal(early.centroids_, full.centroids_)
        assert early.n_iter_ <= full.n_iter_

    @given(points, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_across_fits(self, cloud, k):
        __, rows = cloud
        X = np.array(rows, dtype=np.float64)
        a = KMeans(k=k, seed=3).fit(X)
        b = KMeans(k=k, seed=3).fit(X)
        assert np.array_equal(a.labels_, b.labels_)
        assert a.inertia_ == b.inertia_
