"""Property tests for the response-cache key (repro.llm.cache.request_key).

The cache is exact-match: two requests share a key iff they are the same
call.  Collisions would silently serve one prompt's answer to another, so
the key must separate every distinguishing field — model, temperature,
max_tokens, and the full transcript (roles *and* contents, order
included) — while identical requests must always land on the same key.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.base import ChatMessage, CompletionRequest, CompletionResponse, Usage
from repro.llm.cache import CachingClient, request_key

#: temperatures on a millikelvin grid — request_key rounds to 6 decimals,
#: so values this far apart are guaranteed distinct after rounding
_temperatures = st.integers(min_value=0, max_value=2000).map(lambda i: i / 1000)
_max_tokens = st.one_of(st.none(), st.integers(min_value=1, max_value=4096))
_roles = st.sampled_from(["system", "user", "assistant"])
_contents = st.text(min_size=0, max_size=40)
_messages = st.lists(
    st.builds(ChatMessage, role=_roles, content=_contents),
    min_size=1,
    max_size=4,
).map(tuple)
_models = st.sampled_from(["gpt-3.5", "gpt-4", "gpt-3", "vicuna-13b"])

_requests = st.builds(
    CompletionRequest,
    messages=_messages,
    model=_models,
    temperature=_temperatures,
    max_tokens=_max_tokens,
)


class _Echo:
    """Inner client that answers every request and counts calls."""

    def __init__(self) -> None:
        self.calls = 0

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self.calls += 1
        return CompletionResponse(
            text=f"reply #{self.calls}",
            model=request.model,
            usage=Usage(prompt_tokens=1, completion_tokens=1),
            latency_s=1.0,
        )


@given(request=_requests)
@settings(max_examples=60, deadline=None)
def test_identical_requests_share_a_key(request):
    clone = CompletionRequest(
        messages=request.messages,
        model=request.model,
        temperature=request.temperature,
        max_tokens=request.max_tokens,
    )
    assert request_key(request) == request_key(clone)


@given(request=_requests, other=_requests)
@settings(max_examples=120, deadline=None)
def test_distinct_requests_never_collide(request, other):
    """Keys are equal iff every distinguishing field is equal."""
    same = (
        request.model == other.model
        and round(request.temperature, 6) == round(other.temperature, 6)
        and request.max_tokens == other.max_tokens
        and request.transcript == other.transcript
    )
    assert (request_key(request) == request_key(other)) == same


@given(request=_requests)
@settings(max_examples=40, deadline=None)
def test_identical_requests_always_hit(request):
    client = CachingClient(_Echo())
    first = client.complete(request)
    second = client.complete(request)
    assert client.hits == 1 and client.misses == 1
    assert second.text == first.text
    assert second.latency_s == 0.0


@given(request=_requests, data=st.data())
@settings(max_examples=60, deadline=None)
def test_perturbed_requests_always_miss(request, data):
    """Flipping exactly one field (to a different value) must miss."""
    field = data.draw(
        st.sampled_from(["model", "temperature", "max_tokens", "transcript"])
    )
    if field == "model":
        model = data.draw(_models.filter(lambda m: m != request.model))
        other = CompletionRequest(
            messages=request.messages, model=model,
            temperature=request.temperature, max_tokens=request.max_tokens,
        )
    elif field == "temperature":
        temperature = data.draw(
            _temperatures.filter(
                lambda t: round(t, 6) != round(request.temperature, 6)
            )
        )
        other = CompletionRequest(
            messages=request.messages, model=request.model,
            temperature=temperature, max_tokens=request.max_tokens,
        )
    elif field == "max_tokens":
        max_tokens = data.draw(
            _max_tokens.filter(lambda m: m != request.max_tokens)
        )
        other = CompletionRequest(
            messages=request.messages, model=request.model,
            temperature=request.temperature, max_tokens=max_tokens,
        )
    else:
        messages = data.draw(
            _messages.filter(
                lambda ms: [(m.role, m.content) for m in ms]
                != request.transcript
            )
        )
        other = CompletionRequest(
            messages=messages, model=request.model,
            temperature=request.temperature, max_tokens=request.max_tokens,
        )
    assert request_key(other) != request_key(request)

    client = CachingClient(_Echo())
    client.complete(request)
    client.complete(other)
    assert client.misses == 2 and client.hits == 0
