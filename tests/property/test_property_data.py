"""Property-based tests for corruption and metrics invariants."""

import random
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.corruption import numeric_outlier, typo
from repro.eval.metrics import confusion_counts, f1_score

values = st.text(alphabet=string.ascii_lowercase + " ", min_size=1, max_size=20)


class TestCorruptionProperties:
    @given(values, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80)
    def test_typo_always_changes(self, value, seed):
        rng = random.Random(seed)
        assert typo(value, rng).corrupted != value

    @given(values, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80)
    def test_typo_at_most_one_edit_of_length(self, value, seed):
        rng = random.Random(seed)
        corrupted = typo(value, rng).corrupted
        assert abs(len(corrupted) - len(value)) <= 1

    @given(st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60)
    def test_numeric_outlier_changes_value(self, value, seed):
        rng = random.Random(seed)
        out = numeric_outlier(value, rng)
        assert float(out.corrupted) != float(value)


class TestMetricProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=50), st.data())
    @settings(max_examples=80)
    def test_f1_bounds(self, labels, data):
        predictions = [data.draw(st.booleans()) for __ in labels]
        assert 0.0 <= f1_score(predictions, labels) <= 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_perfect_predictions(self, labels):
        score = f1_score(labels, labels)
        if any(labels):
            assert score == 1.0
        else:
            assert score == 0.0

    @given(st.lists(st.booleans(), min_size=1, max_size=50), st.data())
    @settings(max_examples=80)
    def test_confusion_partitions(self, labels, data):
        predictions = [data.draw(st.booleans()) for __ in labels]
        m = confusion_counts(predictions, labels)
        assert m.tp + m.fp + m.fn + m.tn == len(labels)
