"""Property-based tests for contextualization and answer parsing."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contextualize import parse_serialized_record, serialize_record
from repro.core.parsing import (
    normalize_binary,
    normalize_value,
    parse_batch_answers,
    parse_batch_answers_lenient,
    split_answer_blocks,
)
from repro.data.instances import Task
from repro.data.records import Record
from repro.data.schema import Schema
from repro.errors import AnswerFormatError

# Attribute names: word-ish; values avoid quotes/backslashes (cells in the
# benchmarks never contain them; the serialization format reserves them).
attr_names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=1, max_size=6, unique=True,
)
_CELL_ALPHABET = "".join(
    chr(c) for c in range(32, 127) if chr(c) not in '"\\'
)
cell_values = st.one_of(
    st.none(),
    st.text(alphabet=_CELL_ALPHABET, min_size=1, max_size=20),
)


class TestSerializationRoundtrip:
    @given(attr_names, st.data())
    @settings(max_examples=80)
    def test_parse_inverts_serialize(self, names, data):
        schema = Schema.from_names("t", names)
        values = {name: data.draw(cell_values) for name in names}
        record = Record(schema=schema, values=values)
        parsed = parse_serialized_record(serialize_record(record))
        for name in names:
            expected = record[name]
            got = parsed.get(name)
            if expected is None:
                assert got is None
            else:
                assert got == str(expected)


class TestLenientParsing:
    @given(st.text(max_size=200), st.integers(min_value=1, max_value=8))
    @settings(max_examples=80)
    def test_never_raises_and_length_correct(self, text, expected):
        out = parse_batch_answers_lenient(text, Task.ENTITY_MATCHING, expected)
        assert len(out) == expected
        assert all(o in (True, False, None) for o in out)

    @given(st.lists(st.sampled_from(["yes", "no"]), min_size=1, max_size=10))
    def test_wellformed_always_parsed(self, answers):
        text = "\n".join(
            f"Answer {i}: {a}" for i, a in enumerate(answers, start=1)
        )
        blocks = split_answer_blocks(text, len(answers))
        assert [b.answer for b in blocks] == answers
        lenient = parse_batch_answers_lenient(
            text, Task.ENTITY_MATCHING, len(answers)
        )
        assert lenient == [a == "yes" for a in answers]


# Arbitrary unicode (no lone surrogates — not encodable) including the
# planes where real model output gets weird: curly quotes, zero-width
# characters, fullwidth punctuation, non-ASCII digits.
arbitrary_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=120
)
marker_soup = st.text(
    alphabet="Answer answer0123456789٠١٢٣٤٥𝟙①:. \n\tyesno\"'“”。", max_size=120
)


class TestParserTotality:
    """The three parser primitives are total: for *any* input they return
    a result or raise AnswerFormatError — never anything else."""

    @given(st.one_of(arbitrary_text, marker_soup))
    @settings(max_examples=150)
    def test_normalize_binary_is_total(self, text):
        try:
            verdict = normalize_binary(text)
        except AnswerFormatError:
            return
        assert isinstance(verdict, bool)

    @given(st.one_of(arbitrary_text, marker_soup))
    @settings(max_examples=150)
    def test_normalize_value_is_total(self, text):
        try:
            value = normalize_value(text)
        except AnswerFormatError:
            return
        assert isinstance(value, str) and value

    @given(st.one_of(arbitrary_text, marker_soup),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=150)
    def test_split_answer_blocks_is_total(self, text, expected):
        try:
            blocks = split_answer_blocks(text, expected)
        except AnswerFormatError:
            return
        assert len(blocks) == expected
        assert all(block.answer for block in blocks)

    @given(st.one_of(arbitrary_text, marker_soup),
           st.sampled_from(list(Task)),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=150)
    def test_parse_batch_answers_is_total(self, text, task, expected):
        try:
            predictions = parse_batch_answers(text, task, expected)
        except AnswerFormatError:
            return
        assert len(predictions) == expected


class TestParserEdgeCases:
    """Named regressions: the inputs the conformance issue calls out."""

    def test_answer_zero_blocks_are_accepted_positionally(self):
        blocks = split_answer_blocks("Answer 0: yes\nAnswer 0: no", 2)
        assert [b.answer for b in blocks] == ["yes", "no"]

    def test_duplicate_numbers_are_accepted_positionally(self):
        blocks = split_answer_blocks("Answer 1: yes\nAnswer 1: no", 2)
        assert [b.answer for b in blocks] == ["yes", "no"]

    def test_duplicate_numbers_last_wins_in_lenient(self):
        out = parse_batch_answers_lenient(
            "Answer 1: yes\nAnswer 1: no", Task.ENTITY_MATCHING, 2
        )
        assert out == [False, None]

    def test_unicode_digit_markers_parse(self):
        # \d matches any unicode decimal digit and int() accepts them
        blocks = split_answer_blocks("Answer ١: yes", 1)
        assert blocks[0].answer == "yes"

    def test_huge_block_numbers_do_not_crash(self):
        out = parse_batch_answers_lenient(
            "Answer 99999999999999999999: yes", Task.ENTITY_MATCHING, 2
        )
        assert out == [None, None]

    @pytest.mark.parametrize("text", ['""', "''", "“”", '.', '。', '"."'])
    def test_empty_after_strip_values_raise_format_error(self, text):
        with pytest.raises(AnswerFormatError):
            normalize_value(text)

    @pytest.mark.parametrize("text, expected", [
        ('“Yes.”', True),
        ('‘no’', False),
        ("«Yes»", True),
        ("Yes。", True),
    ])
    def test_unicode_punctuation_binary(self, text, expected):
        assert normalize_binary(text) is expected

    @pytest.mark.parametrize("text, expected", [
        ('“tokyo”', "tokyo"),
        ("«new york»", "new york"),
        ("tokyo。", "tokyo"),
        ('" tokyo "', "tokyo"),
    ])
    def test_unicode_punctuation_values(self, text, expected):
        assert normalize_value(text) == expected

    def test_mismatched_quotes_are_kept(self):
        assert normalize_value('"tokyo”') == '"tokyo”'
