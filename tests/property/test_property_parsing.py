"""Property-based tests for contextualization and answer parsing."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contextualize import parse_serialized_record, serialize_record
from repro.core.parsing import parse_batch_answers_lenient, split_answer_blocks
from repro.data.instances import Task
from repro.data.records import Record
from repro.data.schema import Schema

# Attribute names: word-ish; values avoid quotes/backslashes (cells in the
# benchmarks never contain them; the serialization format reserves them).
attr_names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=1, max_size=6, unique=True,
)
_CELL_ALPHABET = "".join(
    chr(c) for c in range(32, 127) if chr(c) not in '"\\'
)
cell_values = st.one_of(
    st.none(),
    st.text(alphabet=_CELL_ALPHABET, min_size=1, max_size=20),
)


class TestSerializationRoundtrip:
    @given(attr_names, st.data())
    @settings(max_examples=80)
    def test_parse_inverts_serialize(self, names, data):
        schema = Schema.from_names("t", names)
        values = {name: data.draw(cell_values) for name in names}
        record = Record(schema=schema, values=values)
        parsed = parse_serialized_record(serialize_record(record))
        for name in names:
            expected = record[name]
            got = parsed.get(name)
            if expected is None:
                assert got is None
            else:
                assert got == str(expected)


class TestLenientParsing:
    @given(st.text(max_size=200), st.integers(min_value=1, max_value=8))
    @settings(max_examples=80)
    def test_never_raises_and_length_correct(self, text, expected):
        out = parse_batch_answers_lenient(text, Task.ENTITY_MATCHING, expected)
        assert len(out) == expected
        assert all(o in (True, False, None) for o in out)

    @given(st.lists(st.sampled_from(["yes", "no"]), min_size=1, max_size=10))
    def test_wellformed_always_parsed(self, answers):
        text = "\n".join(
            f"Answer {i}: {a}" for i, a in enumerate(answers, start=1)
        )
        blocks = split_answer_blocks(text, len(answers))
        assert [b.answer for b in blocks] == answers
        lenient = parse_batch_answers_lenient(
            text, Task.ENTITY_MATCHING, len(answers)
        )
        assert lenient == [a == "yes" for a in answers]
