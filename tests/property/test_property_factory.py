"""Property tests for the dataset factory.

The factory's contract is algebraic — every row and instance is a pure
function of ``(schema fingerprint, size, seed)`` — so it is stated over
*generated* schemas, not just the shipped presets: random two-table
schemas with a foreign key, random domains, random rates.  The
error-rate property uses ``derandomize=True``: generation is fully
deterministic per schema, so a seed-hunted statistical outlier would be
a permanent false alarm rather than a caught bug.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contextualize import serialize_instance
from repro.factory import DatasetFactory, FactorySchema, InstanceFactory

_words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def schemas(draw):
    """A two-table ED schema: parent universe + child with a foreign key."""
    n_parent = draw(st.integers(min_value=2, max_value=12))
    n_child = draw(st.integers(min_value=5, max_value=30))
    values = draw(
        st.lists(_words, min_size=2, max_size=5, unique=True)
    )
    error_rate = draw(st.sampled_from([0.2, 0.3, 0.5]))
    skew = draw(st.sampled_from(["uniform", "zipf"]))
    ref = {"kind": "ref", "table": "parent", "column": "pid", "skew": skew}
    if skew == "zipf":
        ref["a"] = draw(st.sampled_from([1.2, 1.5, 2.0]))
    doc = {
        "name": "prop_" + draw(_words),
        "tables": [
            {"name": "parent", "rows": n_parent, "columns": [
                {"name": "pid",
                 "dist": {"kind": "sequence", "prefix": "p-", "start": 1}},
                {"name": "color", "type": "categorical",
                 "dist": {"kind": "uniform", "values": values}},
            ]},
            {"name": "child", "rows": n_child, "columns": [
                {"name": "cid",
                 "dist": {"kind": "sequence", "prefix": "c-", "start": 1}},
                {"name": "pid", "dist": ref},
                {"name": "color", "type": "categorical",
                 "dist": {"kind": "uniform", "values": values}},
                {"name": "qty", "type": "numeric",
                 "dist": {"kind": "int", "low": 0,
                          "high": draw(st.integers(1, 50))}},
            ]},
        ],
        "task": {"kind": "ed", "table": "child",
                 "targets": ["color", "qty"],
                 "error_rate": error_rate,
                 "families": {"typo": 1.0, "numeric_outlier": 1.0},
                 "distractor_rate": 0.2},
    }
    return FactorySchema.from_dict(doc)


class TestRoundTrip:
    @given(schemas())
    @settings(max_examples=40, deadline=None)
    def test_dict_round_trip_preserves_the_fingerprint(self, schema):
        again = FactorySchema.from_dict(schema.to_dict())
        assert again.to_dict() == schema.to_dict()
        assert again.fingerprint == schema.fingerprint

    @given(schemas())
    @settings(max_examples=25, deadline=None)
    def test_yaml_round_trip_preserves_the_fingerprint(self, schema):
        pytest.importorskip("yaml")
        from repro.factory import dump_schema, load_schema

        assert load_schema(dump_schema(schema)).fingerprint == \
            schema.fingerprint


class TestDeterminism:
    @given(schemas(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_same_schema_size_seed_is_byte_identical(self, schema, seed):
        a = [serialize_instance(i) for i in
             InstanceFactory(schema, seed=seed).iter_instances(12)]
        b = [serialize_instance(i) for i in
             InstanceFactory(schema, seed=seed).iter_instances(12)]
        assert a == b

    @given(schemas(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_streamed_rows_equal_materialized_rows(self, schema, seed):
        fact = DatasetFactory(schema, seed=seed)
        stream = fact.stream("child")
        n = min(stream.rows, 20)
        streamed = [row for group in stream.iter_groups(n, group_size=3)
                    for row in group]
        materialized = [
            record.to_dict() for record in stream.materialize(n)
        ]
        assert streamed == materialized
        # and the digest is invariant under re-generation
        assert stream.digest(n) == DatasetFactory(
            schema, seed=seed
        ).stream("child").digest(n)


class TestReferentialIntegrity:
    @given(schemas(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_every_fk_value_exists_in_the_parent(self, schema, seed):
        fact = DatasetFactory(schema, seed=seed)
        parent = fact.stream("parent")
        universe = {
            parent.row(i)["pid"] for i in range(parent.spec.rows)
        }
        for row in fact.stream("child").iter_rows(0, 40):
            assert row["pid"] in universe


class TestErrorRates:
    @given(schemas())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_observed_error_rate_tracks_the_declared_rate(self, schema):
        n = 300
        errors = sum(
            1 for instance in InstanceFactory(schema).iter_instances(n)
            if instance.label
        )
        declared = schema.task.error_rate
        assert abs(errors / n - declared) < 0.1, (errors / n, declared)

    @given(schemas())
    @settings(max_examples=15, deadline=None)
    def test_erroneous_cells_visibly_differ(self, schema):
        for instance in InstanceFactory(schema).iter_instances(40):
            if instance.label:
                assert str(instance.record[instance.target_attribute]) != \
                    str(instance.clean_value)
