"""Property tests for flow graph scheduling (repro.flow.graph).

Flow journals address stages by their position in the topological order,
so that order must be a *pure function of the graph*: the same set of
stages and edges must schedule identically no matter what order a
program declared them in.  And every malformed graph — cycles, dangling
references — must fail closed with a typed ConfigError, never a hang or
a partial schedule.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.flow import FlowGraph, StageNode

_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
    ).filter(lambda s: not s.startswith("inputs")),
    min_size=1,
    max_size=8,
    unique=True,
)


@st.composite
def random_dags(draw):
    """A random DAG of table-producing stages over one flow input.

    Stage i may consume any stage j < i (in name-sorted construction
    order) or the flow input; edges always point from lower to higher
    index, so the graph is acyclic by construction.
    """
    names = draw(_names)
    stages = []
    for index, name in enumerate(names):
        if index == 0:
            source = "inputs.t"
        else:
            upstream = draw(
                st.integers(min_value=-1, max_value=index - 1)
            )
            source = "inputs.t" if upstream < 0 else names[upstream]
        stages.append(
            StageNode.make(name, "detect_errors", {"table": source})
        )
    return stages


@given(random_dags(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_topological_order_is_insertion_order_free(stages, rng):
    """Shuffling the declaration order never changes the schedule."""
    baseline = FlowGraph(stages, inputs=("t",)).topological_order()
    shuffled = list(stages)
    rng.shuffle(shuffled)
    assert FlowGraph(shuffled, inputs=("t",)).topological_order() == baseline


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_order_is_a_valid_schedule(stages):
    """Every stage appears exactly once, after everything it consumes."""
    graph = FlowGraph(stages, inputs=("t",))
    order = graph.topological_order()
    assert sorted(order) == sorted(graph.stages)
    position = {name: index for index, name in enumerate(order)}
    for name, stage in graph.stages.items():
        for upstream in stage.upstream_stages():
            assert position[upstream] < position[name]


@given(_names, st.data())
@settings(max_examples=60, deadline=None)
def test_any_cycle_raises_config_error(names, data):
    """Chain the stages, then add one back edge: always a ConfigError."""
    if len(names) < 2:
        names = names + [names[0] + "x"]
    stages = []
    for index, name in enumerate(names):
        source = "inputs.t" if index == 0 else names[index - 1]
        stages.append(
            StageNode.make(name, "detect_errors", {"table": source})
        )
    # rewire stage k to consume a later stage, closing a cycle
    k = data.draw(st.integers(min_value=0, max_value=len(names) - 2))
    j = data.draw(st.integers(min_value=k + 1, max_value=len(names) - 1))
    stages[k] = StageNode.make(names[k], "detect_errors", {"table": names[j]})
    with pytest.raises(ConfigError, match="cycle"):
        FlowGraph(stages, inputs=("t",))


@given(random_dags(), st.data())
@settings(max_examples=60, deadline=None)
def test_dangling_reference_raises_config_error(stages, data):
    """Rewiring any stage to a nonexistent upstream fails closed."""
    index = data.draw(
        st.integers(min_value=0, max_value=len(stages) - 1)
    )
    victim = stages[index]
    stages[index] = StageNode.make(
        victim.name, victim.kind, {"table": "no_such_stage"}
    )
    with pytest.raises(ConfigError, match="unknown stage"):
        FlowGraph(stages, inputs=("t",))


@given(random_dags())
@settings(max_examples=30, deadline=None)
def test_spec_payload_is_canonical(stages):
    """Payload equality is declaration-order independent too."""
    forward = FlowGraph(stages, inputs=("t",)).spec_payload()
    backward = FlowGraph(list(reversed(stages)), inputs=("t",)).spec_payload()
    assert forward == backward
