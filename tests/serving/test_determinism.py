"""Determinism suite: the serving layer's concurrency contract.

Every scheduling decision runs on the arrival clock, so batch
composition, predictions, flush times, rejections, token usage, and every
metric counter must be *bit-identical* at executor concurrency 1, 2, and
8 — only ``completed_s`` (and hence latency) may move with lane
parallelism.  Two identically configured services replaying the same
trace must agree byte for byte, completed times included.
"""

import pytest

from repro.obs.manifest import canonical_json
from repro.serving import (
    ServeConfig,
    TenantBudget,
    default_tenants,
    generate_trace,
)

CONCURRENCIES = (1, 2, 8)


def _stable_signature(report):
    """Everything the determinism contract covers (no completed times)."""
    return (
        [
            (r.request_id, r.tenant, r.prediction, r.source,
             r.batch_seq, r.flushed_s, r.quarantine_reason)
            for r in sorted(report.responses, key=lambda r: r.request_id)
        ],
        [(r.request_id, r.tenant, r.reason) for r in report.rejections],
        report.batches,
        report.metrics,
        (report.usage.prompt_tokens, report.usage.completion_tokens),
    )


@pytest.fixture(scope="module")
def mixed_trace(adult_dataset):
    """3 heterogeneous tenants, bursty enough to hit every source and a
    tenant_rpm rejection under the budgets the tests pair it with."""
    return generate_trace(
        adult_dataset, default_tenants(3, 300, rate_rps=40.0), seed=11
    )


def _tight_budgets():
    # rpm=50 forces the high-rate tenant into deterministic rejections
    return [TenantBudget(f"tenant-{i}", 50, 10**9) for i in range(3)]


@pytest.mark.parametrize("coalesce", ["window", "eager"])
def test_bit_identical_across_concurrency(
    mixed_trace, make_service, coalesce
):
    signatures = []
    for concurrency in CONCURRENCIES:
        service = make_service(
            budgets=_tight_budgets(),
            serve_config=ServeConfig(coalesce=coalesce),
            concurrency=concurrency,
        )
        signatures.append(_stable_signature(service.serve(mixed_trace)))
    assert signatures[0] == signatures[1]
    assert signatures[1] == signatures[2]


def test_trace_exercises_every_path(mixed_trace, make_service):
    """The contract test above is only meaningful if the trace actually
    reaches the llm/shared/cache sources and the rejection path."""
    service = make_service(
        budgets=_tight_budgets(), serve_config=ServeConfig()
    )
    report = service.serve(mixed_trace)
    sources = {r.source for r in report.responses}
    assert sources == {"llm", "shared", "cache"}
    assert report.n_rejected > 0
    assert len(report.batches) > 1


def test_replay_is_byte_identical(mixed_trace, make_service):
    """Same trace + same config ⇒ the full payload (completed times and
    latency percentiles included) reproduces byte for byte."""

    def run():
        service = make_service(
            budgets=_tight_budgets(),
            serve_config=ServeConfig(),
            concurrency=4,
        )
        return service.serve(mixed_trace)

    first, second = run(), run()
    assert canonical_json(first.payload()) == canonical_json(second.payload())


def test_trace_generation_is_deterministic(adult_dataset):
    tenants = default_tenants(3, 200, rate_rps=25.0)
    first = generate_trace(adult_dataset, tenants, seed=5)
    second = generate_trace(adult_dataset, tenants, seed=5)
    assert first == second
    # request_ids are assigned in arrival order — the scheduler's
    # deterministic tie-breaker must be globally monotone.
    assert [r.request_id for r in first] == list(range(len(first)))
    arrivals = [r.arrival_s for r in first]
    assert arrivals == sorted(arrivals)


def test_adding_a_tenant_does_not_perturb_existing_streams(adult_dataset):
    """Tenant streams are keyed by name: a fleet extension changes the
    merge, never the per-tenant arrival/instance sequences."""
    base = generate_trace(
        adult_dataset,
        default_tenants(2, 200, rate_rps=25.0),
        seed=5,
    )
    extended = generate_trace(
        adult_dataset,
        default_tenants(2, 200, rate_rps=25.0)
        + [
            spec
            for spec in default_tenants(3, 300, rate_rps=25.0)
            if spec.name == "tenant-2"
        ],
        seed=5,
    )

    def stream(trace, tenant):
        return [
            (r.arrival_s, r.instance) for r in trace if r.tenant == tenant
        ]

    for tenant in ("tenant-0", "tenant-1"):
        assert stream(base, tenant) == stream(extended, tenant)
