"""Starvation and fairness regressions.

The coalescer's bound: a group flushes whole at its *oldest* entry's
deadline, so no request waits past its own ``max_wait`` on the arrival
clock — a high-rate tenant can fill batches but can never delay a
low-rate tenant's flush.  Refusals are always typed, one reason per
rejection, so a squeezed tenant can tell a full queue from an exhausted
plan.
"""

import pytest

from repro.serving import (
    REJECT_REASONS,
    ServeConfig,
    TenantBudget,
    TenantSpec,
    generate_trace,
)
from tests.serving.conftest import generous_budgets


@pytest.mark.parametrize("coalesce", ["window", "eager"])
def test_whale_cannot_starve_minnow(adult_dataset, make_service, coalesce):
    """160:1 rate imbalance; every request still flushes within max_wait."""
    tenants = [
        TenantSpec("whale", rate_rps=80.0, n_requests=400),
        TenantSpec("minnow", rate_rps=0.5, n_requests=5),
    ]
    trace = generate_trace(adult_dataset, tenants, seed=3)
    max_wait_s = 2.0
    service = make_service(
        budgets=generous_budgets("whale", "minnow"),
        serve_config=ServeConfig(
            coalesce=coalesce, max_wait_s=max_wait_s, max_batch=8
        ),
    )
    report = service.serve(trace)

    assert report.n_rejected == 0
    for response in report.responses:
        assert response.wait_s <= max_wait_s + 1e-9
    # the minnow's requests all complete, none swallowed by whale churn
    minnow = [r for r in report.responses if r.tenant == "minnow"]
    assert len(minnow) == 5


def test_rpm_exhaustion_is_typed(make_service, make_trace):
    trace = make_trace([
        ("tenant-0", 0.1 * i, i) for i in range(5)
    ])
    service = make_service(
        budgets=[TenantBudget("tenant-0", 2, 10**9)],
    )
    report = service.serve(trace)
    assert report.n_served == 2
    assert [r.reason for r in report.rejections] == ["tenant_rpm"] * 3
    assert {r.request_id for r in report.rejections} == {2, 3, 4}


def test_tpm_exhaustion_is_typed(make_service, make_trace):
    """A plan too small for even one question refuses everything as
    tenant_tpm — and never burns a completion call doing it."""
    trace = make_trace([("tenant-0", float(i), i) for i in range(3)])
    service = make_service(
        budgets=[TenantBudget("tenant-0", 10**6, 1)],
    )
    report = service.serve(trace)
    assert report.n_served == 0
    assert [r.reason for r in report.rejections] == ["tenant_tpm"] * 3
    assert report.usage.total_tokens == 0


def test_queue_full_rejects_new_questions_but_not_joins(
    make_service, make_trace
):
    """With one queue slot: a second unique question is refused
    queue_full, but a duplicate of the queued question still rides along
    as a waiter — capacity bounds questions, not requests."""
    trace = make_trace([
        ("tenant-0", 0.0, 0),   # occupies the only slot
        ("tenant-0", 0.1, 1),   # new unique question -> queue_full
        ("tenant-0", 0.2, 0),   # duplicate -> joins as waiter
    ])
    service = make_service(
        serve_config=ServeConfig(
            max_queue=1, max_batch=16, max_wait_s=100.0
        ),
    )
    report = service.serve(trace)
    assert {r.request_id for r in report.responses} == {0, 2}
    [rejection] = report.rejections
    assert rejection.request_id == 1
    assert rejection.reason == "queue_full"
    assert rejection.detail  # names the in-flight count
    assert {r.reason for r in report.rejections} <= set(REJECT_REASONS)
