"""Property tests for admission control and queue conservation.

The sliding one-minute window must never let a tenant exceed its RPM/TPM
plan in *any* 60-second span, and the service must account for every
arrival exactly once — served or rejected with a typed reason, nothing
dropped silently.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.llm.ratelimit import RateLimit, SlidingWindowBudget
from repro.serving import (
    ANSWER_SOURCES,
    REJECT_REASONS,
    ServeConfig,
    TenantAdmission,
    TenantBudget,
)
from repro.errors import ServingError

# -- the window itself -----------------------------------------------------

_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=1, max_value=500),
    ),
    min_size=1,
    max_size=150,
)


@given(
    events=_events,
    rpm=st.integers(min_value=1, max_value=20),
    tpm=st.integers(min_value=100, max_value=5000),
)
@settings(max_examples=200, deadline=None)
def test_no_60s_span_ever_exceeds_the_plan(events, rpm, tpm):
    window = SlidingWindowBudget(
        RateLimit(requests_per_minute=rpm, tokens_per_minute=tpm)
    )
    admitted: list[tuple[float, int]] = []
    now = 0.0
    for delta, tokens in events:
        now += delta
        verdict = window.try_admit(tokens, now)
        if verdict is None:
            admitted.append((now, tokens))
        else:
            assert verdict in ("rpm", "tpm")
    # The invariant the plan sells: looking back from any admitted
    # request, the trailing (t-60, t] window respects both limits.
    for at, __ in admitted:
        in_window = [
            (t, tok) for t, tok in admitted if at - 60.0 < t <= at
        ]
        assert len(in_window) <= rpm
        assert sum(tok for __, tok in in_window) <= tpm


@given(events=_events)
@settings(max_examples=50, deadline=None)
def test_rejections_never_poison_the_window(events):
    """An over-budget burst is refused but not recorded: a single-slot
    plan admits again as soon as the previous admission ages out."""
    window = SlidingWindowBudget(
        RateLimit(requests_per_minute=1, tokens_per_minute=10**9)
    )
    now = 0.0
    last_admitted = None
    for delta, tokens in events:
        now += delta
        verdict = window.try_admit(tokens, now)
        if verdict is None:
            last_admitted = now
        else:
            # only the recorded admission can be blocking: it must still
            # be inside the half-open (now-60, now] window the budget
            # evicts on.  Compare in the window's own form — computing
            # `now - last_admitted` first can round a subnormal gap away
            # and report exactly 60.0 for an entry that is still live.
            assert last_admitted is not None
            assert last_admitted > now - 60.0


def test_admission_times_must_be_nondecreasing():
    window = SlidingWindowBudget(
        RateLimit(requests_per_minute=10, tokens_per_minute=1000)
    )
    assert window.try_admit(1, 5.0) is None
    with pytest.raises(ValueError):
        window.try_admit(1, 4.0)


# -- tenant bookkeeping ----------------------------------------------------

class TestTenantAdmission:
    def test_unknown_tenant_is_a_caller_bug(self):
        admission = TenantAdmission([TenantBudget("a", 10, 1000)])
        with pytest.raises(ServingError):
            admission.admit("ghost", 1, 0.0)
        with pytest.raises(ServingError):
            admission.budget_of("ghost")

    def test_duplicate_or_empty_fleet_rejected(self):
        budget = TenantBudget("a", 10, 1000)
        with pytest.raises(ServingError):
            TenantAdmission([budget, budget])
        with pytest.raises(ServingError):
            TenantAdmission([])

    def test_refusals_carry_the_tenant_prefix(self):
        admission = TenantAdmission([TenantBudget("a", 1, 10**9)])
        assert admission.admit("a", 1, 0.0) is None
        assert admission.admit("a", 1, 0.0) == "tenant_rpm"

    def test_budget_validation(self):
        with pytest.raises(ServingError):
            TenantBudget("", 10, 1000)
        with pytest.raises(ServingError):
            TenantBudget("a", 0, 1000)
        with pytest.raises(ServingError):
            TenantBudget("a", 10, 0)


# -- conservation through the whole service --------------------------------

_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),   # tenant index
        st.floats(min_value=0.0, max_value=2.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=39),  # instance index
    ),
    min_size=1,
    max_size=60,
)


@given(
    steps=_steps,
    rpm=st.integers(min_value=1, max_value=30),
    tpm=st.integers(min_value=200, max_value=20_000),
)
@settings(
    max_examples=25,
    deadline=None,
    # the factory fixtures are stateless closures over session-scoped
    # data; every example builds its own fresh service from them
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_queue_conservation_and_typed_outcomes(
    adult_dataset, make_service, make_trace, steps, rpm, tpm
):
    budgets = [TenantBudget(f"tenant-{i}", rpm, tpm) for i in range(3)]
    service = make_service(
        budgets=budgets,
        serve_config=ServeConfig(max_batch=4, max_wait_s=1.0),
    )
    now = 0.0
    rows = []
    for tenant, delta, index in steps:
        now += delta
        rows.append((f"tenant-{tenant}", now, index))
    trace = make_trace(rows)

    report = service.serve(trace)

    # arrived = served + rejected, and the ids partition exactly
    assert report.n_served + report.n_rejected == len(trace)
    served = {r.request_id for r in report.responses}
    rejected = {r.request_id for r in report.rejections}
    assert served.isdisjoint(rejected)
    assert served | rejected == {r.request_id for r in trace}
    # every outcome is typed
    assert all(r.reason in REJECT_REASONS for r in report.rejections)
    assert all(r.source in ANSWER_SOURCES for r in report.responses)
    # no tenant's served requests ever exceed its RPM plan in any
    # trailing minute (admission charges served requests only)
    for tenant in ("tenant-0", "tenant-1", "tenant-2"):
        arrivals = sorted(
            r.arrival_s for r in report.responses if r.tenant == tenant
        )
        for at in arrivals:
            assert sum(1 for a in arrivals if at - 60.0 < a <= at) <= rpm
