"""Unit tests for the batch coalescer (no service, no executor).

The coalescer is pure arrival-clock bookkeeping: these tests pin the
flush triggers (eager full, deadline), the whole-group release, the
deterministic ordering of simultaneous flushes, and the drain semantics.
"""

import pytest

from repro.errors import ServingError
from repro.serving import (
    BatchCoalescer,
    CoalescePolicy,
    PendingEntry,
    ServeRequest,
)
from repro.serving.scheduler import FLUSH_REASONS


def _entry(key, arrival, *, target="city", max_wait=2.0, request_id=None):
    identifier = request_id if request_id is not None else int(arrival * 100)
    return PendingEntry(
        key=key,
        instance=None,  # the coalescer never touches the instance
        target=target,
        arrival_s=arrival,
        deadline_s=arrival + max_wait,
        waiters=[ServeRequest(identifier, "tenant", arrival, None)],
    )


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ServingError):
            CoalescePolicy(max_batch=0)
        with pytest.raises(ServingError):
            CoalescePolicy(max_wait_s=-0.1)
        with pytest.raises(ServingError):
            CoalescePolicy(mode="bogus")

    def test_defaults(self):
        policy = CoalescePolicy()
        assert policy.max_batch == 8
        assert policy.max_wait_s == 2.0
        assert policy.mode == "window"


class TestEagerMode:
    def test_flushes_the_moment_a_group_fills(self):
        coalescer = BatchCoalescer(CoalescePolicy(max_batch=3, mode="eager"))
        first = _entry("k1", 0.0)
        second = _entry("k2", 0.5)
        assert coalescer.add(first) is None
        assert coalescer.add(second) is None
        assert coalescer.n_pending == 2

        third = _entry("k3", 1.0)
        flush = coalescer.add(third)
        assert flush is not None
        assert flush.reason == "full"
        assert flush.reason in FLUSH_REASONS
        assert flush.at == 1.0  # the arrival that filled the group
        assert flush.entries == (first, second, third)
        assert coalescer.n_pending == 0

    def test_groups_fill_per_target(self):
        coalescer = BatchCoalescer(CoalescePolicy(max_batch=2, mode="eager"))
        assert coalescer.add(_entry("k1", 0.0, target="city")) is None
        assert coalescer.add(_entry("k2", 0.1, target="income")) is None
        flush = coalescer.add(_entry("k3", 0.2, target="city"))
        assert flush is not None
        assert flush.target == "city"
        assert coalescer.n_pending == 1  # the income entry still waits


class TestWindowMode:
    def test_add_never_flushes_even_past_max_batch(self):
        coalescer = BatchCoalescer(CoalescePolicy(max_batch=2, mode="window"))
        for index in range(5):
            assert coalescer.add(_entry(f"k{index}", index * 0.1)) is None
        assert coalescer.n_pending == 5

    def test_due_respects_the_oldest_deadline(self):
        coalescer = BatchCoalescer(CoalescePolicy(max_wait_s=2.0))
        oldest = _entry("k1", 1.0)   # deadline 3.0
        younger = _entry("k2", 2.5)  # deadline 4.5
        coalescer.add(oldest)
        coalescer.add(younger)
        assert coalescer.due(2.9) == []

        [flush] = coalescer.due(3.0)
        assert flush.reason == "deadline"
        assert flush.at == 3.0  # the oldest deadline, not `now`
        # the whole group releases: the younger entry never waits alone
        assert flush.entries == (oldest, younger)
        assert coalescer.n_pending == 0

    def test_simultaneous_deadlines_order_by_first_request_id(self):
        coalescer = BatchCoalescer(CoalescePolicy(max_wait_s=1.0))
        coalescer.add(_entry("k1", 0.0, target="b", request_id=7))
        coalescer.add(_entry("k2", 0.0, target="a", request_id=3))
        first, second = coalescer.due(10.0)
        assert first.target == "a"   # request 3 beats request 7
        assert second.target == "b"

    def test_distinct_deadlines_order_by_deadline(self):
        coalescer = BatchCoalescer(CoalescePolicy(max_wait_s=1.0))
        coalescer.add(_entry("k1", 5.0, target="late", max_wait=1.0))
        coalescer.add(_entry("k2", 1.0, target="early", max_wait=1.0))
        first, second = coalescer.due(10.0)
        assert [first.target, second.target] == ["early", "late"]
        assert [first.at, second.at] == [2.0, 6.0]


class TestDrain:
    def test_drain_releases_everything_in_deadline_order(self):
        coalescer = BatchCoalescer(CoalescePolicy(max_wait_s=1.0))
        coalescer.add(_entry("k1", 3.0, target="b"))
        coalescer.add(_entry("k2", 0.0, target="a"))
        coalescer.add(_entry("k3", 0.5, target="a"))
        flushes = coalescer.drain()
        assert [f.target for f in flushes] == ["a", "b"]
        assert all(f.reason == "deadline" for f in flushes)
        assert coalescer.n_pending == 0
        assert coalescer.drain() == []


def test_tie_break_without_waiters_is_sentinel():
    entry = _entry("k", 0.0)
    entry.waiters.clear()
    assert entry.tie_break == -1
