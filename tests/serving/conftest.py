"""Fixtures for the serving-layer suite.

Tests drive :class:`~repro.serving.PreprocessingService` over small
synthetic traces against the session-scoped adult dataset (ED task) with
a :class:`~repro.llm.simulated.SimulatedLLM` backend.  ``make_service``
is a factory fixture so each test owns a fresh service (the service is
stateful across :meth:`serve` calls by design); ``make_trace`` builds
hand-written traces from ``(tenant, arrival_s, instance_index)`` rows.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.llm.simulated import SimulatedLLM
from repro.serving import PreprocessingService, ServeRequest, TenantBudget

#: a budget no test trace can exhaust
GENEROUS = 10**9


def generous_budgets(*names: str) -> list[TenantBudget]:
    return [TenantBudget(name, GENEROUS, GENEROUS) for name in names]


@pytest.fixture
def make_service(adult_dataset):
    def _make(
        budgets: list[TenantBudget] | None = None,
        serve_config=None,
        concurrency: int = 2,
        seed: int = 0,
        model: str = "gpt-3.5",
        dataset=None,
    ) -> PreprocessingService:
        target = dataset if dataset is not None else adult_dataset
        if budgets is None:
            budgets = generous_budgets("tenant-0", "tenant-1", "tenant-2")
        return PreprocessingService(
            SimulatedLLM(model, seed=seed),
            target,
            budgets,
            serve_config=serve_config,
            pipeline_config=PipelineConfig(
                model=model, seed=seed, concurrency=concurrency
            ),
        )

    return _make


@pytest.fixture
def make_trace(adult_dataset):
    def _make(rows, dataset=None) -> list[ServeRequest]:
        """rows: iterable of (tenant, arrival_s, instance_index)."""
        instances = list(
            (dataset if dataset is not None else adult_dataset).instances
        )
        return [
            ServeRequest(
                request_id=request_id,
                tenant=tenant,
                arrival_s=arrival_s,
                instance=instances[index],
            )
            for request_id, (tenant, arrival_s, index) in enumerate(rows)
        ]

    return _make
