"""Unit tests for the completed-answer LRU cache and its metering."""

import pytest

from repro.errors import ServingError
from repro.obs.metrics import MetricsRegistry
from repro.serving import CachedAnswer, ServingCache


def _answer(prediction, completed=1.0, reason=None):
    return CachedAnswer(
        prediction=prediction, completed_s=completed,
        quarantine_reason=reason,
    )


class TestServingCache:
    def test_roundtrip_and_miss(self):
        cache = ServingCache()
        assert cache.get("k") is None
        answer = _answer(True)
        cache.put("k", answer)
        assert cache.get("k") is answer
        assert len(cache) == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServingError):
            ServingCache(max_entries=-1)

    def test_zero_capacity_disables_storage(self):
        cache = ServingCache(max_entries=0)
        cache.put("k", _answer(True))
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_lru_eviction_respects_recency(self):
        cache = ServingCache(max_entries=2)
        cache.put("a", _answer("first"))
        cache.put("b", _answer("second"))
        cache.get("a")                    # touch: a is now most recent
        cache.put("c", _answer("third"))  # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert len(cache) == 2

    def test_overwrite_does_not_evict(self):
        cache = ServingCache(max_entries=2)
        cache.put("a", _answer(1))
        cache.put("b", _answer(2))
        cache.put("a", _answer(3))  # replace, still 2 entries
        assert len(cache) == 2
        assert cache.get("a").prediction == 3

    def test_quarantined_answers_are_remembered(self):
        cache = ServingCache()
        cache.put("k", _answer(None, reason="gave_up"))
        cached = cache.get("k")
        assert cached.prediction is None
        assert cached.quarantine_reason == "gave_up"

    def test_hits_and_evictions_are_metered(self):
        metrics = MetricsRegistry()
        cache = ServingCache(max_entries=1, metrics=metrics)
        cache.put("a", _answer(1))
        cache.get("a")
        cache.get("missing")     # misses are the service's to count
        cache.put("b", _answer(2))  # evicts a
        counters = metrics.snapshot()["counters"]
        assert counters["serving.cache.hits"] == 1
        assert counters["serving.cache.evictions"] == 1
        assert "serving.cache.misses" not in counters

    def test_unmetered_cache_works_without_a_registry(self):
        cache = ServingCache(max_entries=1)
        cache.put("a", _answer(1))
        cache.put("b", _answer(2))
        assert cache.get("a") is None
        assert cache.get("b") is not None
