"""Degradation-aware load shedding: typed rejections, queue conservation.

The resilience contract at the serving layer: when the backend is too
sick to keep up, new arrivals are refused with the typed reason
``backend_degraded`` *before* any budget is charged, every request in
the trace is still accounted exactly once (served or rejected), and the
monitor's verdict is hysteretic — it does not flap at the threshold.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.executor import ExecutorConfig
from repro.llm.faults import DegradedClient
from repro.llm.simulated import SimulatedLLM
from repro.resilience import ResilienceConfig, blackout_plan
from repro.serving import (
    REJECT_REASONS,
    PreprocessingService,
    ServeRequest,
    TenantBudget,
)
from repro.serving.tenants import DegradationMonitor


class _Report:
    """A minimal stand-in for ExecutionReport counter fields."""

    def __init__(self, n_calls=0, n_retries=0, n_rate_limit_waits=0,
                 n_giveups=0):
        self.n_calls = n_calls
        self.n_retries = n_retries
        self.n_rate_limit_waits = n_rate_limit_waits
        self.n_giveups = n_giveups


class TestDegradationMonitor:
    def test_failures_raise_stress_and_trigger_shedding(self):
        monitor = DegradationMonitor(ResilienceConfig())
        monitor.observe_report(_Report(n_calls=0, n_giveups=4))
        assert monitor.stress == pytest.approx(0.3)
        assert not monitor.should_shed()
        monitor.observe_report(_Report(n_calls=0, n_giveups=8))
        assert monitor.stress == pytest.approx(0.51)
        assert monitor.should_shed()
        assert monitor.n_shed_windows == 1

    def test_reports_are_diffed_not_recounted(self):
        monitor = DegradationMonitor(ResilienceConfig())
        report = _Report(n_calls=10, n_giveups=0)
        monitor.observe_report(report)
        before = monitor.stress
        # same cumulative counters again: no new events, no stress change
        monitor.observe_report(report)
        assert monitor.stress == before

    def test_hysteresis_needs_stress_below_exit(self):
        monitor = DegradationMonitor(ResilienceConfig())
        monitor.observe_report(_Report(n_giveups=4))
        monitor.observe_report(_Report(n_giveups=8))
        assert monitor.should_shed()
        # healthy flushes decay stress: 0.51 -> 0.357 -> 0.2499;
        # shedding holds until it drops under shed_exit = 0.25
        monitor.observe_report(_Report(n_calls=100, n_giveups=8))
        assert monitor.should_shed()
        monitor.observe_report(_Report(n_calls=200, n_giveups=8))
        assert not monitor.should_shed()
        assert monitor.n_shed_windows == 1

    def test_backlog_blocks_recovery_until_drained(self):
        monitor = DegradationMonitor(ResilienceConfig(), drain_backlog_s=5.0)
        monitor.observe_report(_Report(n_giveups=4))
        monitor.observe_report(_Report(n_giveups=8))
        assert monitor.should_shed()
        # stress fully decayed, but the queue is still deep: keep shedding
        for calls in (100, 200, 300, 400):
            monitor.observe_report(_Report(n_calls=calls, n_giveups=8))
        assert monitor.should_shed(backlog_age_s=30.0)
        assert not monitor.should_shed(backlog_age_s=1.0)

    def test_router_verdict_floors_stress_at_enter(self):
        monitor = DegradationMonitor(ResilienceConfig())
        monitor.observe_router(shedding=True)
        assert monitor.should_shed()
        monitor.observe_router(shedding=False)  # no-op: decay, don't reset
        assert monitor.stress >= ResilienceConfig().shed_enter


class TestServiceShedding:
    def _service(self, dataset, resilience=ResilienceConfig()):
        # A primary that blacks out from the first virtual second: every
        # executor flush fails, stress climbs, and the service must shed.
        client = DegradedClient(
            SimulatedLLM("gpt-3.5", seed=0),
            blackout_plan(seed=0, start_s=0.0, duration_s=10_000.0),
            backend_name="primary",
        )
        return PreprocessingService(
            client,
            dataset,
            [TenantBudget("tenant-0", 10**9, 10**9)],
            pipeline_config=PipelineConfig(
                model="gpt-3.5", seed=0, concurrency=2
            ),
            executor_config=ExecutorConfig(resilience=resilience),
        )

    def _trace(self, dataset, n, spacing_s=4.0):
        instances = list(dataset.instances)
        return [
            ServeRequest(
                request_id=i,
                tenant="tenant-0",
                arrival_s=i * spacing_s,
                instance=instances[i % len(instances)],
            )
            for i in range(n)
        ]

    def test_degraded_backend_sheds_with_typed_reason(self, adult_dataset):
        service = self._service(adult_dataset)
        trace = self._trace(adult_dataset, 24)
        report = service.serve(trace)
        # queue conservation under shedding: every arrival accounted once
        assert report.n_served + report.n_rejected == len(trace)
        reasons = {r.reason for r in report.rejections}
        assert "backend_degraded" in reasons
        assert reasons <= set(REJECT_REASONS)
        # nothing charged for shed requests: their ids never served
        served_ids = {r.request_id for r in report.responses}
        shed_ids = {
            r.request_id for r in report.rejections
            if r.reason == "backend_degraded"
        }
        assert not served_ids & shed_ids
        # the manifest carries the shedding stress in resilience mode
        assert report.backend_health is not None
        assert report.backend_health["shedding"]["n_shed_windows"] >= 1

    def test_healthy_backend_never_sheds(self, adult_dataset):
        service = PreprocessingService(
            SimulatedLLM("gpt-3.5", seed=0),
            adult_dataset,
            [TenantBudget("tenant-0", 10**9, 10**9)],
            pipeline_config=PipelineConfig(
                model="gpt-3.5", seed=0, concurrency=2
            ),
            executor_config=ExecutorConfig(resilience=ResilienceConfig()),
        )
        trace = self._trace(adult_dataset, 12)
        report = service.serve(trace)
        assert report.n_rejected == 0
        assert report.backend_health["shedding"]["n_shed_windows"] == 0

    def test_without_resilience_no_health_payload(self, adult_dataset):
        service = PreprocessingService(
            SimulatedLLM("gpt-3.5", seed=0),
            adult_dataset,
            [TenantBudget("tenant-0", 10**9, 10**9)],
            pipeline_config=PipelineConfig(
                model="gpt-3.5", seed=0, concurrency=2
            ),
        )
        report = service.serve(self._trace(adult_dataset, 6))
        assert report.backend_health is None
        assert report.n_served == 6
