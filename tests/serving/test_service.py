"""End-to-end service behavior: caching across runs, trace validation,
eviction metering, and the report surface."""

import pytest

from repro.errors import ServingError
from repro.serving import ServeConfig, ServeRequest
from tests.serving.conftest import generous_budgets

#: one flush per unique question, answer cache of exactly one entry
TINY = ServeConfig(max_batch=1, coalesce="eager", cache_entries=1)


class TestCrossRunCache:
    def test_second_run_is_answered_entirely_from_cache(
        self, make_service, make_trace
    ):
        service = make_service()
        first = service.serve(
            make_trace([("tenant-0", float(i), i % 10) for i in range(20)])
        )
        assert first.usage.total_tokens > 0

        second = service.serve(
            make_trace(
                [("tenant-1", 1000.0 + i, i % 10) for i in range(20)]
            )
        )
        assert {r.source for r in second.responses} == {"cache"}
        assert second.usage.total_tokens == 0
        assert second.batches == []
        assert second.cache_hit_rate == 1.0

    def test_arrival_clock_is_monotonic_across_runs(
        self, make_service, make_trace
    ):
        service = make_service()
        service.serve(make_trace([("tenant-0", 50.0, 0)]))
        with pytest.raises(ServingError):
            service.serve(make_trace([("tenant-0", 10.0, 1)]))


class TestTraceValidation:
    def test_unsorted_trace_rejected(self, make_service, make_trace):
        service = make_service()
        trace = make_trace([("tenant-0", 5.0, 0), ("tenant-0", 1.0, 1)])
        with pytest.raises(ServingError):
            service.serve(trace)

    def test_wrong_task_rejected(
        self, make_service, restaurant_dataset
    ):
        service = make_service()  # serves the adult (ED) task
        foreign = list(restaurant_dataset.instances)[0]
        trace = [ServeRequest(0, "tenant-0", 0.0, foreign)]
        with pytest.raises(ServingError):
            service.serve(trace)

    def test_unknown_tenant_rejected(self, make_service, make_trace):
        service = make_service(budgets=generous_budgets("alpha"))
        with pytest.raises(ServingError):
            service.serve(make_trace([("ghost", 0.0, 0)]))


class TestServeConfigValidation:
    def test_max_queue_must_be_positive(self):
        with pytest.raises(ServingError):
            ServeConfig(max_queue=0)

    def test_policy_knobs_validated_at_construction(self):
        with pytest.raises(ServingError):
            ServeConfig(coalesce="bogus")
        with pytest.raises(ServingError):
            ServeConfig(max_batch=0)
        with pytest.raises(ServingError):
            ServeConfig(max_wait_s=-1.0)


class TestEvictionMetering:
    def test_cache_traffic_lands_in_the_metrics_manifest(
        self, make_service, make_trace
    ):
        """The exact hit/miss/eviction counts of a hand-traced schedule
        must appear in the report's metrics snapshot — the manifest the
        golden layer freezes."""
        service = make_service(serve_config=TINY)
        report = service.serve(make_trace([
            ("tenant-0", 0.0, 0),  # miss -> flush -> cached
            ("tenant-0", 1.0, 1),  # miss -> flush -> evicts question 0
            ("tenant-0", 2.0, 0),  # miss again (evicted) -> evicts 1
            ("tenant-0", 3.0, 0),  # hit
        ]))
        counters = report.metrics["counters"]
        assert counters["serving.requests"] == 4
        assert counters["serving.cache.misses"] == 3
        assert counters["serving.cache.hits"] == 1
        assert counters["serving.cache.evictions"] == 2
        assert counters["serving.batches"] == 3
        assert counters["serving.flush.full"] == 3
        [hit] = [r for r in report.responses if r.source == "cache"]
        assert hit.request_id == 3

    def test_bounded_prep_texts_meter_their_evictions(
        self, make_service, make_trace
    ):
        service = make_service(
            serve_config=ServeConfig(
                max_batch=1, coalesce="eager", prep_texts=2
            ),
        )
        report = service.serve(
            make_trace([("tenant-0", float(i), i) for i in range(8)])
        )
        counters = report.metrics["counters"]
        assert counters["prep.serialize.evictions"] > 0
        # bounding the text cache must not change what gets served
        assert report.n_served == 8


class TestReportSurface:
    def test_summary_carries_the_headline_metrics(
        self, make_service, make_trace
    ):
        service = make_service()
        report = service.serve(
            make_trace([("tenant-0", 0.1 * i, i % 6) for i in range(30)])
        )
        summary = report.summary()
        for key in (
            "n_requests", "n_served", "n_rejected", "n_batches",
            "sources", "p50_latency_s", "p99_latency_s",
            "throughput_rps", "coalesce_rate", "cache_hit_rate",
            "makespan_s", "prompt_tokens", "completion_tokens",
            "total_tokens",
        ):
            assert key in summary
        assert summary["n_requests"] == 30
        assert 0.0 <= summary["coalesce_rate"] < 1.0
        assert 0.0 <= summary["cache_hit_rate"] <= 1.0
        assert summary["p50_latency_s"] <= summary["p99_latency_s"]
        assert report.config["serve"]["max_batch"] == 8
        assert [t["name"] for t in report.config["tenants"]] == [
            "tenant-0", "tenant-1", "tenant-2",
        ]
        assert report.render()

    def test_latency_quantiles_interpolate(self, make_service, make_trace):
        service = make_service(serve_config=TINY)
        report = service.serve(
            make_trace([("tenant-0", float(i), i) for i in range(10)])
        )
        latencies = sorted(r.latency_s for r in report.responses)
        assert report.latency_quantile(0.0) == pytest.approx(latencies[0])
        assert report.latency_quantile(1.0) == pytest.approx(latencies[-1])
        mid = report.latency_quantile(0.5)
        assert latencies[0] <= mid <= latencies[-1]
