"""Tests for repro.llm.accounting."""

import pytest

from repro.llm.accounting import (
    UsageLedger,
    completion_tokens,
    meter_response,
    request_prompt_tokens,
)
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.profiles import get_profile


@pytest.fixture()
def request_():
    return CompletionRequest(
        messages=(ChatMessage(role="system", content="You are helpful."),
                  ChatMessage(role="user", content="Question 1: hello?")),
        model="gpt-3.5",
    )


class TestMetering:
    def test_prompt_tokens_positive(self, request_):
        assert request_prompt_tokens(request_) > 5

    def test_meter_response_fills_usage_and_latency(self, request_):
        profile = get_profile("gpt-3.5")
        response = meter_response(profile, request_, "Answer 1: hi")
        assert response.usage.prompt_tokens == request_prompt_tokens(request_)
        assert response.usage.completion_tokens == completion_tokens("Answer 1: hi")
        assert response.latency_s > profile.latency.base_s


class TestUsageLedger:
    def test_accumulation(self, request_):
        profile = get_profile("gpt-3.5")
        ledger = UsageLedger()
        for __ in range(3):
            response = meter_response(profile, request_, "Answer 1: hi")
            ledger.record(request_, response)
        assert ledger.n_requests == 3
        assert ledger.total_tokens == 3 * (
            request_prompt_tokens(request_) + completion_tokens("Answer 1: hi")
        )
        assert ledger.total_cost_usd > 0
        assert ledger.total_hours > 0

    def test_clear(self, request_):
        profile = get_profile("gpt-3.5")
        ledger = UsageLedger()
        ledger.record(request_, meter_response(profile, request_, "x"))
        ledger.clear()
        assert ledger.n_requests == 0

    def test_cost_uses_model_prices(self, request_):
        ledger = UsageLedger()
        gpt4_request = CompletionRequest(messages=request_.messages, model="gpt-4")
        cheap = meter_response(get_profile("gpt-3.5"), request_, "x")
        pricey = meter_response(get_profile("gpt-4"), gpt4_request, "x")
        a = ledger.record(request_, cheap)
        b = ledger.record(gpt4_request, pricey)
        assert b.cost_usd > a.cost_usd
