"""Tests for repro.llm.cache."""

import pytest

from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.cache import CachingClient, request_key
from repro.llm.simulated import SimulatedLLM


def _request(text='Question 1: Record is [a: "1"]. What is the b?'):
    return CompletionRequest(
        messages=(
            ChatMessage(
                role="system",
                content='You are a database engineer.\nYou are requested to '
                        'infer the value of the "b" attribute based on the '
                        'values of other attributes.\nMUST answer each '
                        'question in one line. You ONLY give the value of '
                        'the "b" attribute.',
            ),
            ChatMessage(role="user", content=text),
        ),
        model="gpt-3.5",
    )


class TestCachingClient:
    def test_hit_returns_same_text_zero_latency(self):
        client = CachingClient(SimulatedLLM("gpt-3.5"))
        first = client.complete(_request())
        second = client.complete(_request())
        assert second.text == first.text
        assert second.latency_s == 0.0
        assert client.hits == 1 and client.misses == 1

    def test_different_requests_miss(self):
        client = CachingClient(SimulatedLLM("gpt-3.5"))
        client.complete(_request())
        client.complete(_request('Question 1: Record is [a: "2"]. What is the b?'))
        assert client.misses == 2

    def test_lru_eviction(self):
        client = CachingClient(SimulatedLLM("gpt-3.5"), max_entries=1)
        client.complete(_request())
        client.complete(_request('Question 1: Record is [a: "2"]. What is the b?'))
        client.complete(_request())  # evicted -> miss again
        assert client.misses == 3

    def test_hit_rate(self):
        client = CachingClient(SimulatedLLM("gpt-3.5"))
        assert client.hit_rate == 0.0
        client.complete(_request())
        client.complete(_request())
        assert client.hit_rate == 0.5

    def test_clear(self):
        client = CachingClient(SimulatedLLM("gpt-3.5"))
        client.complete(_request())
        client.clear()
        client.complete(_request())
        assert client.misses == 1

    def test_key_includes_temperature(self):
        a = _request()
        b = CompletionRequest(messages=a.messages, model="gpt-3.5",
                              temperature=1.0)
        assert request_key(a) != request_key(b)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CachingClient(SimulatedLLM("gpt-3.5"), max_entries=0)
