"""The reproduction's central integrity property: no ground-truth leakage.

The simulated LLM must answer from the prompt text plus its own knowledge
base — never from instance labels.  These tests attack that property from
several angles: output invariance under label flips, absence of label
objects in the solver call graph, and honest failure when evidence is
removed from the prompt.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.feature_selection import FeatureSelection, select_features
from repro.core.parsing import parse_batch_answers
from repro.core.prompts import PromptBuilder
from repro.data.instances import EMInstance, Task
from repro.data.records import RecordPair
from repro.llm.base import CompletionRequest
from repro.llm.simulated import SimulatedLLM


class TestLabelInvariance:
    def test_em_answers_ignore_labels(self, beer_dataset):
        """Flipping every label must not change a single answer."""
        instances = list(beer_dataset.instances[:8])
        flipped = [
            EMInstance(pair=RecordPair(i.pair.left, i.pair.right),
                       label=not i.label, instance_id=i.instance_id)
            for i in instances
        ]
        builder = PromptBuilder(Task.ENTITY_MATCHING, PipelineConfig())
        request_a = CompletionRequest(
            messages=builder.build(instances).messages, model="gpt-4"
        )
        request_b = CompletionRequest(
            messages=builder.build(flipped).messages, model="gpt-4"
        )
        # Labels are not part of the prompt, so the prompts are identical…
        assert request_a.messages == request_b.messages
        # …and (fresh clients, same call sequence) so are the answers.
        a = SimulatedLLM("gpt-4", seed=0).complete(request_a).text
        b = SimulatedLLM("gpt-4", seed=0).complete(request_b).text
        assert a == b

    def test_di_truth_not_in_prompt(self, restaurant_dataset):
        builder = PromptBuilder(Task.DATA_IMPUTATION, PipelineConfig(),
                                target_attribute="city")
        instances = list(restaurant_dataset.instances[:5])
        prompt = builder.build(instances)
        text = "\n".join(m.content for m in prompt.messages)
        for instance in instances:
            # The held-out city name must not appear anywhere in the prompt
            # (the phone/area-code *evidence* is fine; the answer is not).
            assert f'city: "{instance.true_value}"' not in text


class TestEvidenceDependence:
    def test_removing_evidence_breaks_imputation(self, restaurant_dataset):
        """The model is only as good as the prompt: strip the evidence
        attributes and accuracy must collapse to near-guessing."""
        client = SimulatedLLM("gpt-4")
        builder = PromptBuilder(Task.DATA_IMPUTATION, PipelineConfig(),
                                target_attribute="city")
        instances = list(restaurant_dataset.instances[:20])

        prompt = builder.build(instances)
        response = client.complete(
            CompletionRequest(messages=prompt.messages, model="gpt-4")
        )
        full = parse_batch_answers(response.text, Task.DATA_IMPUTATION, 20)

        # Keep only the useless attributes (name, cuisine type).
        blinded = [
            select_features(i, FeatureSelection(keep=("name", "type")))
            for i in instances
        ]
        blind_prompt = builder.build(blinded)
        blind_response = client.complete(
            CompletionRequest(messages=blind_prompt.messages, model="gpt-4")
        )
        blind = parse_batch_answers(blind_response.text, Task.DATA_IMPUTATION, 20)

        truths = [i.true_value for i in instances]
        full_correct = sum(1 for a, t in zip(full, truths) if a == t)
        blind_correct = sum(1 for a, t in zip(blind, truths) if a == t)
        assert full_correct >= 16
        assert blind_correct <= 6

    def test_ed_typo_detection_requires_the_typo(self, hospital_dataset):
        """Restoring the clean value in the prompt must flip the verdict
        for values the model flags as typos."""
        client = SimulatedLLM("gpt-4")
        positives = [
            i for i in hospital_dataset.instances
            if i.label and i.clean_value is not None
            and i.target_attribute in ("measurename", "condition", "city")
        ][:6]
        if not positives:
            pytest.skip("no suitable positives in this sample")
        builder = PromptBuilder(Task.ERROR_DETECTION, PipelineConfig(),
                                target_attribute=positives[0].target_attribute)
        same_target = [i for i in positives
                       if i.target_attribute == positives[0].target_attribute]
        dirty_prompt = builder.build(same_target)
        dirty = parse_batch_answers(
            client.complete(
                CompletionRequest(messages=dirty_prompt.messages, model="gpt-4")
            ).text,
            Task.ERROR_DETECTION,
            len(same_target),
        )
        # Repair the records and ask again.
        repaired = []
        for instance in same_target:
            record = instance.record.copy()
            record[instance.target_attribute] = instance.clean_value
            repaired.append(
                type(instance)(record=record,
                               target_attribute=instance.target_attribute,
                               label=False)
            )
        clean_prompt = builder.build(repaired)
        clean = parse_batch_answers(
            client.complete(
                CompletionRequest(messages=clean_prompt.messages, model="gpt-4")
            ).text,
            Task.ERROR_DETECTION,
            len(repaired),
        )
        assert sum(dirty) > sum(clean)


class TestStructuralIsolation:
    def test_solver_inputs_carry_no_labels(self, beer_dataset):
        """The parsed prompt structure has no label field at all."""
        from repro.llm.promptparse import parse_prompt

        builder = PromptBuilder(Task.ENTITY_MATCHING, PipelineConfig())
        prompt = builder.build(list(beer_dataset.instances[:3]))
        parsed = parse_prompt(
            CompletionRequest(messages=prompt.messages, model="gpt-4")
        )
        for question in parsed.questions:
            assert not hasattr(question, "label")
