"""Tests for the DI data-type hint (paper Section 3.1)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.parsing import parse_batch_answers
from repro.core.prompts import PromptBuilder
from repro.data.instances import DIInstance, Task
from repro.data.records import Record
from repro.data.schema import AttrType, Schema
from repro.llm.base import CompletionRequest
from repro.llm.simulated import SimulatedLLM


@pytest.fixture()
def hours_instances():
    """Adult-style records with hoursperweek blanked for imputation."""
    schema = Schema.from_names(
        "adult", ["age", "occupation", "hoursperweek"],
        types={"age": AttrType.NUMERIC, "hoursperweek": AttrType.NUMERIC},
    )
    instances = []
    for i, occupation in enumerate(["sales", "exec-managerial", "tech-support"]):
        record = Record(
            schema=schema,
            values={"age": 30 + i, "occupation": occupation,
                    "hoursperweek": None},
        )
        instances.append(
            DIInstance(record=record, target_attribute="hoursperweek",
                       true_value="40", instance_id=f"h{i}")
        )
    return instances


def _answers(instances, type_hint):
    config = PipelineConfig(
        model="gpt-4", fewshot=0, type_hint=type_hint,
    )
    builder = PromptBuilder(Task.DATA_IMPUTATION, config,
                            target_attribute="hoursperweek")
    prompt = builder.build(instances)
    client = SimulatedLLM("gpt-4")
    response = client.complete(
        CompletionRequest(messages=prompt.messages, model="gpt-4")
    )
    return parse_batch_answers(response.text, Task.DATA_IMPUTATION,
                               len(instances))


class TestTypeHint:
    def test_hint_appears_in_prompt(self, hours_instances):
        hint = 'The "hoursperweek" attribute can be a range of integers.'
        config = PipelineConfig(model="gpt-4", type_hint=hint)
        builder = PromptBuilder(Task.DATA_IMPUTATION, config,
                                target_attribute="hoursperweek")
        prompt = builder.build(hours_instances)
        assert hint in prompt.messages[0].content

    def test_range_hint_changes_answer_shape(self, hours_instances):
        """Paper: 'the LLM will respond with a range instead of a number'."""
        hint = 'The "hoursperweek" attribute can be a range of integers.'
        with_hint = _answers(hours_instances, hint)
        without = _answers(hours_instances, None)
        # Numeric answers under the hint come back as "lo-hi" ranges.
        numeric_with = [a for a in with_hint
                        if any(ch.isdigit() for ch in str(a))]
        for answer in numeric_with:
            assert "-" in str(answer)
        numeric_without = [a for a in without
                           if any(ch.isdigit() for ch in str(a))]
        for answer in numeric_without:
            assert "-" not in str(answer)

    def test_non_numeric_answers_unaffected(self, restaurant_dataset):
        hint = 'The "city" attribute can be a range of integers.'  # nonsense
        config = PipelineConfig(model="gpt-4", fewshot=4, type_hint=hint)
        builder = PromptBuilder(Task.DATA_IMPUTATION, config,
                                target_attribute="city")
        instances = list(restaurant_dataset.instances[:3])
        prompt = builder.build(
            instances, fewshot_examples=restaurant_dataset.sample_fewshot(4)
        )
        client = SimulatedLLM("gpt-4")
        response = client.complete(
            CompletionRequest(messages=prompt.messages, model="gpt-4")
        )
        answers = parse_batch_answers(response.text, Task.DATA_IMPUTATION, 3)
        # City names pass through untouched — no fake ranges.
        for answer in answers:
            assert not str(answer).replace("-", "").isdigit()
