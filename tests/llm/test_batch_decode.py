"""Vectorized batch decode: bit-identical to the scalar reference.

The vectorized mode may only ever change host-CPU cost.  Everything a
caller can observe — reply text, token usage, latency, retry resampling —
must match the scalar path exactly, because the scalar path is what every
golden snapshot and journal digest in the repo was recorded against.
"""

import pytest

from repro.errors import LLMError
from repro.llm.simulated import SimulatedLLM
from repro.shard.bench import build_decode_requests, decode_microbench


@pytest.fixture(scope="module")
def requests():
    # Real pipeline prompts (shared system + few-shot prefix, one question
    # each) across two datasets so ED and EM solvers both get exercised.
    return (
        build_decode_requests(40, dataset="adult")
        + build_decode_requests(40, dataset="beer")
    )


class TestVectorizedEquivalence:
    def test_replies_usage_and_latency_match_scalar(self, requests):
        scalar = SimulatedLLM("gpt-3.5", seed=0, decode="scalar")
        vectorized = SimulatedLLM("gpt-3.5", seed=0, decode="vectorized")
        for reference, candidate in zip(
            scalar.complete_batch(requests),
            vectorized.complete_batch(requests),
        ):
            assert candidate.text == reference.text
            assert candidate.usage == reference.usage
            assert candidate.latency_s == reference.latency_s

    def test_batch_equals_sequential_calls(self, requests):
        batched = SimulatedLLM("gpt-3.5", seed=0, decode="vectorized")
        sequential = SimulatedLLM("gpt-3.5", seed=0, decode="vectorized")
        batch = batched.complete_batch(requests)
        singles = [sequential.complete(request) for request in requests]
        assert [r.text for r in batch] == [r.text for r in singles]

    def test_retries_still_resample(self, requests):
        # The call counter must advance identically in both modes: a
        # repeated prompt is a retry and may legitimately change its reply.
        client = SimulatedLLM("gpt-3.5", seed=0, decode="vectorized")
        repeated = [requests[0]] * 6
        replies = [r.text for r in client.complete_batch(repeated)]
        scalar = SimulatedLLM("gpt-3.5", seed=0, decode="scalar")
        assert replies == [
            scalar.complete(request).text for request in repeated
        ]


class TestMemoBehaviour:
    def test_scalar_mode_has_no_memo(self):
        assert SimulatedLLM("gpt-3.5", decode="scalar").memo is None

    def test_shared_prefixes_hit_the_memo(self, requests):
        client = SimulatedLLM("gpt-3.5", seed=0, decode="vectorized")
        client.complete_batch(requests)
        memo = client.memo
        assert memo.hits > memo.misses
        assert memo.hits > 0

    def test_unknown_decode_mode_is_rejected(self):
        with pytest.raises(LLMError, match="decode"):
            SimulatedLLM("gpt-3.5", decode="turbo")


class TestMicrobench:
    def test_microbench_reports_identity_and_positive_speedup(self):
        result = decode_microbench(n=60)
        assert result["identical"]
        assert result["speedup"] > 0
        assert result["memo"]["hits"] > 0
