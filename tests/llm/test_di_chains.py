"""Unit tests for the DI solver's inference chains (repair support)."""

import random

import pytest

from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import get_profile
from repro.llm.solvers.di import DISolver


@pytest.fixture()
def solver():
    knowledge = KnowledgeBase("oracle", coverage=1.0, concept_coverage=1.0)
    return DISolver(get_profile("gpt-4"), knowledge, random.Random(0), 0.65)


class TestInferenceChains:
    def test_state_from_stateavg(self, solver):
        value, reason = solver._infer(
            {"stateavg": "ga_ami-1", "city": None}, "state", careful=True
        )
        assert value == "ga"
        assert "ga" in reason

    def test_state_from_stateavg_rejects_illegal_prefix(self, solver):
        value, __ = solver._infer(
            {"stateavg": "zz_ami-1"}, "state", careful=True
        )
        assert value is None

    def test_condition_from_measurecode(self, solver):
        for code, condition in (("ami-2", "heart attack"),
                                ("hf-1", "heart failure"),
                                ("pn-6", "pneumonia"),
                                ("scip-inf-1", "surgical infection prevention")):
            value, __ = solver._infer(
                {"measurecode": code}, "condition", careful=True
            )
            assert value == condition

    def test_measurename_from_code(self, solver):
        value, __ = solver._infer(
            {"measurecode": "ami-1"}, "measurename", careful=True
        )
        assert value == "aspirin at arrival"

    def test_educationnum_roundtrip(self, solver):
        number, __ = solver._infer(
            {"education": "bachelors"}, "educationnum", careful=True
        )
        assert number == "13"
        name, __ = solver._infer(
            {"educationnum": "13"}, "education", careful=True
        )
        assert name == "bachelors"

    def test_careful_path_prefers_agreement(self, solver):
        # Phone and zip agree -> combined reasoning mentions both chains.
        value, reason = solver._infer(
            {"phone": "617-555-0000", "zipcode": "02134"}, "city",
            careful=True,
        )
        assert value == "boston"

    def test_shallow_path_stops_at_first_chain(self, solver):
        value, __ = solver._infer(
            {"phone": "617-555-0000", "zipcode": "90001"}, "city",
            careful=False,
        )
        assert value == "boston"  # phone chain runs first
