"""Tests for repro.llm.simulated."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.parsing import parse_batch_answers
from repro.core.prompts import PromptBuilder
from repro.data.instances import Task
from repro.errors import ContextWindowExceededError, LLMError
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.simulated import SimulatedLLM


def _di_prompt(dataset, n=3, fewshot=0, reasoning=True):
    builder = PromptBuilder(
        Task.DATA_IMPUTATION,
        PipelineConfig(reasoning=reasoning),
        target_attribute="city",
    )
    examples = dataset.sample_fewshot(fewshot) if fewshot else None
    return builder.build(list(dataset.instances[:n]), fewshot_examples=examples)


class TestComplete:
    def test_answer_format_followed(self, restaurant_dataset, gpt4):
        prompt = _di_prompt(restaurant_dataset, n=3, fewshot=5)
        response = gpt4.complete(
            CompletionRequest(messages=prompt.messages, model="gpt-4")
        )
        answers = parse_batch_answers(response.text, Task.DATA_IMPUTATION, 3)
        assert len(answers) == 3

    def test_reasoning_produces_reason_lines(self, restaurant_dataset, gpt4):
        prompt = _di_prompt(restaurant_dataset, n=1, fewshot=5, reasoning=True)
        response = gpt4.complete(
            CompletionRequest(messages=prompt.messages, model="gpt-4")
        )
        assert len(response.text.splitlines()) >= 2

    def test_usage_metered(self, restaurant_dataset, gpt4):
        prompt = _di_prompt(restaurant_dataset, n=2)
        response = gpt4.complete(
            CompletionRequest(messages=prompt.messages, model="gpt-4")
        )
        assert response.usage.prompt_tokens > 50
        assert response.usage.completion_tokens > 0
        assert response.latency_s > 0

    def test_wrong_model_rejected(self, restaurant_dataset, gpt4):
        prompt = _di_prompt(restaurant_dataset)
        with pytest.raises(LLMError):
            gpt4.complete(
                CompletionRequest(messages=prompt.messages, model="gpt-3.5")
            )

    def test_context_window_enforced(self, restaurant_dataset):
        client = SimulatedLLM("vicuna-13b")
        big_text = "Question 1: " + "x " * 4000
        request = CompletionRequest(
            messages=(ChatMessage(role="system", content="You are requested "
                                  "to decide whether two records refer to "
                                  "the same entity."),
                      ChatMessage(role="user", content=big_text)),
            model="vicuna-13b",
        )
        with pytest.raises(ContextWindowExceededError):
            client.complete(request)

    def test_unparseable_prompt_raises(self, gpt4):
        request = CompletionRequest(
            messages=(ChatMessage(role="system", content="just chat"),
                      ChatMessage(role="user", content="hello")),
            model="gpt-4",
        )
        with pytest.raises(LLMError):
            gpt4.complete(request)


class TestDeterminism:
    def test_same_call_sequence_same_output(self, restaurant_dataset):
        prompt = _di_prompt(restaurant_dataset, n=3, fewshot=5)
        request = CompletionRequest(messages=prompt.messages, model="gpt-3.5")
        a = SimulatedLLM("gpt-3.5", seed=1).complete(request).text
        b = SimulatedLLM("gpt-3.5", seed=1).complete(request).text
        assert a == b

    def test_retry_resamples(self, restaurant_dataset):
        prompt = _di_prompt(restaurant_dataset, n=3, fewshot=5)
        request = CompletionRequest(messages=prompt.messages, model="vicuna-13b")
        # vicuna is noisy: two successive identical calls within one client
        # may differ (per-call nonce), unlike two fresh clients.
        client = SimulatedLLM("vicuna-13b", seed=1)
        texts = set()
        for __ in range(4):
            try:
                texts.add(client.complete(request).text)
            except ContextWindowExceededError:
                pytest.skip("prompt exceeds vicuna window at this size")
        assert len(texts) >= 1  # resampling permitted, determinism per sequence

    def test_seed_changes_behavior(self, restaurant_dataset):
        prompt = _di_prompt(restaurant_dataset, n=5, fewshot=0)
        request = CompletionRequest(
            messages=prompt.messages, model="gpt-3.5", temperature=1.5
        )
        a = SimulatedLLM("gpt-3.5", seed=1).complete(request).text
        b = SimulatedLLM("gpt-3.5", seed=2).complete(request).text
        # High temperature + different seeds: outputs usually differ.
        # (Equality is possible but means the seed is being ignored if it
        # happens for this many instances.)
        assert a != b or len(a) > 0


class TestCompetence:
    def test_gpt4_imputes_cities_from_area_codes(self, restaurant_dataset, gpt4):
        prompt = _di_prompt(restaurant_dataset, n=10, fewshot=8)
        response = gpt4.complete(
            CompletionRequest(messages=prompt.messages, model="gpt-4",
                              temperature=0.65)
        )
        answers = parse_batch_answers(response.text, Task.DATA_IMPUTATION, 10)
        truths = [i.true_value for i in restaurant_dataset.instances[:10]]
        correct = sum(1 for a, t in zip(answers, truths) if a == t)
        assert correct >= 8

    def test_vicuna_rambles_on_ed(self, adult_dataset):
        client = SimulatedLLM("vicuna-13b")
        target = adult_dataset.instances[0].target_attribute
        instances = [i for i in adult_dataset.instances
                     if i.target_attribute == target][:2]
        builder = PromptBuilder(Task.ERROR_DETECTION,
                                PipelineConfig(reasoning=False),
                                target_attribute=target)
        prompt = builder.build(instances)
        request = CompletionRequest(messages=prompt.messages,
                                    model="vicuna-13b", temperature=0.2)
        response = client.complete(request)
        # With ED fidelity ~0.1, a contract-following reply for both
        # questions is very unlikely; expect at least one garbled answer.
        from repro.core.parsing import parse_batch_answers_lenient

        salvaged = parse_batch_answers_lenient(
            response.text, Task.ERROR_DETECTION, 2
        )
        assert None in salvaged
