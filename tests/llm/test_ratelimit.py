"""Tests for repro.llm.ratelimit."""

import pytest

from repro.errors import RateLimitError
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.ratelimit import (
    LaneClock,
    RateLimit,
    RateLimiter,
    RetryingClient,
    SimulatedClock,
)
from repro.llm.simulated import SimulatedLLM


def _request(i=1):
    return CompletionRequest(
        messages=(
            ChatMessage(
                role="system",
                content='You are a database engineer.\nYou are requested to '
                        'infer the value of the "b" attribute based on the '
                        'values of other attributes.\nMUST answer each '
                        'question in one line. You ONLY give the value of '
                        'the "b" attribute.',
            ),
            ChatMessage(
                role="user",
                content=f'Question 1: Record is [a: "{i}"]. What is the b?',
            ),
        ),
        model="gpt-3.5",
    )


class TestSimulatedClock:
    def test_advances(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestLaneClock:
    def test_needs_a_lane(self):
        with pytest.raises(ValueError):
            LaneClock(0)

    def test_occupy_advances_one_lane(self):
        clock = LaneClock(2)
        finished = clock.occupy(0, 0.0, 10.0)
        assert finished == 10.0
        assert clock.available_at(0) == 10.0
        assert clock.available_at(1) == 0.0
        assert clock.makespan == 10.0
        assert clock.min_available == 0.0

    def test_earliest_lane_ties_break_low(self):
        clock = LaneClock(3)
        assert clock.earliest_lane() == 0
        clock.occupy(0, 0.0, 5.0)
        assert clock.earliest_lane() == 1

    def test_earliest_lane_honors_floors(self):
        clock = LaneClock(2)
        clock.occupy(0, 0.0, 5.0)
        # Lane 1 is free but held closed until t=100 (e.g. a breaker).
        assert clock.earliest_lane(not_before=[0.0, 100.0]) == 0

    def test_no_time_travel(self):
        clock = LaneClock(1)
        clock.occupy(0, 0.0, 10.0)
        with pytest.raises(ValueError):
            clock.occupy(0, 5.0, 1.0)
        with pytest.raises(ValueError):
            clock.occupy(0, 20.0, -1.0)

    def test_idle_gap_not_busy(self):
        clock = LaneClock(1)
        clock.occupy(0, 50.0, 10.0)
        assert clock.busy_seconds(0) == 10.0
        assert clock.makespan == 60.0
        assert clock.utilization(0) == pytest.approx(10.0 / 60.0)

    def test_idle_until_never_rewinds(self):
        clock = LaneClock(1)
        clock.occupy(0, 0.0, 10.0)
        clock.idle_until(0, 5.0)
        assert clock.available_at(0) == 10.0
        clock.idle_until(0, 30.0)
        assert clock.available_at(0) == 30.0


class TestRateLimiter:
    def test_request_budget(self):
        clock = SimulatedClock()
        limiter = RateLimiter(RateLimit(2, 10_000), clock)
        limiter.check(10)
        limiter.check(10)
        with pytest.raises(RateLimitError):
            limiter.check(10)

    def test_token_budget(self):
        clock = SimulatedClock()
        limiter = RateLimiter(RateLimit(100, 50), clock)
        limiter.check(40)
        with pytest.raises(RateLimitError):
            limiter.check(40)

    def test_window_slides(self):
        clock = SimulatedClock()
        limiter = RateLimiter(RateLimit(1, 10_000), clock)
        limiter.check(1)
        clock.advance(61.0)
        limiter.check(1)  # old event expired

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimit(0, 10)

    def test_explicit_now_without_clock(self):
        limiter = RateLimiter(RateLimit(1, 10_000))
        limiter.check(1, now=0.0)
        with pytest.raises(RateLimitError):
            limiter.check(1, now=30.0)
        limiter.check(1, now=61.0)

    def test_needs_clock_or_now(self):
        with pytest.raises(ValueError):
            RateLimiter(RateLimit(1, 10)).check(1)

    def test_budget_shared_across_lane_times(self):
        # Two lanes at different virtual times share one window: the
        # budget is per account, not per lane.
        limiter = RateLimiter(RateLimit(2, 10_000))
        limiter.check(1, now=0.0)    # lane A
        limiter.check(1, now=10.0)   # lane B
        with pytest.raises(RateLimitError) as excinfo:
            limiter.check(1, now=20.0)  # either lane: window holds 2
        # Window clears when the oldest event expires at t=60.
        assert excinfo.value.retry_after == pytest.approx(40.0)

    def test_future_events_invisible_to_lagging_lane(self):
        limiter = RateLimiter(RateLimit(1, 10_000))
        limiter.check(1, now=100.0)  # a lane far ahead
        # A lagging lane checks at t=20; the t=100 event is in its future.
        limiter.check(1, now=20.0, floor=20.0)

    def test_floor_preserves_events_for_lagging_lanes(self):
        limiter = RateLimiter(RateLimit(1, 10_000))
        limiter.check(1, now=10.0)
        # A lane far ahead checks (and would prune t<=40 without a floor).
        limiter.check(1, now=100.0, floor=15.0)
        # The lagging lane still sees the t=10 event in its window.
        with pytest.raises(RateLimitError):
            limiter.check(1, now=20.0, floor=15.0)


class TestRetryingClient:
    def test_waits_out_rate_limit(self):
        client = RetryingClient(
            SimulatedLLM("gpt-3.5"), RateLimit(1, 10_000)
        )
        client.complete(_request(1))
        before = client.clock.now
        client.complete(_request(2))  # forced to wait ~60s of virtual time
        assert client.clock.now - before >= 59.0
        assert client.n_rate_limit_hits >= 1

    def test_clock_tracks_latency(self):
        client = RetryingClient(
            SimulatedLLM("gpt-3.5"), RateLimit(100, 10**7)
        )
        response = client.complete(_request())
        assert client.clock.now == pytest.approx(response.latency_s)

    def test_exhausted_retries_raise(self):
        clock = SimulatedClock()
        client = RetryingClient(
            SimulatedLLM("gpt-3.5"), RateLimit(1, 10), clock=clock,
            max_retries=0,
        )
        with pytest.raises(RateLimitError):
            client.complete(_request())  # needs more tokens than the budget
