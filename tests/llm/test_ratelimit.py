"""Tests for repro.llm.ratelimit."""

import pytest

from repro.errors import RateLimitError
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.ratelimit import (
    RateLimit,
    RateLimiter,
    RetryingClient,
    SimulatedClock,
)
from repro.llm.simulated import SimulatedLLM


def _request(i=1):
    return CompletionRequest(
        messages=(
            ChatMessage(
                role="system",
                content='You are a database engineer.\nYou are requested to '
                        'infer the value of the "b" attribute based on the '
                        'values of other attributes.\nMUST answer each '
                        'question in one line. You ONLY give the value of '
                        'the "b" attribute.',
            ),
            ChatMessage(
                role="user",
                content=f'Question 1: Record is [a: "{i}"]. What is the b?',
            ),
        ),
        model="gpt-3.5",
    )


class TestSimulatedClock:
    def test_advances(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestRateLimiter:
    def test_request_budget(self):
        clock = SimulatedClock()
        limiter = RateLimiter(RateLimit(2, 10_000), clock)
        limiter.check(10)
        limiter.check(10)
        with pytest.raises(RateLimitError):
            limiter.check(10)

    def test_token_budget(self):
        clock = SimulatedClock()
        limiter = RateLimiter(RateLimit(100, 50), clock)
        limiter.check(40)
        with pytest.raises(RateLimitError):
            limiter.check(40)

    def test_window_slides(self):
        clock = SimulatedClock()
        limiter = RateLimiter(RateLimit(1, 10_000), clock)
        limiter.check(1)
        clock.advance(61.0)
        limiter.check(1)  # old event expired

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimit(0, 10)


class TestRetryingClient:
    def test_waits_out_rate_limit(self):
        client = RetryingClient(
            SimulatedLLM("gpt-3.5"), RateLimit(1, 10_000)
        )
        client.complete(_request(1))
        before = client.clock.now
        client.complete(_request(2))  # forced to wait ~60s of virtual time
        assert client.clock.now - before >= 59.0
        assert client.n_rate_limit_hits >= 1

    def test_clock_tracks_latency(self):
        client = RetryingClient(
            SimulatedLLM("gpt-3.5"), RateLimit(100, 10**7)
        )
        response = client.complete(_request())
        assert client.clock.now == pytest.approx(response.latency_s)

    def test_exhausted_retries_raise(self):
        clock = SimulatedClock()
        client = RetryingClient(
            SimulatedLLM("gpt-3.5"), RateLimit(1, 10), clock=clock,
            max_retries=0,
        )
        with pytest.raises(RateLimitError):
            client.complete(_request())  # needs more tokens than the budget
