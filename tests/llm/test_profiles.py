"""Tests for repro.llm.profiles."""

import pytest

from repro.data.instances import Task
from repro.errors import UnknownModelError
from repro.llm.profiles import LatencyModel, ModelProfile, get_profile, list_profiles


class TestRegistry:
    def test_four_models(self):
        assert set(list_profiles()) == {"gpt-3.5", "gpt-4", "gpt-3", "vicuna-13b"}

    def test_unknown_model(self):
        with pytest.raises(UnknownModelError):
            get_profile("gpt-5")


class TestPaperSettings:
    def test_temperatures(self):
        # Section 4.1: 0.75 / 0.65 / 0.2
        assert get_profile("gpt-3.5").default_temperature == 0.75
        assert get_profile("gpt-4").default_temperature == 0.65
        assert get_profile("vicuna-13b").default_temperature == 0.2

    def test_gpt35_pricing_matches_table3(self):
        # 4.07M tokens -> $8.14 requires a flat $0.002/1K.
        profile = get_profile("gpt-3.5")
        assert profile.cost_usd(4_070_000, 0) == pytest.approx(8.14)

    def test_capability_ordering(self):
        gpt4 = get_profile("gpt-4")
        gpt35 = get_profile("gpt-3.5")
        vicuna = get_profile("vicuna-13b")
        assert gpt4.knowledge_coverage > gpt35.knowledge_coverage > vicuna.knowledge_coverage
        assert gpt4.decision_noise < gpt35.decision_noise < vicuna.decision_noise

    def test_vicuna_weak_format_fidelity_outside_em(self):
        vicuna = get_profile("vicuna-13b")
        assert vicuna.format_fidelity[Task.ERROR_DETECTION] < 0.5
        assert vicuna.format_fidelity[Task.ENTITY_MATCHING] > 0.5


class TestFidelityDecay:
    def test_long_questions_decay(self):
        vicuna = get_profile("vicuna-13b")
        short = vicuna.fidelity_for(Task.ENTITY_MATCHING, 30)
        long = vicuna.fidelity_for(Task.ENTITY_MATCHING, 400)
        assert long < short

    def test_within_tolerance_no_decay(self):
        gpt4 = get_profile("gpt-4")
        assert gpt4.fidelity_for(Task.ENTITY_MATCHING, 100) == pytest.approx(
            gpt4.format_fidelity[Task.ENTITY_MATCHING]
        )


class TestValidation:
    def test_bad_knob(self):
        with pytest.raises(ValueError):
            ModelProfile(
                name="x", context_window=10,
                price_prompt_per_1k=0, price_completion_per_1k=0,
                latency=LatencyModel(1, 0, 0),
                knowledge_coverage=1.5, concept_coverage=0.5,
                reasoning_strength=0.5, zero_shot_calibration=0.5,
                decision_noise=0.1, interference_rate=0.1,
            )

    def test_latency_model(self):
        latency = LatencyModel(base_s=1.0, per_prompt_token_s=0.001,
                               per_completion_token_s=0.01)
        assert latency.latency(1000, 100) == pytest.approx(3.0)
