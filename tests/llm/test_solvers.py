"""Unit tests of the per-task solvers (direct, below the chat layer)."""

import random

import pytest

from repro.llm.knowledge import KnowledgeBase
from repro.llm.profiles import get_profile
from repro.llm.solvers.common import BatchInterference, ThresholdFit, default_threshold
from repro.llm.solvers.di import DISolver
from repro.llm.solvers.ed import EDSolver
from repro.llm.solvers.em import (
    EMSolver,
    _attribute_similarity,
    _identity_code_tokens,
    pair_score,
)
from repro.llm.solvers.sm import SMSolver, _antonym_clash


@pytest.fixture()
def oracle_kb():
    return KnowledgeBase("oracle", coverage=1.0, concept_coverage=1.0)


@pytest.fixture()
def ed_solver(oracle_kb):
    return EDSolver(get_profile("gpt-4"), oracle_kb, random.Random(0), 0.65)


class TestThresholdFit:
    def test_separable_max_margin(self):
        fit = ThresholdFit.from_examples(
            scores=[0.1, 0.2, 0.8, 0.9], labels=[False, False, True, True],
            default=0.5,
        )
        assert fit.fitted
        assert 0.45 < fit.threshold < 0.55  # widest gap is 0.2..0.8

    def test_one_class_falls_back(self):
        fit = ThresholdFit.from_examples([0.5, 0.6], [True, True], default=0.42)
        assert not fit.fitted
        assert fit.threshold == 0.42

    def test_interleaved_maximizes_accuracy(self):
        fit = ThresholdFit.from_examples(
            scores=[0.1, 0.4, 0.3, 0.9], labels=[False, False, True, True],
            default=0.5,
        )
        correct = sum(
            (s >= fit.threshold) == y
            for s, y in zip([0.1, 0.4, 0.3, 0.9], [False, False, True, True])
        )
        assert correct >= 3

    def test_default_threshold_interpolation(self):
        assert default_threshold(1.0, 0.0, 0.5) == 0.5
        assert default_threshold(0.6, 0.2, 1.0) == 0.6


class TestBatchInterference:
    def test_confident_answers_untouched(self):
        profile = get_profile("vicuna-13b")  # highest interference
        interference = BatchInterference(profile, random.Random(0))
        outcomes = [interference.adjust(True, margin=0.9) for __ in range(50)]
        assert all(outcomes)

    def test_dissimilar_questions_interfere_more(self):
        profile = get_profile("vicuna-13b")
        similar = ["alpha beta gamma"] * 400
        mixed = [f"totally unrelated {i} stuff {i*7}" for i in range(400)]
        flips_similar = flips_mixed = 0
        a = BatchInterference(profile, random.Random(1), questions=similar)
        b = BatchInterference(profile, random.Random(1), questions=mixed)
        for __ in range(400):
            if a.adjust(True, margin=0.01) != True:
                flips_similar += 1
        # Seed the history with alternating answers so "previous" differs.
        for i in range(400):
            if b.adjust(i % 2 == 0, margin=0.01) != (i % 2 == 0):
                flips_mixed += 1
        assert flips_mixed >= flips_similar


class TestEDSolverEvidence:
    def test_clean_value_scores_low(self, ed_solver):
        fields = {"occupation": "sales", "age": "40"}
        assert ed_solver.evidence(fields, "occupation", careful=True) < 0.3

    def test_typo_scores_high(self, ed_solver):
        fields = {"occupation": "salxes"}
        assert ed_solver.evidence(fields, "occupation", careful=True) > 0.8

    def test_domain_violation_scores_high(self, ed_solver):
        fields = {"workclass": "sales"}  # an occupation, not a workclass
        assert ed_solver.evidence(fields, "workclass", careful=True) > 0.8

    def test_numeric_outlier(self, ed_solver):
        assert ed_solver.evidence({"age": "412"}, "age", careful=True) > 0.9
        assert ed_solver.evidence({"age": "41"}, "age", careful=True) < 0.3

    def test_education_consistency_careful_only(self, ed_solver):
        fields = {"education": "bachelors", "educationnum": "2"}
        careful = ed_solver.evidence(fields, "educationnum", careful=True)
        shallow = ed_solver.evidence(fields, "educationnum", careful=False)
        assert careful > 0.8
        assert shallow < 0.3

    def test_short_phone_flagged_careful(self, ed_solver):
        fields = {"phone": "123456789"}  # 9 digits
        assert ed_solver.evidence(fields, "phone", careful=True) > 0.8

    def test_stateavg_fault_attribution(self, ed_solver):
        # stateavg consistent with measurecode, but state itself corrupted:
        # the error is NOT in stateavg.
        fields = {"state": "gxa", "measurecode": "ami-1", "stateavg": "ga_ami-1"}
        assert ed_solver.evidence(fields, "stateavg", careful=True) < 0.3

    def test_missing_cell_not_an_error(self, ed_solver):
        assert ed_solver.evidence({"age": None}, "age", careful=True) == 0.0


class TestEMSimilarity:
    def test_phone_equality(self):
        assert _attribute_similarity("(404) 555-1234", "404.555.1234", False) == 1.0
        assert _attribute_similarity("404-555-1234", "404-555-9999", False) == 0.0

    def test_identifier_semantics(self):
        assert _attribute_similarity("x3319", "x3319", False) == 1.0
        assert _attribute_similarity("x3319", "x9339", False) == 0.05

    def test_year_asymmetry(self):
        same = _attribute_similarity("2004", "2004", False)
        near = _attribute_similarity("2004", "2005", False)
        far = _attribute_similarity("1998", "2004", False)
        assert same > near > far == 0.0
        assert same < 1.0  # agreement is weak evidence

    def test_quantity_closeness(self):
        assert _attribute_similarity("100", "105", False) > 0.9
        assert _attribute_similarity("100", "1000", False) < 0.2

    def test_duration_semantics(self):
        assert _attribute_similarity("3:45", "3:45", False) == 1.0
        assert _attribute_similarity("3:45", "4:02", False) == 0.2

    def test_abbreviation_expansion_careful_only(self):
        careful = _attribute_similarity("powers ferry rd.", "powers ferry road", True)
        shallow = _attribute_similarity("powers ferry rd.", "powers ferry road", False)
        assert careful == 1.0
        assert shallow < 1.0


class TestEMCodes:
    def test_codes_from_identity_field_only(self):
        record = {"title": "adobe studio 5.0", "price": "29.99"}
        codes = _identity_code_tokens(record)
        assert "50" in codes
        assert "2999" not in codes

    def test_canonicalization(self):
        a = _identity_code_tokens({"title": "thing 5.0"})
        b = _identity_code_tokens({"title": "thing 50"})
        assert a == b

    def test_pair_score_skips_missing(self):
        left = {"a": "x", "b": "y"}
        right = {"a": "x", "b": None}
        assert pair_score(left, right, None, False) == 1.0

    def test_pair_score_weights(self):
        left = {"a": "same", "b": "different"}
        right = {"a": "same", "b": "words"}
        favoring_a = pair_score(left, right, {"a": 1.0, "b": 0.01}, False)
        favoring_b = pair_score(left, right, {"a": 0.01, "b": 1.0}, False)
        assert favoring_a > favoring_b


class TestSMSolver:
    def test_antonym_clash(self):
        assert _antonym_clash("visit start date", "visit end date")
        assert not _antonym_clash("visit start date", "visit start time")
        assert not _antonym_clash("start end span", "start end window")

    def test_lexical_score_penalizes_antonyms(self, oracle_kb):
        solver = SMSolver(get_profile("gpt-4"), oracle_kb, random.Random(0), 0.65)
        clash = solver.lexical_score(
            {"name": "visit_start_date", "description": "date the visit began"},
            {"name": "visit_end_date", "description": "date the visit ended"},
        )
        align = solver.lexical_score(
            {"name": "visit_start_date", "description": "date the visit began"},
            {"name": "admission_date", "description": "date the visit began"},
        )
        assert clash < align


class TestDISolver:
    def test_city_chain(self, oracle_kb):
        solver = DISolver(get_profile("gpt-4"), oracle_kb, random.Random(0), 0.65)
        value, reason = solver._infer(
            {"phone": "770-933-0909", "addr": "1215 powers ferry rd."},
            "city", careful=True,
        )
        assert value == "marietta"
        assert "770" in reason

    def test_brand_chain(self, oracle_kb):
        solver = DISolver(get_profile("gpt-4"), oracle_kb, random.Random(0), 0.65)
        value, __ = solver._infer(
            {"name": "sony bravia tv kdl40", "description": "a tv"},
            "manufacturer", careful=True,
        )
        assert value == "sony"

    def test_no_evidence_returns_none(self, oracle_kb):
        solver = DISolver(get_profile("gpt-4"), oracle_kb, random.Random(0), 0.65)
        value, __ = solver._infer({"type": "thai"}, "city", careful=True)
        assert value is None
