"""Tests for repro.llm.base."""

import pytest

from repro.errors import LLMError
from repro.llm.base import ChatMessage, CompletionRequest, LLMClient, Usage
from repro.llm.simulated import SimulatedLLM


class TestChatMessage:
    def test_invalid_role(self):
        with pytest.raises(LLMError):
            ChatMessage(role="robot", content="x")

    def test_valid_roles(self):
        for role in ("system", "user", "assistant"):
            assert ChatMessage(role=role, content="x").role == role


class TestCompletionRequest:
    def test_needs_messages(self):
        with pytest.raises(LLMError):
            CompletionRequest(messages=(), model="gpt-3.5")

    def test_temperature_bounds(self):
        message = (ChatMessage(role="user", content="x"),)
        with pytest.raises(LLMError):
            CompletionRequest(messages=message, model="m", temperature=2.5)

    def test_max_tokens_positive(self):
        message = (ChatMessage(role="user", content="x"),)
        with pytest.raises(LLMError):
            CompletionRequest(messages=message, model="m", max_tokens=0)

    def test_transcript(self):
        request = CompletionRequest(
            messages=(ChatMessage(role="system", content="a"),
                      ChatMessage(role="user", content="b")),
            model="m",
        )
        assert request.transcript == [("system", "a"), ("user", "b")]


class TestUsage:
    def test_addition(self):
        total = Usage(1, 2) + Usage(10, 20)
        assert total.prompt_tokens == 11
        assert total.total_tokens == 33

    def test_negative_rejected(self):
        with pytest.raises(LLMError):
            Usage(-1, 0)


class TestProtocol:
    def test_simulated_llm_satisfies_protocol(self):
        assert isinstance(SimulatedLLM("gpt-3.5"), LLMClient)
