"""Tests for repro.llm.promptparse: the simulated model reading prompts.

Built prompts come from the real PromptBuilder, so these tests pin the
contract between the framework's template and the simulator's parser.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.prompts import PromptBuilder
from repro.data.instances import Task
from repro.errors import LLMError
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.promptparse import parse_prompt


def _request(prompt):
    return CompletionRequest(messages=prompt.messages, model="gpt-3.5")


class TestTaskDetection:
    def test_di(self, restaurant_dataset):
        builder = PromptBuilder(Task.DATA_IMPUTATION, PipelineConfig(),
                                target_attribute="city")
        prompt = builder.build(list(restaurant_dataset.instances[:2]))
        parsed = parse_prompt(_request(prompt))
        assert parsed.task is Task.DATA_IMPUTATION
        assert parsed.target_attribute == "city"
        assert parsed.reasoning

    def test_ed_confirm_flag(self, adult_dataset):
        instances = [i for i in adult_dataset.instances
                     if i.target_attribute == "age"][:2] or \
                    list(adult_dataset.instances[:1])
        target = instances[0].target_attribute
        builder = PromptBuilder(Task.ERROR_DETECTION, PipelineConfig(),
                                target_attribute=target)
        parsed = parse_prompt(_request(builder.build(instances)))
        assert parsed.task is Task.ERROR_DETECTION
        assert parsed.confirm_target

    def test_em_and_sm(self, beer_dataset, synthea_dataset):
        em = PromptBuilder(Task.ENTITY_MATCHING, PipelineConfig())
        sm = PromptBuilder(Task.SCHEMA_MATCHING, PipelineConfig())
        assert parse_prompt(
            _request(em.build(list(beer_dataset.instances[:1])))
        ).task is Task.ENTITY_MATCHING
        assert parse_prompt(
            _request(sm.build(list(synthea_dataset.instances[:1])))
        ).task is Task.SCHEMA_MATCHING

    def test_reasoning_off_detected(self, restaurant_dataset):
        builder = PromptBuilder(Task.DATA_IMPUTATION,
                                PipelineConfig(reasoning=False),
                                target_attribute="city")
        parsed = parse_prompt(
            _request(builder.build(list(restaurant_dataset.instances[:1])))
        )
        assert not parsed.reasoning


class TestQuestions:
    def test_all_questions_parsed_with_fields(self, restaurant_dataset):
        builder = PromptBuilder(Task.DATA_IMPUTATION, PipelineConfig(),
                                target_attribute="city")
        prompt = builder.build(list(restaurant_dataset.instances[:5]))
        parsed = parse_prompt(_request(prompt))
        assert len(parsed.questions) == 5
        for number, question in enumerate(parsed.questions, start=1):
            assert question.number == number
            assert question.fields is not None
            assert question.fields["city"] is None  # the ??? cell
            assert question.target == "city"

    def test_em_pairs_parsed(self, beer_dataset):
        builder = PromptBuilder(Task.ENTITY_MATCHING, PipelineConfig())
        prompt = builder.build(list(beer_dataset.instances[:3]))
        parsed = parse_prompt(_request(prompt))
        for question in parsed.questions:
            assert question.left is not None
            assert question.right is not None
            assert "beer_name" in question.left


class TestExamples:
    def test_fewshot_examples_recovered(self, restaurant_dataset):
        builder = PromptBuilder(Task.DATA_IMPUTATION, PipelineConfig(),
                                target_attribute="city")
        examples = restaurant_dataset.sample_fewshot(4)
        prompt = builder.build(list(restaurant_dataset.instances[:2]),
                               fewshot_examples=examples)
        parsed = parse_prompt(_request(prompt))
        assert len(parsed.examples) == 4
        for example, instance in zip(parsed.examples, examples):
            # The parsed answer is the example's gold answer line.
            assert example.answer == instance.true_value

    def test_binary_examples_answers(self, beer_dataset):
        builder = PromptBuilder(Task.ENTITY_MATCHING, PipelineConfig())
        examples = beer_dataset.sample_fewshot(4)
        prompt = builder.build(list(beer_dataset.instances[:2]),
                               fewshot_examples=examples)
        parsed = parse_prompt(_request(prompt))
        answers = [e.answer for e in parsed.examples]
        expected = ["yes" if e.label else "no" for e in examples]
        assert answers == expected


class TestMalformedPrompts:
    def test_no_system(self):
        request = CompletionRequest(
            messages=(ChatMessage(role="user", content="hi"),), model="m"
        )
        with pytest.raises(LLMError):
            parse_prompt(request)

    def test_unknown_task(self):
        request = CompletionRequest(
            messages=(ChatMessage(role="system", content="Do something."),
                      ChatMessage(role="user", content="Question 1: what?")),
            model="m",
        )
        with pytest.raises(LLMError):
            parse_prompt(request)

    def test_no_questions(self):
        request = CompletionRequest(
            messages=(
                ChatMessage(
                    role="system",
                    content="You are requested to decide whether two records "
                            "refer to the same entity.",
                ),
                ChatMessage(role="user", content="no questions here"),
            ),
            model="m",
        )
        with pytest.raises(LLMError):
            parse_prompt(request)
