"""Fault plans: positional, fingerprint-keyed, and checkpointable.

Positional schedules (1-based call index) drift the moment the pipeline
re-orders or bisects work; fingerprint-keyed schedules pin each fault to
the request's content, so a drill reproduces at any concurrency and any
retry order.
"""

import pytest

from repro.errors import InjectedCrashError, LLMError, TransientLLMError
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.faults import (
    Fault,
    FaultInjectingClient,
    fail_every,
    fail_first,
    request_fingerprint,
)
from repro.llm.simulated import SimulatedLLM


def _request(content="hello", model="gpt-3.5", temperature=0.75):
    return CompletionRequest(
        messages=(
            ChatMessage(role="system", content="be terse"),
            ChatMessage(role="user", content=content),
        ),
        model=model,
        temperature=temperature,
    )


class _EchoClient:
    def complete(self, request):
        from repro.llm.accounting import meter_response
        from repro.llm.profiles import get_profile

        return meter_response(get_profile(request.model), request, "Answer 1: yes")


class TestRequestFingerprint:
    def test_identical_requests_share_a_fingerprint(self):
        assert request_fingerprint(_request()) == request_fingerprint(_request())

    def test_any_content_change_changes_it(self):
        base = request_fingerprint(_request())
        assert request_fingerprint(_request(content="other")) != base
        assert request_fingerprint(_request(model="gpt-4")) != base
        assert request_fingerprint(_request(temperature=0.2)) != base


class TestFingerprintKeyedPlans:
    def test_fault_fires_on_the_keyed_request_only(self):
        target = request_fingerprint(_request("fail me"))
        client = FaultInjectingClient(
            _EchoClient(), plan={target: Fault("transient")}
        )
        client.complete(_request("innocent"))  # untouched
        with pytest.raises(TransientLLMError):
            client.complete(_request("fail me"))
        assert client.n_injected == 1

    def test_schedule_is_consumed_per_occurrence(self):
        target = request_fingerprint(_request())
        client = FaultInjectingClient(
            _EchoClient(),
            plan={target: (Fault("transient"), None, Fault("transient"))},
        )
        with pytest.raises(TransientLLMError):
            client.complete(_request())       # occurrence 0: fault
        client.complete(_request())           # occurrence 1: served
        with pytest.raises(TransientLLMError):
            client.complete(_request())       # occurrence 2: fault
        client.complete(_request())           # schedule exhausted: served
        assert client.n_injected == 2
        assert client.n_calls == 4

    def test_single_fault_means_first_occurrence_only(self):
        target = request_fingerprint(_request())
        client = FaultInjectingClient(
            _EchoClient(), plan={target: Fault("transient")}
        )
        with pytest.raises(TransientLLMError):
            client.complete(_request())
        client.complete(_request())
        assert client.n_injected == 1

    def test_mixed_key_types_are_rejected(self):
        target = request_fingerprint(_request())
        with pytest.raises(LLMError):
            FaultInjectingClient(
                _EchoClient(),
                plan={1: Fault("transient"), target: Fault("transient")},
            )

    def test_crash_fault_raises_injected_crash(self):
        client = FaultInjectingClient(
            _EchoClient(), plan={1: Fault("crash", message="drill")}
        )
        with pytest.raises(InjectedCrashError) as excinfo:
            client.complete(_request())
        assert excinfo.value.site == "mid_batch"


class TestPositionalPlans:
    def test_positional_mapping_still_works(self):
        client = FaultInjectingClient(
            _EchoClient(), plan={2: Fault("transient")}
        )
        client.complete(_request())
        with pytest.raises(TransientLLMError):
            client.complete(_request())
        client.complete(_request())
        assert client.n_calls == 3

    def test_fail_first_and_fail_every_helpers(self):
        first = FaultInjectingClient(_EchoClient(), fail_first(1, Fault("transient")))
        with pytest.raises(TransientLLMError):
            first.complete(_request())
        first.complete(_request())
        every = FaultInjectingClient(_EchoClient(), fail_every(2, Fault("transient")))
        every.complete(_request())
        with pytest.raises(TransientLLMError):
            every.complete(_request())

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(LLMError):
            Fault("gremlin")


class TestCheckpointing:
    def _di_request(self, dataset):
        from repro.core.config import PipelineConfig
        from repro.core.prompts import PromptBuilder
        from repro.data.instances import Task

        builder = PromptBuilder(
            Task.DATA_IMPUTATION,
            PipelineConfig(),
            target_attribute="city",
        )
        prompt = builder.build(list(dataset.instances[:2]))
        return CompletionRequest(messages=prompt.messages, model="gpt-3.5")

    def test_state_round_trips_including_inner_client(self, restaurant_dataset):
        request = self._di_request(restaurant_dataset)
        target = request_fingerprint(request)
        original = FaultInjectingClient(
            SimulatedLLM("gpt-3.5", seed=0),
            plan={target: (Fault("transient"), None)},
        )
        with pytest.raises(TransientLLMError):
            original.complete(request)
        reply_a = original.complete(request).text
        state = original.checkpoint_state()
        reply_b = original.complete(request).text

        clone = FaultInjectingClient(
            SimulatedLLM("gpt-3.5", seed=0),
            plan={target: (Fault("transient"), None)},
        )
        clone.restore_checkpoint_state(state)
        assert clone.n_calls == 2
        assert clone.complete(request).text == reply_b
        assert reply_a is not None
