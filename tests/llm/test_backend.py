"""Backends: picklable client factories and the Checkpointable protocol."""

import pickle

import pytest

from repro.errors import LLMError
from repro.llm.backend import (
    Backend,
    CachingBackend,
    Checkpointable,
    FaultBackend,
    GarblingBackend,
    SimulatedBackend,
)
from repro.llm.base import ChatMessage, CompletionRequest
from repro.llm.faults import Fault


def _request():
    from repro.shard.bench import build_decode_requests

    return build_decode_requests(1)[0]


def _stack():
    return CachingBackend(
        GarblingBackend(
            FaultBackend(
                SimulatedBackend(model="gpt-3.5", seed=7),
                {2: Fault(kind="rate_limit", message="slow down")},
            ),
            triggers=("never-matches",),
        ),
        max_entries=64,
    )


class TestBackendProtocol:
    @pytest.mark.parametrize("backend", [
        SimulatedBackend(),
        FaultBackend(SimulatedBackend(), {}),
        GarblingBackend(SimulatedBackend()),
        CachingBackend(SimulatedBackend()),
        _stack(),
    ], ids=["simulated", "faults", "garbling", "caching", "stack"])
    def test_every_backend_satisfies_the_protocol(self, backend):
        assert isinstance(backend, Backend)

    def test_a_bare_client_is_not_a_backend(self):
        assert not isinstance(SimulatedBackend().build(), Backend)

    def test_describe_is_plain_data_and_stable(self):
        described = _stack().describe()
        assert described == _stack().describe()
        assert described["kind"] == "caching"
        assert described["inner"]["inner"]["inner"]["model"] == "gpt-3.5"


class TestPicklability:
    def test_the_full_stack_round_trips(self):
        backend = _stack()
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.describe() == backend.describe()

    def test_clients_built_either_side_of_the_wire_agree(self):
        backend = SimulatedBackend(seed=3)
        clone = pickle.loads(pickle.dumps(backend))
        assert (
            backend.build().complete(_request()).text
            == clone.build().complete(_request()).text
        )

    def test_builds_are_independent(self):
        backend = SimulatedBackend()
        first, second = backend.build(), backend.build()
        first.complete(_request())  # advances first's call counter only
        assert first.checkpoint_state() != second.checkpoint_state()


class TestFaultBackendPlans:
    def test_callable_plans_are_rejected_at_construction(self):
        with pytest.raises(LLMError, match="callable"):
            FaultBackend(SimulatedBackend(), lambda request, index: None)

    def test_positional_entries_must_map_to_one_fault(self):
        with pytest.raises(LLMError, match="positional"):
            FaultBackend(
                SimulatedBackend(),
                {1: (Fault(kind="rate_limit", message="m"),)},
            )

    def test_fingerprint_entries_accept_schedules(self):
        backend = FaultBackend(
            SimulatedBackend(),
            {"deadbeef": (Fault(kind="rate_limit", message="m"), None)},
        )
        assert backend.build() is not None

    def test_positional_fault_reaches_the_injector_unwrapped(self):
        from repro.errors import RateLimitError

        fault = Fault(kind="rate_limit", message="m", retry_after=0.5)
        client = FaultBackend(SimulatedBackend(), {1: fault}).build()
        with pytest.raises(RateLimitError):
            client.complete(_request())
        assert client.n_injected == 1
        client.complete(_request())  # call 2 has no fault scheduled
        assert client.n_injected == 1


class TestCheckpointable:
    def test_simulated_client_opts_in(self):
        assert isinstance(SimulatedBackend().build(), Checkpointable)

    def test_state_round_trips(self):
        client = SimulatedBackend().build()
        client.complete(_request())
        state = client.checkpoint_state()
        replica = SimulatedBackend().build()
        replica.restore_checkpoint_state(state)
        assert replica.checkpoint_state() == state

    def test_an_arbitrary_object_is_not_checkpointable(self):
        assert not isinstance(object(), Checkpointable)
