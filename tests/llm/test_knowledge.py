"""Tests for repro.llm.knowledge."""

import pytest

from repro.llm.knowledge import KnowledgeBase


@pytest.fixture()
def omniscient():
    return KnowledgeBase("oracle", coverage=1.0, concept_coverage=1.0)


@pytest.fixture()
def ignorant():
    return KnowledgeBase("pebble", coverage=0.0, concept_coverage=0.0)


class TestCoverageGating:
    def test_full_coverage_knows_everything(self, omniscient):
        assert omniscient.city_for_area_code("770") == "marietta"
        assert omniscient.find_brand("sony bravia tv x100") == "sony"
        assert omniscient.concept_of("dob") is not None

    def test_zero_coverage_knows_nothing(self, ignorant):
        assert ignorant.city_for_area_code("770") is None
        assert ignorant.find_brand("sony bravia tv") is None
        assert ignorant.concept_of("dob") is None

    def test_partial_coverage_is_deterministic_per_model(self):
        a = KnowledgeBase("gpt-3.5", 0.5, 0.5)
        b = KnowledgeBase("gpt-3.5", 0.5, 0.5)
        codes = ["212", "312", "404", "617", "713", "808"]
        assert [a.city_for_area_code(c) for c in codes] == [
            b.city_for_area_code(c) for c in codes
        ]

    def test_different_models_know_different_facts(self):
        a = KnowledgeBase("model-a", 0.5, 0.5)
        b = KnowledgeBase("model-b", 0.5, 0.5)
        codes = [c for c in ("212", "312", "404", "617", "713", "808",
                             "206", "303", "415", "512")]
        answers_a = [a.city_for_area_code(c) is None for c in codes]
        answers_b = [b.city_for_area_code(c) is None for c in codes]
        assert answers_a != answers_b

    def test_coverage_bounds_validated(self):
        with pytest.raises(ValueError):
            KnowledgeBase("m", coverage=1.5, concept_coverage=0.5)
        with pytest.raises(ValueError):
            KnowledgeBase("m", coverage=0.5, concept_coverage=-0.1)


class TestGeography:
    def test_unknown_area_code(self, omniscient):
        assert omniscient.city_for_area_code("000") is None

    def test_zip_prefix(self, omniscient):
        assert omniscient.city_for_zip_prefix("300") == "marietta"

    def test_state_for_city(self, omniscient):
        assert omniscient.state_for_city("boston") == "ma"
        assert omniscient.state_for_city("atlantis") is None


class TestBrands:
    def test_bigram_brand_preferred(self, omniscient):
        found = omniscient.find_brand("western digital caviar drive wd100")
        assert found == "western digital"

    def test_aliases(self, omniscient):
        assert omniscient.brand_alias("hp") == "hewlett-packard"
        assert omniscient.city_alias("new york") == "new york city"
        assert omniscient.brand_alias("unknown-brand") is None


class TestDomains:
    def test_closed_domain_flags(self, omniscient):
        assert omniscient.is_closed_domain("sex")
        assert not omniscient.is_closed_domain("hospitalname")

    def test_small_domains_fully_known_at_moderate_coverage(self):
        weak = KnowledgeBase("weakish", coverage=0.6, concept_coverage=0.2)
        domain = weak.domain_of("sex")
        assert domain == frozenset({"male", "female"})

    def test_unknown_attribute_domain(self, omniscient):
        assert omniscient.domain_of("frobnication") is None


class TestSpellcheck:
    def test_known_words(self, omniscient):
        assert omniscient.knows_word("hospital")
        assert omniscient.knows_word("pneumonia")

    def test_typo_not_known_but_near(self, omniscient):
        assert not omniscient.knows_word("hospitral")
        assert omniscient.near_known_word("hospitel")

    def test_numbers_pass(self, omniscient):
        assert omniscient.knows_word("1234")

    def test_short_words_not_near_matched(self, omniscient):
        assert not omniscient.near_known_word("ab")


class TestNumericRanges:
    def test_known_ranges(self, omniscient):
        assert omniscient.plausible_range("age") == (0, 120)
        assert omniscient.plausible_range("frobs") is None

    def test_education_mapping(self, omniscient):
        assert omniscient.education_number("bachelors") == 13
        assert omniscient.education_number("made-up") is None


class TestConcepts:
    def test_same_group_same_concept(self, omniscient):
        assert omniscient.concept_of("dob") == omniscient.concept_of("birth_date")

    def test_different_groups_differ(self, omniscient):
        assert omniscient.concept_of("dob") != omniscient.concept_of("gender")

    def test_unknown_attribute(self, omniscient):
        assert omniscient.concept_of("frobnication") is None
