"""Tests for repro.obs.export."""

import json

from repro.obs.export import (
    render_metrics_summary,
    render_trace_summary,
    spans_from_json,
    trace_to_chrome,
    trace_to_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _sample_spans():
    tracer = Tracer()
    root = tracer.start_span("pipeline.run", 0.0, dataset="beer")
    call = tracer.start_span("llm.call", 0.5, parent=root, lane=2)
    call.add_event("retry", 1.0, attempt=1)
    call.end(2.0)
    root.end(2.5)
    return tracer.spans


class TestJsonRoundTrip:
    def test_spans_survive_json(self):
        spans = _sample_spans()
        payload = trace_to_json(spans)
        text = json.dumps(payload)
        rebuilt = spans_from_json(json.loads(text))
        assert [s.to_dict() for s in rebuilt] == [s.to_dict() for s in spans]

    def test_unfinished_span_round_trips(self):
        tracer = Tracer()
        tracer.start_span("open", 1.0)
        rebuilt = spans_from_json(trace_to_json(tracer.spans))
        assert rebuilt[0].end_s is None
        assert not rebuilt[0].finished


class TestChromeTrace:
    def test_structure_and_units(self):
        document = trace_to_chrome(_sample_spans())
        assert json.loads(json.dumps(document)) == document  # valid JSON
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 2
        assert len(instants) == 1
        call = next(e for e in complete if e["name"] == "llm.call")
        assert call["tid"] == 2                      # lane -> track
        assert call["ts"] == 0.5 * 1_000_000         # seconds -> microseconds
        assert call["dur"] == 1.5 * 1_000_000
        assert call["args"]["parent_id"] == 1

    def test_spans_without_lane_land_on_track_zero(self):
        document = trace_to_chrome(_sample_spans())
        run = next(
            e for e in document["traceEvents"] if e["name"] == "pipeline.run"
        )
        assert run["tid"] == 0


class TestTextSummaries:
    def test_trace_summary_aggregates_by_name(self):
        text = render_trace_summary(_sample_spans())
        assert "pipeline.run" in text
        assert "llm.call" in text
        assert "2 span(s)" in text

    def test_trace_summary_empty(self):
        assert "no spans" in render_trace_summary([])

    def test_metrics_summary(self):
        registry = MetricsRegistry()
        registry.counter("executor.calls").inc(3)
        registry.gauge("executor.makespan_s").set(12.5)
        registry.histogram("llm.call_latency_s").observe(2.0)
        text = render_metrics_summary(registry.snapshot())
        assert "executor.calls" in text
        assert "counter" in text and "gauge" in text and "histogram" in text

    def test_metrics_summary_empty(self):
        assert "none recorded" in render_metrics_summary(
            MetricsRegistry().snapshot()
        )
