"""Tests for repro.obs.tracing."""

import pytest

from repro.obs.tracing import Span, Tracer, TracingError


class TestSpan:
    def test_lifecycle(self):
        tracer = Tracer()
        span = tracer.start_span("work", 1.0, task="ED")
        assert not span.finished
        assert span.duration_s == 0.0
        span.end(3.5)
        assert span.finished
        assert span.duration_s == pytest.approx(2.5)
        assert span.attributes == {"task": "ED"}

    def test_cannot_end_twice(self):
        span = Tracer().start_span("work", 0.0)
        span.end(1.0)
        with pytest.raises(TracingError):
            span.end(2.0)

    def test_cannot_end_before_start(self):
        span = Tracer().start_span("work", 5.0)
        with pytest.raises(TracingError):
            span.end(4.0)

    def test_events_keep_order(self):
        span = Tracer().start_span("call", 0.0)
        span.add_event("retry", 1.0, attempt=1)
        span.add_event("retry", 2.0, attempt=2)
        span.add_event("breaker.trip", 2.5)
        assert [event.name for event in span.events] == [
            "retry", "retry", "breaker.trip",
        ]
        assert span.events[1].attributes == {"attempt": 2}

    def test_set_attribute_chains(self):
        span = Tracer().start_span("call", 0.0)
        span.set_attribute("lane", 3).set_attribute("outcome", "ok")
        assert span.attributes == {"lane": 3, "outcome": "ok"}

    def test_to_dict_round_trips_fields(self):
        span = Tracer().start_span("call", 0.5, lane=1)
        span.add_event("retry", 0.7, reason="boom")
        span.end(1.5)
        payload = span.to_dict()
        assert payload["name"] == "call"
        assert payload["start_s"] == 0.5
        assert payload["end_s"] == 1.5
        assert payload["events"][0]["attributes"] == {"reason": "boom"}


class TestTracer:
    def test_sequential_ids_and_start_order(self):
        tracer = Tracer()
        a = tracer.start_span("a", 0.0)
        b = tracer.start_span("b", 1.0, parent=a)
        c = tracer.start_span("c", 0.5)
        assert [span.span_id for span in tracer.spans] == [1, 2, 3]
        assert b.parent_id == a.span_id
        assert c.parent_id is None

    def test_find_and_children(self):
        tracer = Tracer()
        root = tracer.start_span("run", 0.0)
        one = tracer.start_span("batch", 0.0, parent=root)
        two = tracer.start_span("batch", 1.0, parent=root)
        tracer.start_span("call", 0.0, parent=one)
        assert tracer.find("batch") == [one, two]
        assert tracer.children_of(root) == [one, two]

    def test_finished_spans_excludes_open_ones(self):
        tracer = Tracer()
        done = tracer.start_span("a", 0.0)
        done.end(1.0)
        tracer.start_span("b", 0.0)
        assert tracer.finished_spans() == [done]
        assert tracer.n_spans == 2

    def test_identical_usage_gives_identical_traces(self):
        """Determinism: the trace is a pure function of the call sequence."""
        def build():
            tracer = Tracer()
            root = tracer.start_span("run", 0.0, dataset="beer")
            child = tracer.start_span("call", 0.25, parent=root, lane=0)
            child.add_event("retry", 0.5, attempt=1)
            child.end(1.0)
            root.end(1.0)
            return [span.to_dict() for span in tracer.spans]

        assert build() == build()
