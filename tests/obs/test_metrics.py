"""Tests for repro.obs.metrics."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_cannot_decrease(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("busy_s")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_fixed_buckets_count_correctly(self):
        histogram = Histogram("latency", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # bounds are inclusive upper edges; the last bucket is overflow
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.n_observations == 5
        assert histogram.total == pytest.approx(106.0)
        assert histogram.mean == pytest.approx(21.2)

    def test_default_buckets(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.bounds == DEFAULT_BUCKETS

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("bad", bounds=(1.0, 1.0))

    def test_empty_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("bad", bounds=())

    def test_conflicting_bounds_rejected_on_reregistration(self):
        registry = MetricsRegistry()
        registry.histogram("latency", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError):
            registry.histogram("latency", buckets=(1.0, 4.0))


class TestHistogramQuantile:
    def test_empty_histogram_reports_zero(self):
        assert Histogram("h", bounds=(1.0,)).quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        histogram = Histogram("h", bounds=(1.0,))
        with pytest.raises(MetricsError):
            histogram.quantile(-0.1)
        with pytest.raises(MetricsError):
            histogram.quantile(1.1)

    def test_interpolates_within_the_holding_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        # rank 2 lands halfway through the (1, 2] bucket's two counts
        assert histogram.quantile(0.5) == pytest.approx(1.5)

    def test_extremes_hit_the_bucket_edges(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(0.5)
        # every observation sits in the first bucket: q=0 is its lower
        # edge, q=1 its upper edge
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 1.0

    def test_overflow_bucket_reports_the_last_finite_bound(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(10.0)
        histogram.observe(20.0)
        # a floor, not an exact value — all mass is above every bound
        assert histogram.quantile(0.99) == 2.0

    def test_skips_empty_buckets(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0, 8.0))
        histogram.observe(0.5)
        histogram.observe(7.0)
        assert histogram.quantile(1.0) == 8.0


class TestRegistry:
    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")
        with pytest.raises(MetricsError):
            registry.histogram("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"]["b"] == 2
        assert snapshot["gauges"]["g"] == 1.5
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]
        # must serialize without a custom encoder
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_snapshot_of_empty_registry(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
