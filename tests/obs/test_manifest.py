"""Tests for repro.obs.manifest."""

import json

import pytest

from repro.core.config import PipelineConfig
from repro.core.executor import ExecutionReport, LaneReport
from repro.core.feature_selection import FeatureSelection
from repro.data.instances import Task
from repro.llm.profiles import get_profile
from repro.obs.manifest import (
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    build_manifest,
    jsonable,
)
from repro.obs.tracing import Tracer


class TestJsonable:
    def test_primitives_pass_through(self):
        for value in (1, 1.5, "x", True, None):
            assert jsonable(value) == value

    def test_enum_becomes_name(self):
        assert jsonable(Task.ENTITY_MATCHING) == "ENTITY_MATCHING"

    def test_tuples_and_sets_become_lists(self):
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable({"b", "a"}) == ["a", "b"]

    def test_dataclass_flattens(self):
        config = PipelineConfig(
            model="gpt-4",
            feature_selection=FeatureSelection(keep=("name", "abv")),
        )
        payload = jsonable(config)
        assert payload["model"] == "gpt-4"
        assert payload["feature_selection"]["keep"] == ["name", "abv"]
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_types_stringify(self):
        assert jsonable(object).startswith("<class")


def _manifest():
    tracer = Tracer()
    span = tracer.start_span("pipeline.run", 0.0, dataset="beer")
    span.end(2.0)
    report = ExecutionReport(
        concurrency=2,
        lanes=[LaneReport(lane=0, n_calls=3), LaneReport(lane=1, n_calls=2)],
        makespan_s=10.0,
        sequential_s=18.0,
        n_calls=5,
    )
    return build_manifest(
        config=PipelineConfig(model="gpt-3.5", observability=True),
        model_profile=get_profile("gpt-3.5"),
        dataset_name="beer",
        task=Task.ENTITY_MATCHING,
        n_instances=80,
        evaluation={"score": 0.9, "hours": 0.003},
        metrics_snapshot={"counters": {"executor.calls": 5.0},
                          "gauges": {}, "histograms": {}},
        execution=report,
        spans=tracer.spans,
    )


class TestRunManifest:
    def test_build_collects_every_section(self):
        manifest = _manifest()
        assert manifest.version == MANIFEST_VERSION
        assert manifest.config["model"] == "gpt-3.5"
        assert manifest.model_profile["name"] == "gpt-3.5"
        assert manifest.dataset == {
            "name": "beer", "task": "ENTITY_MATCHING", "n_instances": 80,
        }
        assert manifest.evaluation["score"] == 0.9
        assert manifest.metrics["counters"]["executor.calls"] == 5.0
        assert manifest.execution["makespan_s"] == 10.0
        assert len(manifest.execution["lanes"]) == 2
        assert len(manifest.trace["spans"]) == 1

    def test_dict_round_trip_is_exact(self):
        manifest = _manifest()
        rebuilt = RunManifest.from_dict(json.loads(manifest.dumps()))
        assert rebuilt == manifest

    def test_file_round_trip_is_exact(self, tmp_path):
        manifest = _manifest()
        path = manifest.write(tmp_path / "artifacts" / "run.json")
        assert path.exists()
        assert RunManifest.load(path) == manifest

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="not found"):
            RunManifest.load(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ManifestError, match="not valid JSON"):
            RunManifest.load(path)

    def test_rejects_foreign_versions(self):
        with pytest.raises(ManifestError, match="unsupported"):
            RunManifest.from_dict({"version": 99})

    def test_rejects_payload_without_version(self):
        with pytest.raises(ManifestError, match="missing 'version'"):
            RunManifest.from_dict({"config": {}})
