"""Schema model: strict parse-time validation and content fingerprints."""

import pytest

from repro.errors import ConfigError
from repro.factory import FactorySchema, preset
from repro.factory.presets import PRESET_NAMES


def toy_dict():
    """A small valid ED schema tests mutate into invalid shapes."""
    return {
        "name": "toy",
        "tables": [
            {"name": "t", "rows": 20, "columns": [
                {"name": "id", "type": "text",
                 "dist": {"kind": "sequence", "prefix": "r-", "start": 1}},
                {"name": "color", "type": "categorical",
                 "dist": {"kind": "uniform",
                          "values": ["red", "green", "blue"]}},
                {"name": "score", "type": "numeric",
                 "dist": {"kind": "int", "low": 1, "high": 9}},
            ]},
        ],
        "task": {"kind": "ed", "table": "t", "targets": ["color", "score"],
                 "error_rate": 0.3, "families": {"typo": 1.0}},
    }


class TestRoundTrip:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_presets_round_trip_losslessly(self, name):
        schema = preset(name)
        again = FactorySchema.from_dict(schema.to_dict())
        assert again.to_dict() == schema.to_dict()
        assert again.fingerprint == schema.fingerprint

    def test_task_kind_aliases_normalize(self):
        schema = FactorySchema.from_dict(toy_dict())
        assert schema.task.kind == "error_detection"
        long_form = toy_dict()
        long_form["task"]["kind"] = "error_detection"
        assert FactorySchema.from_dict(long_form).fingerprint == schema.fingerprint

    def test_fingerprint_sees_every_parameter(self):
        base = FactorySchema.from_dict(toy_dict())
        changed = toy_dict()
        changed["tables"][0]["rows"] = 21
        assert FactorySchema.from_dict(changed).fingerprint != base.fingerprint
        changed = toy_dict()
        changed["task"]["error_rate"] = 0.31
        assert FactorySchema.from_dict(changed).fingerprint != base.fingerprint

    def test_preset_fingerprints_are_distinct(self):
        prints = {preset(name).fingerprint for name in PRESET_NAMES}
        assert len(prints) == len(PRESET_NAMES)


def _rejects(doc, fragment):
    with pytest.raises(ConfigError, match=fragment):
        FactorySchema.from_dict(doc)


class TestValidation:
    def test_unknown_top_level_key(self):
        doc = toy_dict()
        doc["color"] = "blue"
        _rejects(doc, "unknown top-level")

    def test_unknown_column_key(self):
        doc = toy_dict()
        doc["tables"][0]["columns"][0]["typo_key"] = 1
        _rejects(doc, "unknown column key")

    def test_unknown_dist_kind(self):
        doc = toy_dict()
        doc["tables"][0]["columns"][1]["dist"] = {"kind": "gaussian"}
        _rejects(doc, "unknown distribution kind")

    def test_unknown_dist_param(self):
        doc = toy_dict()
        doc["tables"][0]["columns"][1]["dist"]["sigma"] = 2
        _rejects(doc, "unknown parameter")

    def test_unsupported_version(self):
        doc = toy_dict()
        doc["version"] = 2
        _rejects(doc, "unsupported version")

    def test_duplicate_column(self):
        doc = toy_dict()
        doc["tables"][0]["columns"].append(
            dict(doc["tables"][0]["columns"][1])
        )
        _rejects(doc, "duplicate column")

    def test_duplicate_table(self):
        doc = toy_dict()
        doc["tables"].append(doc["tables"][0])
        _rejects(doc, "duplicate table")

    def test_ref_cannot_target_own_table(self):
        doc = toy_dict()
        doc["tables"][0]["columns"].append(
            {"name": "peer", "dist": {"kind": "ref", "table": "t",
                                      "column": "id"}}
        )
        _rejects(doc, "cannot target its own table")

    def test_ref_target_must_be_declared_earlier(self):
        doc = toy_dict()
        doc["tables"][0]["columns"].append(
            {"name": "peer", "dist": {"kind": "ref", "table": "later",
                                      "column": "id"}}
        )
        doc["tables"].append(
            {"name": "later", "rows": 5, "columns": [
                {"name": "id",
                 "dist": {"kind": "sequence", "prefix": "x-", "start": 1}},
            ]}
        )
        _rejects(doc, "declared before")

    def test_ref_to_missing_parent_column(self):
        doc = toy_dict()
        doc["tables"].append(
            {"name": "child", "rows": 5, "columns": [
                {"name": "fk", "dist": {"kind": "ref", "table": "t",
                                        "column": "nope"}},
                {"name": "x", "dist": {"kind": "uniform", "values": ["a"]}},
            ]}
        )
        _rejects(doc, "no column 'nope'")

    def test_map_source_must_be_earlier_column(self):
        doc = toy_dict()
        doc["tables"][0]["columns"].insert(
            0, {"name": "derived",
                "dist": {"kind": "map", "source": "color",
                         "mapping": {"red": 1}, "default": 0}}
        )
        _rejects(doc, "earlier")

    def test_map_must_cover_source_or_default(self):
        doc = toy_dict()
        doc["tables"][0]["columns"].append(
            {"name": "derived",
             "dist": {"kind": "map", "source": "color",
                      "mapping": {"red": 1, "green": 2}}}
        )
        _rejects(doc, "misses source value")

    def test_map_source_must_not_go_missing(self):
        doc = toy_dict()
        doc["tables"][0]["columns"][1]["missing_rate"] = 0.2
        doc["tables"][0]["columns"].append(
            {"name": "derived",
             "dist": {"kind": "map", "source": "color",
                      "mapping": {"red": 1}, "default": 0}}
        )
        _rejects(doc, "must not have a")

    def test_sequence_on_numeric_column(self):
        doc = toy_dict()
        doc["tables"][0]["columns"][0]["type"] = "numeric"
        _rejects(doc, "produce text")

    def test_ed_target_must_not_go_missing(self):
        doc = toy_dict()
        doc["tables"][0]["columns"][1]["missing_rate"] = 0.3
        _rejects(doc, "missing_rate")

    def test_ed_error_rate_must_be_positive(self):
        doc = toy_dict()
        doc["task"]["error_rate"] = 0.0
        _rejects(doc, "error_rate must be > 0")

    def test_unknown_error_family(self):
        doc = toy_dict()
        doc["task"]["families"] = {"smudge": 1.0}
        _rejects(doc, "unknown error family")

    def test_numeric_outlier_needs_a_numeric_target(self):
        doc = toy_dict()
        doc["task"]["targets"] = ["color"]
        doc["task"]["families"] = {"numeric_outlier": 1.0}
        _rejects(doc, "numeric target")

    def test_di_noise_families_need_a_noise_rate(self):
        doc = toy_dict()
        doc["task"] = {"kind": "di", "table": "t", "target": "color",
                       "noise_families": {"typo": 1.0}}
        _rejects(doc, "without a 'noise_rate'")

    def test_sm_with_every_pair_matched_has_no_negatives(self):
        doc = toy_dict()
        doc["tables"].append(
            {"name": "r", "rows": 5, "columns": [
                {"name": "only", "dist": {"kind": "uniform", "values": ["a"]}},
            ]}
        )
        doc["task"] = {
            "kind": "sm", "table": "t", "right_table": "r",
            "matches": [["id", "only"], ["color", "only"], ["score", "only"]],
        }
        _rejects(doc, "no negatives")

    def test_em_keep_attributes_must_exist(self):
        doc = toy_dict()
        doc["task"] = {"kind": "em", "table": "t",
                       "hardness": {"keep_attributes": ["ghost"]}}
        _rejects(doc, "no column 'ghost'")

    def test_unknown_task_kind(self):
        doc = toy_dict()
        doc["task"]["kind"] = "translation"
        _rejects(doc, "unknown task kind")
