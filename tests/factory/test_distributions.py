"""Distribution validation and the pure samplers."""

import random

import pytest

from repro.errors import ConfigError
from repro.factory.distributions import (
    bounded_zipf,
    make_sampler,
    validate_params,
)


def _no_resolve(table, column, pick):  # pragma: no cover - never called
    raise AssertionError("sampler should not resolve refs")


class TestValidateParams:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown distribution kind"):
            validate_params("gaussian", {}, "here")

    def test_unknown_parameter_named(self):
        with pytest.raises(ConfigError, match="sigma"):
            validate_params("uniform", {"values": ["a"], "sigma": 1}, "here")

    def test_weighted_length_mismatch(self):
        with pytest.raises(ConfigError, match="match 'values'"):
            validate_params(
                "weighted", {"values": ["a", "b"], "weights": [1.0]}, "here"
            )

    def test_zipf_exponent_must_be_positive(self):
        with pytest.raises(ConfigError, match="'a' must be"):
            validate_params("zipf", {"values": ["a", "b"], "a": 0}, "here")

    def test_ref_zipf_skew_needs_a_above_one(self):
        with pytest.raises(ConfigError, match="'a' > 1"):
            validate_params(
                "ref",
                {"table": "p", "column": "c", "skew": "zipf", "a": 1.0},
                "here",
            )

    def test_int_bounds_ordered(self):
        with pytest.raises(ConfigError, match="'low' must be <="):
            validate_params("int", {"low": 9, "high": 1}, "here")

    def test_pattern_placeholder_needs_a_pool(self):
        with pytest.raises(ConfigError, match="without a pool"):
            validate_params(
                "pattern",
                {"pattern": "{a} {b}", "pools": {"a": ["x"]}},
                "here",
            )

    def test_bool_is_not_a_number(self):
        with pytest.raises(ConfigError):
            validate_params("int", {"low": True, "high": 3}, "here")


class TestSamplers:
    def sample(self, kind, params, seed=0, index=0, row=()):
        sampler = make_sampler(kind, validate_params(kind, params, "t"))
        return sampler(random.Random(seed), index, dict(row), _no_resolve)

    def test_samplers_are_pure_functions_of_the_rng(self):
        cases = [
            ("uniform", {"values": ["a", "b", "c"]}),
            ("weighted", {"values": ["a", "b"], "weights": [3, 1]}),
            ("zipf", {"values": ["a", "b", "c"], "a": 1.3}),
            ("int", {"low": 1, "high": 99}),
            ("float", {"low": 0.0, "high": 10.0, "ndigits": 2}),
            ("pattern", {"pattern": "{x}-{x}", "pools": {"x": ["p", "q"]}}),
        ]
        for kind, params in cases:
            assert self.sample(kind, params, seed=5) == \
                self.sample(kind, params, seed=5), kind

    def test_sequence_is_a_function_of_the_index_alone(self):
        params = {"prefix": "inv-", "start": 100}
        assert self.sample("sequence", params, seed=1, index=7) == "inv-107"
        assert self.sample("sequence", params, seed=2, index=7) == "inv-107"

    def test_uniform_covers_its_domain(self):
        seen = {
            self.sample("uniform", {"values": ["a", "b", "c"]}, seed=s)
            for s in range(60)
        }
        assert seen == {"a", "b", "c"}

    def test_weighted_respects_weights(self):
        counts = {"a": 0, "b": 0}
        for s in range(400):
            counts[self.sample(
                "weighted", {"values": ["a", "b"], "weights": [9, 1]}, seed=s
            )] += 1
        assert counts["a"] > counts["b"] * 4

    def test_float_rounds_to_ndigits(self):
        value = self.sample("float", {"low": 0.0, "high": 1.0, "ndigits": 1})
        assert value == round(value, 1)

    def test_map_uses_source_then_default(self):
        params = {"source": "color", "mapping": {"red": 1}, "default": 0}
        assert self.sample("map", params, row={"color": "red"}) == 1
        assert self.sample("map", params, row={"color": "teal"}) == 0

    def test_map_without_cover_or_default_raises(self):
        sampler = make_sampler(
            "map",
            validate_params("map", {"source": "c", "mapping": {"x": 1}}, "t"),
        )
        with pytest.raises(ConfigError, match="no 'default'"):
            sampler(random.Random(0), 0, {"c": "y"}, _no_resolve)


class TestBoundedZipf:
    def test_stays_in_range(self):
        rng = random.Random(0)
        draws = [bounded_zipf(rng, 50, 1.3) for _ in range(2000)]
        assert min(draws) >= 0 and max(draws) < 50

    def test_head_ranks_dominate(self):
        rng = random.Random(1)
        draws = [bounded_zipf(rng, 100, 1.5) for _ in range(4000)]
        head = sum(1 for d in draws if d < 5)
        assert head > len(draws) // 2

    def test_single_item_universe(self):
        assert bounded_zipf(random.Random(0), 1, 2.0) == 0

    def test_deterministic_per_rng_state(self):
        a = [bounded_zipf(random.Random(7), 30, 1.2) for _ in range(5)]
        b = [bounded_zipf(random.Random(7), 30, 1.2) for _ in range(5)]
        assert a == b
