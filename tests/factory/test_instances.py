"""Task instances from schemas: labels, rates, and per-index purity."""

from repro.core.contextualize import serialize_instance
from repro.data.instances import Task
from repro.factory import FactorySchema, InstanceFactory, preset


def sm_schema():
    """A small schema-matching schema (no shipped preset declares SM)."""
    return FactorySchema.from_dict({
        "name": "sm_toy",
        "tables": [
            {"name": "left", "rows": 10, "columns": [
                {"name": "patient_name", "description": "full name",
                 "dist": {"kind": "uniform", "values": ["ada", "grace"]}},
                {"name": "dob", "description": "date of birth",
                 "dist": {"kind": "uniform", "values": ["1990", "1985"]}},
            ]},
            {"name": "right", "rows": 10, "columns": [
                {"name": "name", "description": "person name",
                 "dist": {"kind": "uniform", "values": ["x"]}},
                {"name": "birth_date", "description": "birth date",
                 "dist": {"kind": "uniform", "values": ["y"]}},
            ]},
        ],
        "task": {"kind": "sm", "table": "left", "right_table": "right",
                 "matches": [["patient_name", "name"],
                             ["dob", "birth_date"]],
                 "positive_rate": 0.5},
    })


class TestPurity:
    def test_instance_is_a_pure_function_of_its_index(self):
        for name in ("adult_replica", "beer_replica", "ocr_invoices"):
            a = InstanceFactory(preset(name), seed=3).instance_at(11)
            b = InstanceFactory(preset(name), seed=3).instance_at(11)
            assert serialize_instance(a) == serialize_instance(b), name

    def test_streamed_equals_random_access(self):
        fact = InstanceFactory(preset("orders"), seed=1)
        streamed = [serialize_instance(i) for i in fact.iter_instances(40)]
        random_access = [
            serialize_instance(InstanceFactory(preset("orders"), seed=1)
                               .instance_at(i))
            for i in range(40)
        ]
        assert streamed == random_access

    def test_seed_changes_instances(self):
        a = InstanceFactory(preset("adult_replica"), seed=0).instance_at(2)
        b = InstanceFactory(preset("adult_replica"), seed=9).instance_at(2)
        assert serialize_instance(a) != serialize_instance(b)


class TestErrorDetection:
    def test_labels_and_error_rate_track_the_schema(self):
        schema = preset("adult_replica")
        fact = InstanceFactory(schema)
        n = 400
        errors = sum(1 for i in fact.iter_instances(n) if i.label)
        rate = errors / n
        declared = schema.task.error_rate
        assert abs(rate - declared) < 0.08, rate

    def test_erroneous_cells_differ_from_their_clean_value(self):
        fact = InstanceFactory(preset("adult_replica"))
        seen_error = False
        for instance in fact.iter_instances(60):
            assert instance.task is Task.ERROR_DETECTION
            if instance.label:
                seen_error = True
                assert instance.record[instance.target_attribute] != \
                    instance.clean_value
        assert seen_error

    def test_multi_table_ed_schema_generates(self):
        instances = list(InstanceFactory(preset("orders")).iter_instances(50))
        assert {i.label for i in instances} == {True, False}


class TestDataImputation:
    def test_target_is_blanked_and_truth_retained(self):
        fact = InstanceFactory(preset("ocr_invoices"))
        for instance in fact.iter_instances(40):
            assert instance.task is Task.DATA_IMPUTATION
            assert instance.record[instance.target_attribute] is None
            assert instance.true_value

    def test_ocr_noise_reaches_the_context_cells(self):
        fact = InstanceFactory(preset("ocr_invoices"))
        noisy = 0
        for index, instance in enumerate(fact.iter_instances(80)):
            clean_row = fact._stream.row(index)
            for name, value in instance.record:
                if name == instance.target_attribute or value is None:
                    continue
                if str(value) != str(clean_row[name]):
                    noisy += 1
        assert noisy > 10, noisy

    def test_imputation_stays_solvable_from_correlated_context(self):
        # city -> phone area code / zip prefix are map columns: whenever
        # the phone survives uncorrupted, its prefix identifies the city.
        from repro.datasets.vocabularies import CITY_BY_NAME

        fact = InstanceFactory(preset("ocr_invoices"))
        checked = 0
        for instance in fact.iter_instances(60):
            phone = instance.record["phone"]
            truth = instance.true_value
            if phone is None or truth not in CITY_BY_NAME:
                continue
            area = str(phone).split("-")[0]
            if area in CITY_BY_NAME[truth].area_codes:
                checked += 1
        assert checked > 20, checked


class TestEntityMatching:
    def test_both_labels_and_divergent_views(self):
        fact = InstanceFactory(preset("beer_replica"))
        labels = set()
        for instance in fact.iter_instances(80):
            assert instance.task is Task.ENTITY_MATCHING
            labels.add(instance.label)
            left, right = instance.pair.left, instance.pair.right
            assert left.record_id != right.record_id
        assert labels == {True, False}

    def test_positive_rate_tracks_hardness(self):
        schema = preset("beer_replica")
        fact = InstanceFactory(schema)
        n = 400
        positives = sum(1 for i in fact.iter_instances(n) if i.label)
        declared = schema.task.hardness.positive_rate
        assert abs(positives / n - declared) < 0.08


class TestSchemaMatching:
    def test_matches_label_true_and_pairs_carry_descriptions(self):
        schema = sm_schema()
        matches = set(schema.task.matches)
        fact = InstanceFactory(schema)
        labels = set()
        for instance in fact.iter_instances(60):
            assert instance.task is Task.SCHEMA_MATCHING
            pair = (instance.pair.left.name, instance.pair.right.name)
            assert instance.label == (pair in matches)
            labels.add(instance.label)
            assert instance.pair.left.description
        assert labels == {True, False}
