"""The OCR document-noise channel: corruptors and their invariants.

The serialized record format quotes cell values (``[a: "v", ...]``), so
an OCR corruptor may never emit a double quote or a literal newline —
either would let injected noise escape the cell and corrupt the record
*syntax* instead of the record *content*.
"""

import random

import pytest

from repro.datasets.corruption import Corruption
from repro.errors import DatasetError
from repro.factory.ocr import (
    GLYPH_CONFUSIONS,
    OCR_KINDS,
    apply_ocr,
    broken_line,
    garble_glyphs,
    merged_column,
)

SAMPLES = (
    "microsoft corporation",
    "Beer Factory 12",
    "90210",
    "O0l1S5B8",
    "x",
    "summit industries llc",
)


class TestGlyphTable:
    def test_confusions_never_contain_forbidden_characters(self):
        for pattern, replacement in GLYPH_CONFUSIONS:
            assert '"' not in pattern and '"' not in replacement
            assert "\n" not in pattern and "\n" not in replacement


class TestCorruptors:
    @pytest.mark.parametrize("value", SAMPLES)
    def test_garble_always_changes_and_stays_cell_safe(self, value):
        for seed in range(20):
            result = garble_glyphs(value, random.Random(seed))
            assert isinstance(result, Corruption)
            assert result.corrupted != value
            assert result.original == value
            assert '"' not in result.corrupted
            assert "\n" not in result.corrupted

    def test_garble_is_deterministic_per_rng(self):
        a = garble_glyphs("microsoft", random.Random(3)).corrupted
        b = garble_glyphs("microsoft", random.Random(3)).corrupted
        assert a == b

    def test_garble_rejects_empty(self):
        with pytest.raises(DatasetError):
            garble_glyphs("", random.Random(0))

    def test_merged_column_carries_the_neighbor(self):
        result = merged_column("widget", "42.50", random.Random(1))
        assert "42.50" in result.corrupted
        assert result.corrupted.startswith("widget")

    def test_broken_line_hyphenates_inside_a_token(self):
        result = broken_line("microsoft", random.Random(2))
        assert "- " in result.corrupted
        assert result.corrupted.replace("- ", "") == "microsoft"


class TestApplyOcr:
    def test_all_kinds_produce_a_changed_cell(self):
        for kind in OCR_KINDS:
            result = apply_ocr(
                kind, "meridian industries", random.Random(4),
                neighbor="chicago",
            )
            assert result.corrupted != "meridian industries"
            assert result.kind == kind
            assert '"' not in result.corrupted
            assert "\n" not in result.corrupted

    def test_merged_without_neighbor_degrades_to_garble(self):
        result = apply_ocr("ocr_merged_column", "widget", random.Random(0),
                           neighbor=None)
        assert result.corrupted != "widget"

    def test_broken_line_on_short_value_degrades_to_garble(self):
        result = apply_ocr("ocr_broken_line", "x", random.Random(0))
        assert result.corrupted != "x"

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            apply_ocr("ocr_smudge", "value", random.Random(0))

    def test_sweep_never_emits_forbidden_characters(self):
        for seed in range(150):
            kind = OCR_KINDS[seed % len(OCR_KINDS)]
            value = SAMPLES[seed % len(SAMPLES)]
            result = apply_ocr(kind, value, random.Random(seed),
                               neighbor="box 7" if seed % 2 else None)
            assert '"' not in result.corrupted, (kind, value)
            assert "\n" not in result.corrupted, (kind, value)
