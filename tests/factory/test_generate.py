"""The streaming row layer: purity, digests, bounded memory."""

import tracemalloc

from repro.factory import DatasetFactory, preset
from repro.obs.manifest import canonical_json


def factory(name="orders", seed=0):
    return DatasetFactory(preset(name), seed=seed)


class TestRowPurity:
    def test_row_is_a_pure_function_of_its_address(self):
        assert factory().stream().row(17) == factory().stream().row(17)

    def test_access_order_does_not_matter(self):
        forward = factory()
        backward = factory()
        rows_fwd = [forward.stream().row(i) for i in range(30)]
        rows_bwd = [backward.stream().row(i) for i in reversed(range(30))]
        assert rows_fwd == list(reversed(rows_bwd))

    def test_seed_changes_every_stream(self):
        assert factory(seed=0).stream().row(3) != factory(seed=1).stream().row(3)

    def test_rows_beyond_the_declared_universe_still_generate(self):
        stream = factory().stream("customers")
        row = stream.row(stream.rows + 1000)
        assert set(row) == set(stream.spec.column_names)


class TestStreamedVsMaterialized:
    def test_groups_equal_materialized_records(self):
        stream = factory().stream("customers")
        streamed = [row for group in stream.iter_groups(60, group_size=7)
                    for row in group]
        table = stream.materialize(60)
        assert streamed == [record.to_dict() for record in table]

    def test_group_size_never_changes_the_digest(self):
        stream = factory().stream("customers")
        base = stream.digest(100)
        for group_size in (1, 13, 4096):
            rows = [row for group in
                    factory().stream("customers").iter_groups(
                        100, group_size=group_size)
                    for row in group]
            import hashlib
            hasher = hashlib.blake2b(digest_size=16)
            for row in rows:
                hasher.update(canonical_json(row).encode("utf-8"))
                hasher.update(b"\x00")
            assert hasher.hexdigest() == base

    def test_digest_is_reproducible_and_seed_sensitive(self):
        assert factory().stream().digest(200) == factory().stream().digest(200)
        assert factory(seed=1).stream().digest(200) != \
            factory(seed=2).stream().digest(200)


class TestForeignKeys:
    def test_every_child_value_exists_in_the_parent_universe(self):
        fact = factory()
        parents = {
            fact.stream("customers").row(i)["customer_id"]
            for i in range(fact.stream("customers").rows)
        }
        for group in fact.stream("orders").iter_groups(500):
            for row in group:
                assert row["customer_id"] in parents

    def test_zipf_skew_concentrates_fan_in(self):
        fact = factory()
        counts: dict[str, int] = {}
        for row in fact.stream("orders").iter_rows(0, 1500):
            counts[row["customer_id"]] = counts.get(row["customer_id"], 0) + 1
        top = sorted(counts.values(), reverse=True)
        # zipf(1.3) fan-in: the head parent absorbs far more than 1/200
        assert top[0] > 1500 // 200 * 4

    def test_parent_memo_does_not_change_bytes(self):
        # Generate far more child rows than the memo holds; eviction and
        # regeneration must be invisible in the digest.
        small = factory()
        assert small.stream("orders").digest(300) == \
            factory().stream("orders").digest(300)


class TestBoundedMemory:
    def test_streaming_memory_stays_flat(self):
        """50k rows through iter_groups must not accumulate the table."""
        fact = factory()
        stream = fact.stream("orders")
        tracemalloc.start()
        count = 0
        for group in stream.iter_groups(50_000, group_size=2048):
            count += len(group)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == 50_000
        # One row is a handful of short strings; a materialized 50k-row
        # table is tens of MB.  The streamed peak stays group-sized.
        assert peak < 24 * 1024 * 1024, f"peak {peak / 1e6:.1f} MB"


class TestRecords:
    def test_record_ids_are_stable_addresses(self):
        record = factory().stream("customers").record(5)
        assert record.record_id == "orders-customers-5"

    def test_instance_ids_from_the_adapter_layer(self):
        from repro.factory import InstanceFactory

        instance = InstanceFactory(preset("orders")).instance_at(9)
        assert instance.instance_id == "orders-9"
