"""The adapter layer: factory schemas behind the standard dataset API."""

import json
from pathlib import Path

import pytest

from repro.core.contextualize import serialize_instance
from repro.data.instances import Task
from repro.datasets import SCHEMA_PREFIX, dataset_info, load_dataset
from repro.datasets.registry import _GENERATORS, clear_cache
from repro.errors import ConfigError, DatasetError
from repro.factory import (
    InstanceFactory,
    SchemaGenerator,
    preset,
    register_schema,
)
from repro.factory.presets import PRESET_NAMES

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "schemas"


def write_schema(tmp_path, schema, name="schema.json"):
    """A schema file in JSON — parseable with or without PyYAML."""
    path = tmp_path / name
    path.write_text(json.dumps(schema.to_dict()), encoding="utf-8")
    return str(path)


class TestSchemaGenerator:
    def test_generate_honors_size_and_task(self):
        generator = SchemaGenerator(preset("beer_replica"))
        dataset = generator.generate(size=25, seed=2)
        assert len(dataset) == 25
        assert dataset.task is Task.ENTITY_MATCHING
        assert len(dataset.fewshot_pool) == generator.fewshot_pool_size

    def test_default_size_is_the_task_tables_universe(self):
        schema = preset("ocr_invoices")
        generator = SchemaGenerator(schema)
        assert generator.default_size == schema.table(schema.task.table).rows

    def test_cache_token_is_the_fingerprint(self):
        schema = preset("adult_replica")
        assert SchemaGenerator(schema).cache_token == schema.fingerprint

    def test_streamed_equals_materialized_instances(self):
        generator = SchemaGenerator(preset("adult_replica"))
        streamed = [
            serialize_instance(instance)
            for instance in generator.iter_instances(30, seed=4)
        ]
        materialized = [
            serialize_instance(InstanceFactory(generator.schema, seed=4)
                               .instance_at(i))
            for i in range(30)
        ]
        assert streamed == materialized

    def test_generate_is_seed_deterministic(self):
        generator = SchemaGenerator(preset("orders"))
        a = generator.generate(size=20, seed=7)
        b = generator.generate(size=20, seed=7)
        assert [serialize_instance(i) for i in a.instances] == \
            [serialize_instance(i) for i in b.instances]

    def test_iter_instances_rejects_empty_streams(self):
        with pytest.raises(DatasetError):
            SchemaGenerator(preset("orders")).iter_instances(0)


class TestSchemaPathLoading:
    def test_load_dataset_by_schema_path(self, tmp_path):
        path = write_schema(tmp_path, preset("orders"))
        dataset = load_dataset(f"{SCHEMA_PREFIX}{path}", size=15, seed=1)
        assert len(dataset) == 15
        assert dataset.task is Task.ERROR_DETECTION

    def test_dataset_info_resolves_schema_paths(self, tmp_path):
        path = write_schema(tmp_path, preset("beer_replica"))
        info = dataset_info(f"{SCHEMA_PREFIX}{path}")
        assert info.task is Task.ENTITY_MATCHING
        assert "beer_replica" in info.description

    def test_empty_schema_path_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset(SCHEMA_PREFIX)

    def test_missing_schema_file_rejected(self):
        with pytest.raises(ConfigError):
            load_dataset(f"{SCHEMA_PREFIX}/nonexistent/schema.yaml")

    def test_schema_path_dataset_matches_direct_generation(self, tmp_path):
        path = write_schema(tmp_path, preset("adult_replica"))
        via_path = load_dataset(f"{SCHEMA_PREFIX}{path}", size=12, seed=3)
        direct = SchemaGenerator(preset("adult_replica")).generate(
            size=12, seed=3
        )
        assert [serialize_instance(i) for i in via_path.instances] == \
            [serialize_instance(i) for i in direct.instances]


class TestRegisterSchema:
    def test_registered_schema_loads_by_name(self):
        schema = preset("beer_replica")
        name = "beer_replica_registered_for_test"
        register_schema(schema, name=name)
        try:
            dataset = load_dataset(name, size=10, seed=0)
            assert len(dataset) == 10
        finally:
            _GENERATORS.pop(name, None)
            clear_cache()

    def test_schema_prefix_names_are_rejected(self):
        with pytest.raises(DatasetError):
            register_schema(preset("orders"),
                            name=f"{SCHEMA_PREFIX}sneaky")


class TestExamplesStayInSyncWithPresets:
    """The shipped YAML files are generated from the presets; a drifted
    example would document a schema the golden cells no longer pin."""

    def test_every_preset_ships_an_example(self):
        yaml = pytest.importorskip("yaml")
        del yaml
        from repro.factory import load_schema_file

        for name in PRESET_NAMES:
            path = EXAMPLES / f"{name}.yaml"
            assert path.is_file(), f"missing example for preset {name!r}"
            assert load_schema_file(str(path)).fingerprint == \
                preset(name).fingerprint, name

    def test_no_orphan_examples(self):
        stems = {path.stem for path in EXAMPLES.glob("*.yaml")}
        assert stems == set(PRESET_NAMES)
