"""End-to-end observability: manifest, Chrome trace, and the trace CLI.

A full evaluation run with ``observability=True`` must produce a manifest
whose JSON round-trips exactly, whose span trace converts to a valid
Chrome ``chrome://tracing`` document, and which the ``trace`` CLI
subcommand can render back into a human-readable summary.
"""

import json

import pytest

from repro import PipelineConfig, SimulatedLLM
from repro.errors import EvaluationError
from repro.eval.__main__ import main
from repro.eval.harness import evaluate_pipeline
from repro.obs import RunManifest, spans_from_json, trace_to_chrome


@pytest.fixture()
def observed_run(beer_dataset, tmp_path):
    config = PipelineConfig(
        model="gpt-3.5", concurrency=4, observability=True
    )
    path = tmp_path / "run.json"
    run = evaluate_pipeline(
        SimulatedLLM("gpt-3.5"), config, beer_dataset, manifest_path=path
    )
    return run, path


class TestManifestEndToEnd:
    def test_requires_observability(self, beer_dataset, tmp_path):
        config = PipelineConfig(model="gpt-3.5")
        with pytest.raises(EvaluationError, match="observability"):
            evaluate_pipeline(
                SimulatedLLM("gpt-3.5"), config, beer_dataset,
                manifest_path=tmp_path / "run.json",
            )

    def test_json_round_trips(self, observed_run):
        run, path = observed_run
        loaded = RunManifest.load(path)
        assert loaded == run.manifest
        # re-serialising the loaded manifest is byte-identical
        # (write() terminates the file with a newline)
        assert loaded.dumps() + "\n" == path.read_text(encoding="utf-8")

    def test_manifest_matches_the_run(self, observed_run):
        run, _ = observed_run
        manifest = run.manifest
        assert manifest.dataset["name"] == "beer"
        assert manifest.evaluation["score"] == run.score
        assert manifest.evaluation["total_tokens"] == run.total_tokens
        assert manifest.execution["n_calls"] == run.n_requests
        counters = manifest.metrics["counters"]
        assert counters["executor.calls"] == run.n_requests
        assert manifest.trace["spans"], "trace must not be empty"

    def test_chrome_trace_is_valid_json(self, observed_run, tmp_path):
        run, _ = observed_run
        spans = spans_from_json(run.manifest.trace)
        document = trace_to_chrome(spans)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        parsed = json.loads(path.read_text(encoding="utf-8"))
        assert parsed["displayTimeUnit"] == "ms"
        complete = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0


class TestTraceCli:
    def test_run_subcommand_writes_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        chrome = tmp_path / "chrome.json"
        code = main([
            "run", "--dataset", "beer", "--size", "12",
            "--concurrency", "2",
            "--manifest", str(manifest), "--chrome", str(chrome),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "beer / gpt-3.5" in out
        assert manifest.exists()
        assert json.loads(chrome.read_text(encoding="utf-8"))["traceEvents"]

    def test_trace_subcommand_renders_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main([
            "run", "--dataset", "beer", "--size", "12",
            "--manifest", str(manifest),
        ]) == 0
        capsys.readouterr()
        chrome = tmp_path / "chrome.json"
        assert main(["trace", str(manifest), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "Manifest v1" in out
        assert "pipeline.run" in out
        assert "executor.calls" in out
        assert json.loads(chrome.read_text(encoding="utf-8"))["traceEvents"]
