"""End-to-end integration: every task through the full stack."""

import pytest

from repro import PipelineConfig, Preprocessor, SimulatedLLM, load_dataset
from repro.eval import evaluate_pipeline
from repro.llm.cache import CachingClient
from repro.llm.ratelimit import RateLimit, RetryingClient


class TestEveryTaskEndToEnd:
    @pytest.mark.parametrize(
        "name, minimum",
        [("restaurant", 0.85), ("adult", 0.7), ("synthea", 0.4),
         ("beer", 0.75)],
    )
    def test_gpt4_best_setting(self, name, minimum):
        dataset = load_dataset(name, size=100)
        run = evaluate_pipeline(
            SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4"), dataset
        )
        assert run.is_applicable
        assert run.score >= minimum

    def test_deterministic_runs(self, restaurant_dataset):
        config = PipelineConfig(model="gpt-3.5", seed=4)
        a = Preprocessor(SimulatedLLM("gpt-3.5", seed=4), config).run(
            restaurant_dataset
        )
        b = Preprocessor(SimulatedLLM("gpt-3.5", seed=4), config).run(
            restaurant_dataset
        )
        assert a.predictions == b.predictions
        assert a.usage == b.usage


class TestClientStack:
    def test_pipeline_through_cache_and_ratelimit(self, restaurant_dataset):
        """The full production stack: retry(ratelimit(cache(simulated)))."""
        inner = CachingClient(SimulatedLLM("gpt-4"))
        client = RetryingClient(inner, RateLimit(10_000, 10**8))
        config = PipelineConfig(model="gpt-4")
        first = Preprocessor(client, config).run(restaurant_dataset)
        second = Preprocessor(client, config).run(restaurant_dataset)
        assert first.predictions == second.predictions
        assert inner.hits > 0  # the second run was served from cache

    def test_cached_rerun_costs_no_time(self, restaurant_dataset):
        inner = CachingClient(SimulatedLLM("gpt-4"))
        config = PipelineConfig(model="gpt-4")
        Preprocessor(inner, config).run(restaurant_dataset)
        second = Preprocessor(inner, config).run(restaurant_dataset)
        assert second.estimated_seconds == 0.0


class TestFeatureSelectionEndToEnd:
    def test_beer_selection_improves_zero_shot(self):
        from repro.core.feature_selection import FeatureSelection
        from repro.datasets.beer import BEER_SELECTED_FEATURES

        dataset = load_dataset("beer")
        base = PipelineConfig(model="gpt-4", fewshot=0)
        selected = PipelineConfig(
            model="gpt-4", fewshot=0,
            feature_selection=FeatureSelection(keep=BEER_SELECTED_FEATURES),
        )
        run_base = evaluate_pipeline(SimulatedLLM("gpt-4"), base, dataset)
        run_sel = evaluate_pipeline(SimulatedLLM("gpt-4"), selected, dataset)
        assert run_sel.score > run_base.score
