"""The reproduction's headline claims, as executable assertions.

These tests encode the *shape* statements of the paper's evaluation —
who wins, roughly by what factor, where components help or hurt — at
reduced dataset sizes.  Tolerances are generous: the claims are ordinal.
"""

import pytest

from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.core.config import ablation_config
from repro.eval import evaluate_pipeline


def _score(model, dataset, config=None):
    config = config or PipelineConfig(model=model)
    return evaluate_pipeline(SimulatedLLM(model), config, dataset).score


class TestTable1Shape:
    def test_gpt4_dominates_gpt35_overall(self):
        """GPT-4 >= GPT-3.5 on the clear-majority of datasets (Table 1)."""
        wins = 0
        names = ["restaurant", "synthea", "amazon_google", "beer",
                 "walmart_amazon", "hospital"]
        for name in names:
            dataset = load_dataset(name, size=150)
            if _score("gpt-4", dataset) >= _score("gpt-3.5", dataset) - 0.02:
                wins += 1
        assert wins >= len(names) - 1

    def test_fodors_zagat_at_ceiling(self):
        dataset = load_dataset("fodors_zagat", size=150)
        assert _score("gpt-4", dataset) > 0.95

    def test_synthea_is_the_hard_task(self):
        """Every method's worst task: SM on Synthea (best ~66.7 in paper)."""
        synthea = _score("gpt-4", load_dataset("synthea", size=150))
        restaurant = _score("gpt-4", load_dataset("restaurant", size=80))
        assert synthea < 0.85
        assert synthea < restaurant

    def test_vicuna_na_outside_em(self):
        for name in ("adult", "restaurant", "synthea"):
            dataset = load_dataset(name, size=60)
            run = evaluate_pipeline(
                SimulatedLLM("vicuna-13b"),
                PipelineConfig(model="vicuna-13b"), dataset,
            )
            assert not run.is_applicable, name

    def test_vicuna_mediocre_on_em(self):
        dataset = load_dataset("beer")
        run = evaluate_pipeline(
            SimulatedLLM("vicuna-13b"), PipelineConfig(model="vicuna-13b"),
            dataset,
        )
        assert run.is_applicable
        assert run.score < _score("gpt-3.5", dataset)


class TestTable2Shape:
    """The ablation orderings of Table 2 (GPT-3.5)."""

    def test_fewshot_lifts_ed(self):
        dataset = load_dataset("adult", size=250)
        zs = _score("gpt-3.5", dataset, ablation_config("ZS-T"))
        fs = _score("gpt-3.5", dataset, ablation_config("ZS-T+FS"))
        assert fs > zs

    def test_reasoning_lifts_ed_most(self):
        dataset = load_dataset("adult", size=250)
        fs = _score("gpt-3.5", dataset, ablation_config("ZS-T+FS+B"))
        full = _score("gpt-3.5", dataset, ablation_config("ZS-T+FS+B+ZS-R"))
        assert full > fs + 0.1

    def test_reasoning_without_examples_collapses_sm(self):
        dataset = load_dataset("synthea", size=200)
        zs = _score("gpt-3.5", dataset, ablation_config("ZS-T+B"))
        zsr = _score("gpt-3.5", dataset, ablation_config("ZS-T+B+ZS-R"))
        assert zsr < zs  # the paper's 17.4 -> 5.9 drop

    def test_fewshot_lifts_sm(self):
        dataset = load_dataset("synthea", size=200)
        zs = _score("gpt-3.5", dataset, ablation_config("ZS-T"))
        fs = _score("gpt-3.5", dataset, ablation_config("ZS-T+FS"))
        assert fs > zs + 0.1

    def test_batching_roughly_neutral_on_quality(self):
        dataset = load_dataset("buy")
        single = _score("gpt-3.5", dataset, ablation_config("ZS-T+FS"))
        batched = _score("gpt-3.5", dataset, ablation_config("ZS-T+FS+B"))
        assert abs(single - batched) < 0.12


class TestTable3Shape:
    def test_batching_saves_tokens_cost_time(self):
        dataset = load_dataset("adult", size=300)
        runs = {}
        for batch_size in (1, 15):
            config = PipelineConfig(model="gpt-3.5", fewshot=0,
                                    batch_size=batch_size)
            runs[batch_size] = evaluate_pipeline(
                SimulatedLLM("gpt-3.5"), config, dataset
            )
        assert runs[15].total_tokens < runs[1].total_tokens * 0.75
        assert runs[15].cost_usd < runs[1].cost_usd * 0.75
        assert runs[15].hours < runs[1].hours
        # Quality holds (paper: minor fluctuations only).
        assert abs(runs[15].score - runs[1].score) < 0.15


class TestBaselineShape:
    def test_ed_ordering_holodetect_over_holoclean(self):
        from repro.baselines import HoloCleanDetector, HoloDetectDetector
        from repro.eval.metrics import f1_score

        test = load_dataset("hospital", size=250)
        train = load_dataset("hospital", size=250, seed=55)
        labels = [i.label for i in test.instances]
        hc = HoloCleanDetector().fit(test.instances)
        hd = HoloDetectDetector().fit(
            test.instances,
            list(train.fewshot_pool) + list(train.instances[:48]),
        )
        assert f1_score(hd.predict(test.instances), labels) > f1_score(
            hc.predict(test.instances), labels
        )

    def test_sm_ordering_gpt4_over_smat(self):
        from repro.baselines import SMATMatcher
        from repro.eval.metrics import f1_score

        test = load_dataset("synthea", size=200)
        train = load_dataset("synthea", size=300, seed=55)
        labels = [i.label for i in test.instances]
        smat = SMATMatcher().fit(train.instances)
        smat_f1 = f1_score(smat.predict(test.instances), labels)
        gpt4 = _score("gpt-4", test)
        assert gpt4 > smat_f1
