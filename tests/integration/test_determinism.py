"""Determinism across concurrency levels.

The executor issues completion calls in submission order at every lane
count — concurrency changes only the virtual time accounting — so the
simulated LLM must produce bit-identical predictions, usage, and request
counts for any ``concurrency``, and the makespan may only shrink as lanes
are added.  These properties hold on all four tasks (ED/DI/SM/EM).
"""

import pytest

from repro import PipelineConfig, Preprocessor, SimulatedLLM
from repro.core.batching import make_batches
from repro.llm.cache import CachingClient
from repro.text.embeddings import HashingEmbedder

CONCURRENCIES = (1, 2, 8)

#: one dataset fixture per task
TASK_DATASETS = [
    pytest.param("adult_dataset", id="ED-adult"),
    pytest.param("restaurant_dataset", id="DI-restaurant"),
    pytest.param("synthea_dataset", id="SM-synthea"),
    pytest.param("beer_dataset", id="EM-beer"),
]


def _run(dataset, concurrency, model="gpt-3.5", seed=0, observability=False):
    # A fresh client per run: the simulated LLM's reply stream depends on
    # its call sequence, which is exactly what must not vary with lanes.
    client = SimulatedLLM(model, seed=seed)
    config = PipelineConfig(
        model=model,
        concurrency=concurrency,
        seed=seed,
        observability=observability,
    )
    return Preprocessor(client, config).run(dataset)


@pytest.mark.parametrize("fixture_name", TASK_DATASETS)
class TestPredictionsAreConcurrencyInvariant:
    def test_identical_predictions_and_usage(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        baseline = _run(dataset, concurrency=1)
        for concurrency in CONCURRENCIES[1:]:
            result = _run(dataset, concurrency=concurrency)
            assert result.predictions == baseline.predictions
            assert result.usage == baseline.usage
            assert result.n_requests == baseline.n_requests
            assert result.n_fallbacks == baseline.n_fallbacks

    def test_makespan_never_grows_with_lanes(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        seconds = [
            _run(dataset, concurrency=c).estimated_seconds
            for c in CONCURRENCIES
        ]
        assert all(s > 0 for s in seconds)
        assert seconds == sorted(seconds, reverse=True) or (
            # ties allowed (a single batch cannot overlap with itself)
            all(s <= seconds[0] for s in seconds)
        )

    def test_sequential_estimate_is_lane_invariant(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        estimates = {
            round(_run(dataset, concurrency=c).execution.sequential_s, 6)
            for c in CONCURRENCIES
        }
        assert len(estimates) == 1


@pytest.mark.parametrize("fixture_name", TASK_DATASETS)
class TestObservabilityNeverChangesResults:
    """Tracing consumes no randomness and models no time, so turning it
    on must leave predictions, usage, and timing bit-identical."""

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_bit_identical_with_and_without_obs(
        self, fixture_name, concurrency, request
    ):
        dataset = request.getfixturevalue(fixture_name)
        plain = _run(dataset, concurrency=concurrency)
        traced = _run(dataset, concurrency=concurrency, observability=True)
        assert traced.predictions == plain.predictions
        assert traced.usage == plain.usage
        assert traced.n_requests == plain.n_requests
        assert traced.n_fallbacks == plain.n_fallbacks
        assert traced.estimated_seconds == plain.estimated_seconds
        assert traced.execution.sequential_s == plain.execution.sequential_s

    def test_observation_is_populated_only_when_enabled(
        self, fixture_name, request
    ):
        dataset = request.getfixturevalue(fixture_name)
        plain = _run(dataset, concurrency=2)
        traced = _run(dataset, concurrency=2, observability=True)
        assert plain.observation is None
        assert traced.observation is not None
        assert traced.observation.tracer.n_spans > 0
        calls = traced.observation.metrics.snapshot()["counters"]
        assert calls["executor.calls"] == traced.n_requests

    def test_traces_are_reproducible(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        runs = [
            _run(dataset, concurrency=8, observability=True)
            for _ in range(2)
        ]
        dumps = [
            [span.to_dict() for span in run.observation.tracer.spans]
            for run in runs
        ]
        assert dumps[0] == dumps[1]
        snapshots = [run.observation.snapshot() for run in runs]
        assert snapshots[0] == snapshots[1]


def _run_cluster(dataset, concurrency, seed=0):
    client = SimulatedLLM("gpt-3.5", seed=seed)
    config = PipelineConfig(
        model="gpt-3.5",
        concurrency=concurrency,
        seed=seed,
        batching="cluster",
    )
    return Preprocessor(client, config).run(dataset)


@pytest.mark.parametrize("fixture_name", TASK_DATASETS)
class TestVectorizedPrepMatchesScalarPath:
    """The vectorized serialize → embed → cluster kernels must be
    bit-indistinguishable from the scalar reference: same batches, same
    predictions, same accounting, at every lane count."""

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_bit_identical_predictions(
        self, fixture_name, concurrency, request, monkeypatch
    ):
        dataset = request.getfixturevalue(fixture_name)
        vectorized = _run_cluster(dataset, concurrency)
        monkeypatch.setattr(
            HashingEmbedder, "embed_all", HashingEmbedder.embed_all_scalar
        )
        scalar = _run_cluster(dataset, concurrency)
        assert scalar.predictions == vectorized.predictions
        assert scalar.usage == vectorized.usage
        assert scalar.n_requests == vectorized.n_requests
        assert scalar.n_fallbacks == vectorized.n_fallbacks
        assert scalar.estimated_seconds == vectorized.estimated_seconds

    def test_bit_identical_batches(self, fixture_name, request, monkeypatch):
        dataset = request.getfixturevalue(fixture_name)
        instances = list(dataset.instances)
        vectorized = make_batches(instances, 7, mode="cluster", seed=0)
        monkeypatch.setattr(
            HashingEmbedder, "embed_all", HashingEmbedder.embed_all_scalar
        )
        scalar = make_batches(instances, 7, mode="cluster", seed=0)
        assert scalar == vectorized

    def test_prep_stats_populated(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        result = _run_cluster(dataset, concurrency=2)
        assert result.prep is not None
        assert result.prep.serialize_misses > 0
        # Prompt assembly rode the serialization memo.
        assert result.prep.serialize_hits > 0


class TestCacheHitsAreOrderIndependent:
    @pytest.mark.parametrize("fixture_name", TASK_DATASETS)
    def test_hit_and_miss_counts_match(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        counts = set()
        for concurrency in CONCURRENCIES:
            cache = CachingClient(SimulatedLLM("gpt-3.5"))
            config = PipelineConfig(model="gpt-3.5", concurrency=concurrency)
            preprocessor = Preprocessor(cache, config)
            preprocessor.run(dataset)
            first = (cache.hits, cache.misses)
            preprocessor.run(dataset)
            counts.add((first, (cache.hits, cache.misses)))
        assert len(counts) == 1

    def test_second_run_is_all_hits_and_free(self, beer_dataset):
        cache = CachingClient(SimulatedLLM("gpt-3.5"))
        config = PipelineConfig(model="gpt-3.5", concurrency=4)
        preprocessor = Preprocessor(cache, config)
        first = preprocessor.run(beer_dataset)
        second = preprocessor.run(beer_dataset)
        assert second.predictions == first.predictions
        assert second.estimated_seconds == 0.0


class TestConcurrencyOneMatchesSequentialModel:
    def test_makespan_equals_latency_sum(self, beer_dataset):
        result = _run(beer_dataset, concurrency=1)
        report = result.execution
        assert report is not None
        assert report.concurrency == 1
        assert result.estimated_seconds == pytest.approx(report.sequential_s)
        assert report.speedup == pytest.approx(1.0)
