"""Regression tests: cache hits are never double-metered.

A cache hit returns the stored response with ``latency_s`` zeroed, so the
time ledger and the pipeline's hours column must charge nothing for it —
the token usage stays visible (callers may want "tokens that would have
been spent") but wall-clock is what a metered deployment actually waits
for, and a hit waits for nothing.
"""

from repro import PipelineConfig, Preprocessor, SimulatedLLM
from repro.eval.harness import evaluate_pipeline
from repro.llm.accounting import UsageLedger
from repro.llm.cache import CachingClient


class TestLedgerDoesNotRechargeCacheHits:
    def test_cached_response_adds_zero_hours(self, beer_dataset):
        """Metering the hit through the ledger charges tokens but no time."""
        cache = CachingClient(SimulatedLLM("gpt-3.5"))
        ledger = UsageLedger()

        from repro.core.prompts import PromptBuilder
        from repro.llm.base import CompletionRequest

        builder = PromptBuilder(beer_dataset.task, PipelineConfig())
        prompt = builder.build(list(beer_dataset.instances[:2]))
        request = CompletionRequest(
            messages=prompt.messages, model="gpt-3.5", temperature=0.75
        )
        miss = cache.complete(request)
        hit = cache.complete(request)
        ledger.record(request, miss)
        hours_after_miss = ledger.total_hours
        ledger.record(request, hit)

        assert miss.latency_s > 0
        assert hit.latency_s == 0.0
        assert ledger.total_hours == hours_after_miss  # no re-charge
        assert ledger.total_tokens == 2 * miss.usage.total_tokens

    def test_ledger_entry_for_hit_has_zero_latency(self, beer_dataset):
        cache = CachingClient(SimulatedLLM("gpt-3.5"))

        from repro.core.prompts import PromptBuilder
        from repro.llm.base import CompletionRequest

        builder = PromptBuilder(beer_dataset.task, PipelineConfig())
        prompt = builder.build(list(beer_dataset.instances[:1]))
        request = CompletionRequest(
            messages=prompt.messages, model="gpt-3.5", temperature=0.75
        )
        cache.complete(request)
        hit = cache.complete(request)
        entry = UsageLedger().record(request, hit)
        assert entry.latency_s == 0.0


class TestEvaluationHoursExcludeCacheHits:
    def test_second_run_costs_zero_hours(self, beer_dataset):
        """A fully cached evaluation reports hours == 0, not a re-charge."""
        cache = CachingClient(SimulatedLLM("gpt-3.5"))
        config = PipelineConfig(model="gpt-3.5", concurrency=2)
        first = evaluate_pipeline(cache, config, beer_dataset)
        second = evaluate_pipeline(cache, config, beer_dataset)
        assert first.hours > 0
        assert second.hours == 0.0
        assert second.hours_sequential == 0.0
        assert second.score == first.score
        # The tokens column still reports what would have been spent.
        assert second.total_tokens == first.total_tokens

    def test_report_surfaces_hits_and_misses(self, beer_dataset):
        cache = CachingClient(SimulatedLLM("gpt-3.5"))
        config = PipelineConfig(model="gpt-3.5")
        preprocessor = Preprocessor(cache, config)
        first = preprocessor.run(beer_dataset)
        second = preprocessor.run(beer_dataset)
        # Run 1 misses on every fresh prompt (format retries re-send an
        # identical request, so they may already hit); run 2 replays the
        # same request sequence entirely from cache.
        assert first.execution.n_cache_misses > 0
        assert second.execution.n_cache_misses == 0
        assert second.execution.n_cache_hits == (
            first.execution.n_cache_hits + first.execution.n_cache_misses
        )
        assert second.execution.cache_hit_rate == 1.0

    def test_report_renders_cache_line(self, beer_dataset):
        from repro.eval.reporting import render_execution_report

        cache = CachingClient(SimulatedLLM("gpt-3.5"))
        preprocessor = Preprocessor(cache, PipelineConfig(model="gpt-3.5"))
        preprocessor.run(beer_dataset)
        result = preprocessor.run(beer_dataset)
        text = render_execution_report(result.execution)
        assert "cache:" in text
        assert "hit rate 100%" in text

    def test_no_cache_no_cache_line(self, beer_dataset):
        from repro.eval.reporting import render_execution_report

        preprocessor = Preprocessor(
            SimulatedLLM("gpt-3.5"), PipelineConfig(model="gpt-3.5")
        )
        result = preprocessor.run(beer_dataset)
        assert "cache:" not in render_execution_report(result.execution)
