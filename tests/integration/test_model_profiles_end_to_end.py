"""End-to-end behaviour of the remaining model profiles (gpt-3, vicuna).

The main models are exercised everywhere; these tests pin the rows of
Table 1 that belong to the reference completion model and the open 13B
model, at the behavioural level the paper describes.
"""

import pytest

from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.eval import evaluate_pipeline


def _run(model, dataset, **config_kwargs):
    config = PipelineConfig(model=model, **config_kwargs)
    return evaluate_pipeline(SimulatedLLM(model), config, dataset)


class TestGpt3Profile:
    def test_strong_on_ed_zero_shot(self):
        """The paper's GPT-3 row used hand-engineered ED prompts (high
        zero-shot calibration): it must beat GPT-3.5's zero-shot ED."""
        dataset = load_dataset("adult", size=250)
        gpt3 = _run("gpt-3", dataset, fewshot=0, reasoning=True)
        gpt35 = _run("gpt-3.5", dataset, fewshot=0, reasoning=True)
        assert gpt3.score > gpt35.score

    def test_competitive_overall(self):
        dataset = load_dataset("restaurant")
        run = _run("gpt-3", dataset)
        assert run.score > 0.8

    def test_weak_on_schema_matching(self):
        """GPT-3's SM (45.2) trails GPT-4's (66.7) in the paper."""
        dataset = load_dataset("synthea", size=250)
        gpt3 = _run("gpt-3", dataset)
        gpt4 = _run("gpt-4", dataset)
        assert gpt4.score > gpt3.score


class TestVicunaProfile:
    def test_small_batch_limit(self):
        from repro.core.config import DEFAULT_BATCH_SIZE

        assert DEFAULT_BATCH_SIZE["vicuna-13b"] <= 2  # paper: range [1, 2]

    def test_free_but_slow(self):
        """Self-hosted: zero dollars, nonzero wall-clock."""
        dataset = load_dataset("beer", size=60)
        run = _run("vicuna-13b", dataset)
        assert run.cost_usd == 0.0
        assert run.hours > 0.0

    def test_many_more_requests_than_gpt(self):
        dataset = load_dataset("beer", size=60)
        vicuna = _run("vicuna-13b", dataset)
        gpt = _run("gpt-3.5", dataset)
        assert vicuna.n_requests > gpt.n_requests * 3

    def test_below_every_gpt_model_on_em(self):
        dataset = load_dataset("fodors_zagat", size=100)
        vicuna = _run("vicuna-13b", dataset)
        for model in ("gpt-3", "gpt-3.5", "gpt-4"):
            other = _run(model, dataset)
            assert (vicuna.score or 0.0) < other.score
