"""Failure injection: the pipeline under a misbehaving API.

Production LLM pipelines survive flaky clients; these tests inject
transient garbage, intermittent rate-limit storms, partially-numbered
replies, and abrupt context-window changes, and assert the stack degrades
gracefully (correct alignment, counted fallbacks, no crashes).

The executor-era matrix at the bottom drives the scripted
:class:`~repro.llm.faults.FaultInjectingClient` through the
:class:`~repro.core.executor.BatchExecutor`: timeout-then-retry-success,
retries-exhausted, circuit-breaker trip with fallback to smaller batches,
and rate-limit stalls under lane contention — each asserting the
``ExecutionReport`` counters.
"""

import pytest

from repro import PipelineConfig, Preprocessor, SimulatedLLM
from repro.core.executor import ExecutorConfig
from repro.errors import ContextWindowExceededError, RateLimitError
from repro.llm.accounting import meter_response
from repro.llm.base import CompletionRequest, CompletionResponse
from repro.llm.faults import Fault, FaultInjectingClient, fail_first
from repro.llm.profiles import get_profile
from repro.llm.ratelimit import RateLimit, RetryingClient, SimulatedClock


class _FlakyClient:
    """Returns garbage on the first attempt of every batch, then recovers."""

    def __init__(self, inner):
        self._inner = inner
        self._seen: set[tuple] = set()

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        key = tuple(request.transcript)
        if key not in self._seen:
            self._seen.add(key)
            return meter_response(
                get_profile(request.model), request, "ERROR: upstream glitch"
            )
        return self._inner.complete(request)


class _PartialClient:
    """Answers only the odd-numbered questions of every batch."""

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        final = request.messages[-1].content
        count = final.count("Question ")
        blocks = [
            f"Answer {i}: yes" for i in range(1, count + 1) if i % 2 == 1
        ]
        return meter_response(
            get_profile(request.model), request, "\n".join(blocks)
        )


class _StormyLimiter:
    """A client that raises RateLimitError on every other call."""

    def __init__(self, inner):
        self._inner = inner
        self._calls = 0

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self._calls += 1
        if self._calls % 2 == 1:
            raise RateLimitError(retry_after=0.5)
        return self._inner.complete(request)


class _ShrinkingWindowClient:
    """Starts refusing prompts over a budget after the first call."""

    def __init__(self, inner, budget):
        self._inner = inner
        self._budget = budget
        self._calls = 0

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        from repro.llm.accounting import request_prompt_tokens

        self._calls += 1
        if self._calls > 1 and request_prompt_tokens(request) > self._budget:
            raise ContextWindowExceededError(
                request.model, request_prompt_tokens(request), self._budget
            )
        return self._inner.complete(request)


class TestTransientGarbage:
    def test_retry_recovers_everything(self, restaurant_dataset):
        client = _FlakyClient(SimulatedLLM("gpt-4"))
        result = Preprocessor(
            client, PipelineConfig(model="gpt-4", max_format_retries=1)
        ).run(restaurant_dataset)
        assert result.n_fallbacks == 0
        assert result.n_format_retries > 0
        assert all(p for p in result.predictions)

    def test_no_retry_budget_counts_fallbacks(self, restaurant_dataset):
        client = _FlakyClient(SimulatedLLM("gpt-4"))
        result = Preprocessor(
            client, PipelineConfig(model="gpt-4", max_format_retries=0)
        ).run(restaurant_dataset)
        assert result.n_fallbacks == len(restaurant_dataset.instances)


class TestPartialReplies:
    def test_salvage_preserves_alignment(self, beer_dataset):
        result = Preprocessor(
            _PartialClient(),
            PipelineConfig(model="gpt-3.5", batch_size=4,
                           max_format_retries=0),
        ).run(beer_dataset)
        n = len(beer_dataset.instances)
        yes_count = sum(1 for p in result.predictions if p is True)
        no_count = sum(1 for p in result.predictions if p is False)
        assert yes_count + no_count == n
        # Odd positions answered yes, even positions fell back to no.
        assert yes_count > 0 and no_count > 0
        assert result.n_fallbacks == no_count


class TestRateLimitStorm:
    def test_retrying_client_rides_it_out(self, restaurant_dataset):
        stormy = _StormyLimiter(SimulatedLLM("gpt-4"))
        client = RetryingClient(
            stormy, RateLimit(10**6, 10**9), clock=SimulatedClock(),
            max_retries=3,
        )
        # RetryingClient only handles its own limiter; upstream 429s
        # surface to the pipeline, so wrap manually here.
        class _Wrapper:
            def complete(self, request):
                for __ in range(4):
                    try:
                        return client.complete(request)
                    except RateLimitError:
                        continue
                raise RateLimitError(1.0)

        result = Preprocessor(
            _Wrapper(), PipelineConfig(model="gpt-4")
        ).run(restaurant_dataset)
        assert result.n_fallbacks == 0


class TestWindowShrink:
    def test_batch_splitting_adapts(self, restaurant_dataset):
        client = _ShrinkingWindowClient(SimulatedLLM("gpt-4"), budget=1200)
        result = Preprocessor(
            client, PipelineConfig(model="gpt-4", batch_size=12)
        ).run(restaurant_dataset)
        assert len(result.predictions) == len(restaurant_dataset.instances)
        assert result.n_fallbacks < len(restaurant_dataset.instances) * 0.2


# --------------------------------------------------------------------------
# Executor fault matrix: scripted faults through the concurrent executor.
# --------------------------------------------------------------------------


def _run_with_faults(dataset, plan, executor_config, **config_kwargs):
    client = FaultInjectingClient(SimulatedLLM("gpt-4"), plan)
    config = PipelineConfig(model="gpt-4", **config_kwargs)
    result = Preprocessor(client, config, executor_config).run(dataset)
    assert len(result.predictions) == len(dataset.instances)
    return result, client


class TestTimeoutThenRetrySuccess:
    def test_spike_times_out_and_retry_recovers(self, restaurant_dataset):
        result, client = _run_with_faults(
            restaurant_dataset,
            {1: Fault("latency", latency_s=500.0)},
            ExecutorConfig(timeout_s=60.0, max_attempts=3),
        )
        report = result.execution
        assert report.n_timeouts == 1
        assert report.n_retries == 1
        assert report.n_giveups == 0
        assert report.n_fallback_splits == 0
        assert result.n_fallbacks == 0
        # The lane was charged the 60s deadline, not the 500s spike.
        assert report.sequential_s < 500.0

    def test_without_timeout_the_spike_is_paid_in_full(self, restaurant_dataset):
        result, __ = _run_with_faults(
            restaurant_dataset,
            {1: Fault("latency", latency_s=500.0)},
            ExecutorConfig(timeout_s=None),
        )
        report = result.execution
        assert report.n_timeouts == 0
        assert report.sequential_s > 500.0


class TestRetriesExhausted:
    def test_giveup_splits_then_succeeds(self, restaurant_dataset):
        # Calls 1-3 fail: the first batch exhausts its three attempts and
        # is split in half; both halves then get through.
        result, __ = _run_with_faults(
            restaurant_dataset,
            fail_first(3, Fault("transient", latency_s=1.0)),
            ExecutorConfig(max_attempts=3, breaker_threshold=0),
        )
        report = result.execution
        assert report.n_giveups == 1
        assert report.n_retries == 2
        assert report.n_fallback_splits == 2
        assert result.n_fallbacks == 0

    def test_single_instance_giveup_falls_back(self, restaurant_dataset):
        # batch_size=1 leaves nothing to split: the first instance becomes
        # a safe fallback answer.
        result, __ = _run_with_faults(
            restaurant_dataset,
            fail_first(2, Fault("transient")),
            ExecutorConfig(max_attempts=2, breaker_threshold=0),
            batch_size=1,
        )
        report = result.execution
        assert report.n_giveups == 1
        assert report.n_fallback_splits == 0
        assert result.n_fallbacks == 1
        # Exactly one instance got DI's safe fallback answer (batching
        # shuffles, so its position is seed-dependent).
        assert sum(1 for p in result.predictions if p == "") == 1


class TestCircuitBreakerTripAndDegrade:
    def test_trip_then_fallback_to_smaller_batches(self, restaurant_dataset):
        # A burst of consecutive failures: attempts exhaust (give-up →
        # split into smaller batches) and the lane's breaker trips along
        # the way; the run still completes every instance.
        result, __ = _run_with_faults(
            restaurant_dataset,
            fail_first(6, Fault("transient", latency_s=1.0)),
            ExecutorConfig(
                max_attempts=2, breaker_threshold=3,
                breaker_cooldown_s=120.0,
            ),
        )
        report = result.execution
        assert report.n_breaker_trips >= 1
        assert report.n_giveups >= 2
        assert report.n_fallback_splits >= 2
        # Degradation, not collapse: most instances still answered.
        assert result.n_fallbacks < len(restaurant_dataset.instances) * 0.3
        # The cooldown is visible in the modeled wall-clock.
        assert result.estimated_seconds >= 120.0

    def test_breaker_cooldown_respected_across_batches(self, beer_dataset):
        result, __ = _run_with_faults(
            beer_dataset,
            fail_first(3, Fault("transient")),
            ExecutorConfig(
                max_attempts=4, breaker_threshold=3,
                breaker_cooldown_s=300.0,
            ),
        )
        report = result.execution
        assert report.n_breaker_trips == 1
        assert report.n_giveups == 0
        assert result.n_fallbacks == 0
        assert result.estimated_seconds >= 300.0


class TestRateLimitStallUnderContention:
    def test_lanes_contend_for_one_global_budget(self, restaurant_dataset):
        client = SimulatedLLM("gpt-4")
        config = PipelineConfig(model="gpt-4", concurrency=4)
        limited = ExecutorConfig(rate_limit=RateLimit(3, 10**9))
        result = Preprocessor(client, config, limited).run(restaurant_dataset)
        report = result.execution
        assert result.n_requests > 3  # enough traffic to contend
        assert report.n_rate_limit_waits >= 1
        assert report.n_giveups == 0
        assert result.n_fallbacks == 0
        # Stalls push the makespan past the window boundary.
        assert result.estimated_seconds >= 60.0

    def test_stalls_do_not_change_predictions(self, restaurant_dataset):
        free = Preprocessor(
            SimulatedLLM("gpt-4"),
            PipelineConfig(model="gpt-4", concurrency=4),
        ).run(restaurant_dataset)
        limited = Preprocessor(
            SimulatedLLM("gpt-4"),
            PipelineConfig(model="gpt-4", concurrency=4),
            ExecutorConfig(rate_limit=RateLimit(3, 10**9)),
        ).run(restaurant_dataset)
        assert limited.predictions == free.predictions
        assert limited.estimated_seconds > free.estimated_seconds
