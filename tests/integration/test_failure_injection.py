"""Failure injection: the pipeline under a misbehaving API.

Production LLM pipelines survive flaky clients; these tests inject
transient garbage, intermittent rate-limit storms, partially-numbered
replies, and abrupt context-window changes, and assert the stack degrades
gracefully (correct alignment, counted fallbacks, no crashes).
"""

import pytest

from repro import PipelineConfig, Preprocessor, SimulatedLLM
from repro.errors import ContextWindowExceededError, RateLimitError
from repro.llm.accounting import meter_response
from repro.llm.base import CompletionRequest, CompletionResponse
from repro.llm.profiles import get_profile
from repro.llm.ratelimit import RateLimit, RetryingClient, SimulatedClock


class _FlakyClient:
    """Returns garbage on the first attempt of every batch, then recovers."""

    def __init__(self, inner):
        self._inner = inner
        self._seen: set[tuple] = set()

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        key = tuple(request.transcript)
        if key not in self._seen:
            self._seen.add(key)
            return meter_response(
                get_profile(request.model), request, "ERROR: upstream glitch"
            )
        return self._inner.complete(request)


class _PartialClient:
    """Answers only the odd-numbered questions of every batch."""

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        final = request.messages[-1].content
        count = final.count("Question ")
        blocks = [
            f"Answer {i}: yes" for i in range(1, count + 1) if i % 2 == 1
        ]
        return meter_response(
            get_profile(request.model), request, "\n".join(blocks)
        )


class _StormyLimiter:
    """A client that raises RateLimitError on every other call."""

    def __init__(self, inner):
        self._inner = inner
        self._calls = 0

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self._calls += 1
        if self._calls % 2 == 1:
            raise RateLimitError(retry_after=0.5)
        return self._inner.complete(request)


class _ShrinkingWindowClient:
    """Starts refusing prompts over a budget after the first call."""

    def __init__(self, inner, budget):
        self._inner = inner
        self._budget = budget
        self._calls = 0

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        from repro.llm.accounting import request_prompt_tokens

        self._calls += 1
        if self._calls > 1 and request_prompt_tokens(request) > self._budget:
            raise ContextWindowExceededError(
                request.model, request_prompt_tokens(request), self._budget
            )
        return self._inner.complete(request)


class TestTransientGarbage:
    def test_retry_recovers_everything(self, restaurant_dataset):
        client = _FlakyClient(SimulatedLLM("gpt-4"))
        result = Preprocessor(
            client, PipelineConfig(model="gpt-4", max_format_retries=1)
        ).run(restaurant_dataset)
        assert result.n_fallbacks == 0
        assert result.n_format_retries > 0
        assert all(p for p in result.predictions)

    def test_no_retry_budget_counts_fallbacks(self, restaurant_dataset):
        client = _FlakyClient(SimulatedLLM("gpt-4"))
        result = Preprocessor(
            client, PipelineConfig(model="gpt-4", max_format_retries=0)
        ).run(restaurant_dataset)
        assert result.n_fallbacks == len(restaurant_dataset.instances)


class TestPartialReplies:
    def test_salvage_preserves_alignment(self, beer_dataset):
        result = Preprocessor(
            _PartialClient(),
            PipelineConfig(model="gpt-3.5", batch_size=4,
                           max_format_retries=0),
        ).run(beer_dataset)
        n = len(beer_dataset.instances)
        yes_count = sum(1 for p in result.predictions if p is True)
        no_count = sum(1 for p in result.predictions if p is False)
        assert yes_count + no_count == n
        # Odd positions answered yes, even positions fell back to no.
        assert yes_count > 0 and no_count > 0
        assert result.n_fallbacks == no_count


class TestRateLimitStorm:
    def test_retrying_client_rides_it_out(self, restaurant_dataset):
        stormy = _StormyLimiter(SimulatedLLM("gpt-4"))
        client = RetryingClient(
            stormy, RateLimit(10**6, 10**9), clock=SimulatedClock(),
            max_retries=3,
        )
        # RetryingClient only handles its own limiter; upstream 429s
        # surface to the pipeline, so wrap manually here.
        class _Wrapper:
            def complete(self, request):
                for __ in range(4):
                    try:
                        return client.complete(request)
                    except RateLimitError:
                        continue
                raise RateLimitError(1.0)

        result = Preprocessor(
            _Wrapper(), PipelineConfig(model="gpt-4")
        ).run(restaurant_dataset)
        assert result.n_fallbacks == 0


class TestWindowShrink:
    def test_batch_splitting_adapts(self, restaurant_dataset):
        client = _ShrinkingWindowClient(SimulatedLLM("gpt-4"), budget=1200)
        result = Preprocessor(
            client, PipelineConfig(model="gpt-4", batch_size=12)
        ).run(restaurant_dataset)
        assert len(result.predictions) == len(restaurant_dataset.instances)
        assert result.n_fallbacks < len(restaurant_dataset.instances) * 0.2
