"""AIMD lane adaptation and breaker transition accounting in the executor.

The controller itself is pure arithmetic; the integration contract is
that throttle signals narrow the usable width, successes widen it back,
breaker transitions are counted in the report, and — crucially — a run
without a :class:`ResilienceConfig` is bit-identical to the historical
executor (no new report fields, no new checkpoint content).
"""

import dataclasses

import pytest

from repro.core.executor import BatchExecutor, ExecutorConfig
from repro.errors import ExecutionGiveUpError
from repro.llm.base import (
    ChatMessage,
    CompletionRequest,
    CompletionResponse,
    Usage,
)
from repro.llm.faults import Fault, FaultInjectingClient, fail_first
from repro.resilience import AimdController, ResilienceConfig


def _request(i=1):
    return CompletionRequest(
        messages=(ChatMessage(role="user", content=f"Question {i}: ping"),),
        model="gpt-3.5",
    )


class _Served:
    def __init__(self, latency_s=1.0):
        self.latency_s = latency_s
        self.n_calls = 0

    def complete(self, request):
        self.n_calls += 1
        return CompletionResponse(
            text="Answer 1: yes", model=request.model,
            usage=Usage(prompt_tokens=10, completion_tokens=5),
            latency_s=self.latency_s,
        )


class TestAimdController:
    def test_width_starts_at_full_concurrency(self):
        controller = AimdController(ResilienceConfig(), 4)
        assert controller.width == 4

    def test_throttle_halves_success_creeps_back(self):
        controller = AimdController(ResilienceConfig(), 4)
        controller.on_throttle()
        assert controller.fractional_width == pytest.approx(2.0)
        controller.on_throttle()
        assert controller.fractional_width == pytest.approx(1.0)
        for __ in range(12):
            controller.on_success()
        assert controller.width == 4  # capped at concurrency

    def test_width_never_leaves_bounds(self):
        controller = AimdController(ResilienceConfig(), 3)
        for __ in range(50):
            controller.on_throttle()
            assert 1 <= controller.width <= 3
        for __ in range(50):
            controller.on_success()
            assert 1 <= controller.width <= 3

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            AimdController(ResilienceConfig(), 0)

    def test_checkpoint_roundtrip(self):
        controller = AimdController(ResilienceConfig(), 4)
        controller.on_throttle()
        controller.on_success()
        resumed = AimdController(ResilienceConfig(), 4)
        resumed.restore_checkpoint_state(controller.checkpoint_state())
        assert resumed.fractional_width == controller.fractional_width
        assert resumed.n_throttle_events == controller.n_throttle_events


class TestExecutorAimd:
    def test_upstream_throttles_narrow_the_width(self):
        client = FaultInjectingClient(
            _Served(),
            fail_first(2, Fault(kind="rate_limit", retry_after=1.0)),
        )
        executor = BatchExecutor(
            client,
            ExecutorConfig(concurrency=4, resilience=ResilienceConfig()),
        )
        executor.call(_request())
        aimd_state = executor.checkpoint_state()["aimd"]
        # two 429s halved 4 -> 2 -> 1; the success added 0.25 back
        assert aimd_state["n_throttle_events"] == 2
        assert aimd_state["width"] == pytest.approx(1.25)

    def test_width_recovers_under_success(self):
        executor = BatchExecutor(
            _Served(),
            ExecutorConfig(concurrency=2, resilience=ResilienceConfig()),
        )
        for i in range(8):
            executor.call(_request(i))
        aimd_state = executor.checkpoint_state()["aimd"]
        assert aimd_state["width"] == pytest.approx(2.0)
        assert aimd_state["n_success_events"] == 8

    def test_no_resilience_means_no_aimd_state(self):
        executor = BatchExecutor(_Served(), ExecutorConfig(concurrency=4))
        executor.call(_request())
        assert executor.checkpoint_state()["aimd"] is None


class TestBreakerTransitions:
    def _tripped_executor(self):
        client = FaultInjectingClient(
            _Served(),
            fail_first(2, Fault(kind="transient", latency_s=1.0)),
        )
        executor = BatchExecutor(
            client,
            ExecutorConfig(
                concurrency=1, max_attempts=2, breaker_threshold=2
            ),
        )
        return executor

    def test_trip_probe_close_are_counted(self):
        executor = self._tripped_executor()
        with pytest.raises(ExecutionGiveUpError):
            executor.call(_request(1))
        report = executor.report()
        assert report.n_breaker_trips == 1
        assert report.breaker_transitions["open"] == 1
        # the next call on the tripped lane is the half-open probe; the
        # healed client closes the circuit again
        executor.call(_request(2))
        transitions = executor.report().breaker_transitions
        assert transitions == {"open": 1, "half_open": 1, "close": 1}

    def test_transitions_ride_outside_the_dataclass_fields(self):
        # Run manifests serialize the report via dataclasses.asdict; the
        # transition counters must not change those bytes.
        executor = self._tripped_executor()
        with pytest.raises(ExecutionGiveUpError):
            executor.call(_request(1))
        report = executor.report()
        assert "breaker_transitions" not in dataclasses.asdict(report)
        assert report.breaker_transitions["open"] == 1

    def test_checkpoint_roundtrip_restores_circuit_view(self):
        executor = self._tripped_executor()
        with pytest.raises(ExecutionGiveUpError):
            executor.call(_request(1))
        state = executor.checkpoint_state()
        assert state["circuit"]["lanes"] == ["open"]
        resumed = self._tripped_executor()
        resumed.restore_checkpoint_state(state)
        assert resumed.report().breaker_transitions["open"] == 1

    def test_legacy_checkpoints_without_resilience_keys_restore(self):
        # Journals written before the resilience PR carry no "aimd" or
        # "circuit" keys; restoring them must keep working.
        executor = BatchExecutor(_Served(), ExecutorConfig())
        executor.call(_request())
        state = executor.checkpoint_state()
        state.pop("aimd")
        state.pop("circuit")
        resumed = BatchExecutor(_Served(), ExecutorConfig())
        resumed.restore_checkpoint_state(state)
        resumed.call(_request(2))  # still schedules fine
