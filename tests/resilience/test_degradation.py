"""The deterministic degradation model: episodes, plans, and DegradedClient.

Every behaviour here must be a pure function of (plan seed, virtual
clock): which episode covers an instant, whether a particular call inside
an episode is hit, and what the hit does to the call.  No global RNG, no
wall time.
"""

import pytest

from repro.errors import RateLimitError, TransientLLMError
from repro.llm.base import (
    ChatMessage,
    CompletionRequest,
    CompletionResponse,
    Usage,
)
from repro.llm.faults import DegradedClient
from repro.resilience import (
    EPISODE_KINDS,
    DegradationPlan,
    Episode,
    ThrottleSignal,
    attach,
    blackout_plan,
    brownout_plan,
    throttle_of,
)


def _request(i=1):
    return CompletionRequest(
        messages=(ChatMessage(role="user", content=f"Question {i}: ping"),),
        model="gpt-3.5",
    )


class _Inner:
    """Serves a canned reply with a fixed modeled latency."""

    def __init__(self, latency_s=2.0):
        self.latency_s = latency_s
        self.n_calls = 0

    def complete(self, request):
        self.n_calls += 1
        return CompletionResponse(
            text="Answer 1: yes",
            model=request.model,
            usage=Usage(prompt_tokens=10, completion_tokens=5),
            latency_s=self.latency_s,
        )


class TestEpisode:
    def test_window_is_half_open(self):
        episode = Episode(kind="blackout", start_s=5.0, duration_s=10.0)
        assert not episode.active(4.999)
        assert episode.active(5.0)
        assert episode.active(14.999)
        assert not episode.active(15.0)
        assert episode.end_s == 15.0

    @pytest.mark.parametrize("kwargs", [
        {"kind": "meteor_strike", "start_s": 0.0, "duration_s": 1.0},
        {"kind": "blackout", "start_s": -1.0, "duration_s": 1.0},
        {"kind": "blackout", "start_s": 0.0, "duration_s": 0.0},
        {"kind": "blackout", "start_s": 0.0, "duration_s": 1.0,
         "intensity": 1.5},
        {"kind": "blackout", "start_s": 0.0, "duration_s": 1.0,
         "intensity": -0.1},
        {"kind": "blackout", "start_s": 0.0, "duration_s": 1.0,
         "retry_after_s": -1.0},
        {"kind": "latency_brownout", "start_s": 0.0, "duration_s": 1.0,
         "latency_factor": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Episode(**kwargs)


class TestDegradationPlan:
    def test_episode_at_returns_first_active(self):
        plan = DegradationPlan(episodes=(
            Episode(kind="rate_limit_storm", start_s=0.0, duration_s=10.0),
            Episode(kind="blackout", start_s=5.0, duration_s=10.0),
        ))
        index, episode = plan.episode_at(7.0)
        assert index == 0 and episode.kind == "rate_limit_storm"
        index, episode = plan.episode_at(12.0)
        assert index == 1 and episode.kind == "blackout"
        assert plan.episode_at(20.0) is None

    def test_decide_is_deterministic_and_honours_extremes(self):
        plan = DegradationPlan(seed=7)
        for ordinal in range(50):
            assert plan.decide(0, ordinal, 1.0)
            assert not plan.decide(0, ordinal, 0.0)
            assert plan.decide(1, ordinal, 0.5) == plan.decide(1, ordinal, 0.5)

    def test_decide_hit_rate_tracks_probability(self):
        plan = DegradationPlan(seed=0)
        hits = sum(plan.decide(0, i, 0.7) for i in range(400))
        assert 0.55 <= hits / 400 <= 0.85

    def test_different_seeds_give_different_scripts(self):
        a = DegradationPlan(seed=0)
        b = DegradationPlan(seed=1)
        decisions_a = [a.decide(0, i, 0.5) for i in range(64)]
        decisions_b = [b.decide(0, i, 0.5) for i in range(64)]
        assert decisions_a != decisions_b

    def test_payload_roundtrip(self):
        plan = brownout_plan(seed=3, latency_factor=5.0)
        assert DegradationPlan.from_payload(plan.payload()) == plan

    def test_brownout_plan_has_three_contiguous_phases(self):
        plan = brownout_plan(seed=0, start_s=5.0, duration_s=30.0)
        kinds = [episode.kind for episode in plan.episodes]
        assert kinds == ["rate_limit_storm", "latency_brownout", "overload"]
        for left, right in zip(plan.episodes, plan.episodes[1:]):
            assert left.end_s == pytest.approx(right.start_s)
        assert plan.episodes[0].start_s == 5.0
        assert plan.episodes[-1].end_s == pytest.approx(35.0)

    def test_blackout_plan_is_total(self):
        plan = blackout_plan(seed=0, start_s=2.0, duration_s=8.0)
        (episode,) = plan.episodes
        assert episode.kind == "blackout"
        assert episode.intensity == 1.0
        assert set(k for k in EPISODE_KINDS) >= {episode.kind}


class TestThrottleSignal:
    def test_attach_and_recover(self):
        exc = TransientLLMError("overloaded", latency_s=1.0)
        signal = ThrottleSignal(kind="overloaded", retry_after_s=2.0,
                                backend="primary")
        assert throttle_of(attach(exc, signal)) is signal

    def test_bare_rate_limit_is_synthesized(self):
        signal = throttle_of(RateLimitError(4.0))
        assert signal is not None
        assert signal.kind == "rate_limit"
        assert signal.retry_after_s == 4.0

    def test_plain_errors_carry_no_signal(self):
        assert throttle_of(TransientLLMError("boom")) is None

    @pytest.mark.parametrize("kwargs", [
        {"kind": "tantrum"},
        {"kind": "rate_limit", "retry_after_s": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ThrottleSignal(**kwargs)


class TestDegradedClient:
    def _client(self, plan, inner=None):
        return DegradedClient(inner or _Inner(), plan, backend_name="primary")

    def test_outside_every_window_calls_pass_through(self):
        client = self._client(blackout_plan(start_s=10.0, duration_s=5.0))
        client.observe_time(0.0)
        reply = client.complete(_request())
        assert reply.text == "Answer 1: yes"
        assert client.n_blackouts == 0

    def test_storm_raises_429_with_scripted_retry_after(self):
        plan = DegradationPlan(episodes=(
            Episode(kind="rate_limit_storm", start_s=0.0, duration_s=10.0,
                    intensity=1.0, retry_after_s=3.5),
        ))
        client = self._client(plan)
        client.observe_time(1.0)
        with pytest.raises(RateLimitError) as info:
            client.complete(_request())
        assert info.value.retry_after == 3.5
        signal = throttle_of(info.value)
        assert signal.kind == "rate_limit" and signal.backend == "primary"
        assert client.n_throttled == 1

    @pytest.mark.parametrize("kind,counter", [
        ("overload", "n_overloads"),
        ("blackout", "n_blackouts"),
    ])
    def test_rejections_burn_scripted_latency(self, kind, counter):
        plan = DegradationPlan(episodes=(
            Episode(kind=kind, start_s=0.0, duration_s=10.0,
                    intensity=1.0, retry_after_s=2.5),
        ))
        client = self._client(plan)
        client.observe_time(1.0)
        with pytest.raises(TransientLLMError) as info:
            client.complete(_request())
        assert info.value.latency_s == 2.5
        assert throttle_of(info.value).kind == "overloaded"
        assert getattr(client, counter) == 1

    def test_brownout_slows_but_serves(self):
        plan = DegradationPlan(episodes=(
            Episode(kind="latency_brownout", start_s=0.0, duration_s=10.0,
                    intensity=1.0, latency_factor=6.0),
        ))
        client = self._client(plan, inner=_Inner(latency_s=2.0))
        client.observe_time(1.0)
        reply = client.complete(_request())
        assert reply.latency_s == pytest.approx(12.0)
        assert reply.text == "Answer 1: yes"
        assert client.n_slowed == 1

    def test_clock_adopts_the_current_attempt(self):
        # observe_time is not a running maximum: a sibling lane observing
        # a *later* instant must not pull this call out of the window.
        plan = blackout_plan(start_s=0.0, duration_s=10.0)
        client = self._client(plan)
        client.observe_time(50.0)
        client.observe_time(5.0)   # back inside the blackout
        with pytest.raises(TransientLLMError):
            client.complete(_request())
        assert client.n_blackouts == 1

    def test_partial_intensity_is_decided_per_ordinal(self):
        plan = DegradationPlan(seed=0, episodes=(
            Episode(kind="rate_limit_storm", start_s=0.0, duration_s=1e6,
                    intensity=0.5, retry_after_s=1.0),
        ))
        client = self._client(plan)
        client.observe_time(1.0)
        outcomes = []
        for i in range(40):
            try:
                client.complete(_request(i))
                outcomes.append("served")
            except RateLimitError:
                outcomes.append("throttled")
        assert set(outcomes) == {"served", "throttled"}
        # Same plan, fresh client: the exact same script replays.
        replay_client = self._client(plan)
        replay_client.observe_time(1.0)
        replay = []
        for i in range(40):
            try:
                replay_client.complete(_request(i))
                replay.append("served")
            except RateLimitError:
                replay.append("throttled")
        assert replay == outcomes

    def test_checkpoint_roundtrip_continues_the_script(self):
        plan = DegradationPlan(seed=0, episodes=(
            Episode(kind="rate_limit_storm", start_s=0.0, duration_s=1e6,
                    intensity=0.5, retry_after_s=1.0),
        ))
        original = self._client(plan)
        original.observe_time(1.0)
        for i in range(10):
            try:
                original.complete(_request(i))
            except RateLimitError:
                pass
        resumed = self._client(plan)
        resumed.restore_checkpoint_state(original.checkpoint_state())
        for i in range(10, 20):
            for client in (original, resumed):
                client.observe_time(1.0)
            outcome = []
            for client in (original, resumed):
                try:
                    client.complete(_request(i))
                    outcome.append("served")
                except RateLimitError:
                    outcome.append("throttled")
            assert outcome[0] == outcome[1]
        assert resumed.checkpoint_state() == original.checkpoint_state()
