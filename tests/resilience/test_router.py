"""Failover routing, hedging, circuit recovery, and shedding verdicts.

The router's contract: calls land on the highest-priority routable
backend; retryable failures fail over down the pool with burned time
charged to the winner; slow-but-served primaries get hedged and the
first reply to land wins; open circuits are probed on a deterministic
schedule.  All of it on the fed-in virtual clock.
"""

import pytest

from repro.errors import LLMError, RateLimitError, TransientLLMError
from repro.llm.base import (
    ChatMessage,
    CompletionRequest,
    CompletionResponse,
    Usage,
)
from repro.llm.backend import SimulatedBackend
from repro.resilience import (
    FailoverClient,
    PoolBackend,
    PoolMember,
    ResilienceConfig,
    throttle_of,
)


def _request(i=1):
    return CompletionRequest(
        messages=(ChatMessage(role="user", content=f"Question {i}: ping"),),
        model="gpt-3.5",
    )


class _Served:
    """Serves a canned reply with a fixed modeled latency."""

    def __init__(self, latency_s=1.0, text="Answer 1: yes",
                 usage=Usage(prompt_tokens=10, completion_tokens=5)):
        self.latency_s = latency_s
        self.text = text
        self.usage = usage
        self.n_calls = 0

    def complete(self, request):
        self.n_calls += 1
        return CompletionResponse(
            text=self.text, model=request.model,
            usage=self.usage, latency_s=self.latency_s,
        )


class _Flaky(_Served):
    """Fails with a scripted error while ``failing`` is set."""

    def __init__(self, exc_factory, **kwargs):
        super().__init__(**kwargs)
        self._exc_factory = exc_factory
        self.failing = True

    def complete(self, request):
        if self.failing:
            self.n_calls += 1
            raise self._exc_factory()
        return super().complete(request)


#: hedging off, circuit effectively disabled — isolates pure routing
_PLAIN = ResilienceConfig(hedge=False, circuit_error_threshold=1.0)


class TestConstruction:
    def test_empty_pool_is_rejected(self):
        with pytest.raises(LLMError):
            FailoverClient([])

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(LLMError):
            FailoverClient([("a", 0, _Served()), ("a", 1, _Served())])

    def test_order_sorts_on_priority_then_name(self):
        pool = [("zeta", 0, _Served()), ("beta", 1, _Served()),
                ("alpha", 1, _Served())]
        client = FailoverClient(pool, _PLAIN)
        assert client.order == ("zeta", "alpha", "beta")

    def test_order_ignores_constructor_sequence(self):
        pool = [("a", 1, _Served()), ("b", 0, _Served()), ("c", 2, _Served())]
        forward = FailoverClient(pool, _PLAIN)
        backward = FailoverClient(list(reversed(pool)), _PLAIN)
        assert forward.order == backward.order == ("b", "a", "c")


class TestFailover:
    def test_failure_routes_to_secondary_and_charges_burned_time(self):
        primary = _Flaky(lambda: RateLimitError(3.0))
        secondary = _Served(latency_s=1.0, text="Answer 1: no")
        client = FailoverClient(
            [("primary", 0, primary), ("secondary", 1, secondary)], _PLAIN
        )
        reply = client.complete(_request())
        assert reply.text == "Answer 1: no"
        # 3.0s burned on the 429 + the secondary's own 1.0s
        assert reply.latency_s == pytest.approx(4.0)
        assert client.n_failovers == 1
        backends = {
            entry["name"]: entry
            for entry in client.health_payload()["backends"]
        }
        assert backends["primary"]["n_failure"] == 1
        assert backends["secondary"]["n_success"] == 1

    def test_whole_pool_failing_reraises_the_primary_error(self):
        client = FailoverClient(
            [
                ("primary", 0, _Flaky(lambda: RateLimitError(3.0))),
                ("secondary", 1, _Flaky(
                    lambda: TransientLLMError("down", latency_s=2.0)
                )),
            ],
            _PLAIN,
        )
        with pytest.raises(RateLimitError):
            client.complete(_request())

    def test_failover_disabled_surfaces_the_error_with_a_signal(self):
        config = ResilienceConfig(
            hedge=False, failover=False, circuit_error_threshold=1.0
        )
        client = FailoverClient(
            [
                ("primary", 0, _Flaky(
                    lambda: TransientLLMError("down", latency_s=2.0)
                )),
                ("secondary", 1, _Served()),
            ],
            config,
        )
        with pytest.raises(TransientLLMError) as info:
            client.complete(_request())
        signal = throttle_of(info.value)
        assert signal is not None
        assert signal.kind == "overloaded"
        assert signal.backend == "primary"


class TestHedging:
    def _pool(self, primary_latency, secondary_latency, **config_kwargs):
        config = ResilienceConfig(
            hedge_default_delay_s=2.0, hedge_warmup=100,
            circuit_error_threshold=1.0, **config_kwargs
        )
        primary = _Served(latency_s=primary_latency, text="Answer 1: yes")
        secondary = _Served(latency_s=secondary_latency, text="Answer 1: no")
        client = FailoverClient(
            [("primary", 0, primary), ("secondary", 1, secondary)], config
        )
        return client, primary, secondary

    def test_slow_primary_hedges_and_the_duplicate_wins(self):
        client, primary, secondary = self._pool(5.0, 1.0)
        reply = client.complete(_request())
        # hedge fires at t=2.0, duplicate lands at 2.0+1.0 < 5.0
        assert reply.text == "Answer 1: no"
        assert reply.latency_s == pytest.approx(3.0)
        assert client.n_hedges == 1 and client.n_hedge_wins == 1
        # the abandoned primary reply is accounted, never billed
        assert client.hedge_loser_usage.prompt_tokens == 10
        assert client.hedge_loser_usage.completion_tokens == 5

    def test_slow_duplicate_loses_and_the_primary_stands(self):
        client, primary, secondary = self._pool(5.0, 4.0)
        reply = client.complete(_request())
        # duplicate would land at 2.0+4.0 = 6.0 > 5.0: primary wins
        assert reply.text == "Answer 1: yes"
        assert reply.latency_s == pytest.approx(5.0)
        assert client.n_hedge_losses == 1 and client.n_hedge_wins == 0

    def test_fast_primary_never_hedges(self):
        client, primary, secondary = self._pool(1.0, 1.0)
        client.complete(_request())
        assert client.n_hedges == 0
        assert secondary.n_calls == 0

    def test_hedge_disabled_never_hedges(self):
        client, primary, secondary = self._pool(50.0, 1.0, hedge=False)
        reply = client.complete(_request())
        assert reply.latency_s == pytest.approx(50.0)
        assert client.n_hedges == 0

    def test_failed_hedge_keeps_the_primary_reply(self):
        config = ResilienceConfig(
            hedge_default_delay_s=2.0, hedge_warmup=100,
            circuit_error_threshold=1.0,
        )
        client = FailoverClient(
            [
                ("primary", 0, _Served(latency_s=5.0)),
                ("secondary", 1, _Flaky(
                    lambda: TransientLLMError("down", latency_s=1.0)
                )),
            ],
            config,
        )
        reply = client.complete(_request())
        assert reply.latency_s == pytest.approx(5.0)
        assert client.n_hedge_losses == 1

    def test_hedge_delay_uses_default_until_warmup(self):
        config = ResilienceConfig(
            hedge_warmup=2, hedge_default_delay_s=100.0,
            circuit_error_threshold=1.0,
        )
        client = FailoverClient([("primary", 0, _Served(1.0))], config)
        assert client.hedge_delay("primary") == 100.0
        client.complete(_request(1))
        assert client.hedge_delay("primary") == 100.0
        client.complete(_request(2))
        # two samples of 1.0s: the p95 of the window is 1.0
        assert client.hedge_delay("primary") == pytest.approx(1.0)

    def test_hedge_delay_respects_the_floor(self):
        config = ResilienceConfig(
            hedge_warmup=1, hedge_min_delay_s=0.5,
            circuit_error_threshold=1.0,
        )
        client = FailoverClient([("primary", 0, _Served(0.01))], config)
        client.complete(_request())
        assert client.hedge_delay("primary") == 0.5


class TestCircuitRecovery:
    def test_open_circuit_exhausts_then_probe_recovers(self):
        # defaults: alpha 0.3, threshold 0.5 — two consecutive failures
        # push the EWMA error rate to 0.51 and open the circuit.
        flaky = _Flaky(lambda: RateLimitError(1.0))
        client = FailoverClient(
            [("primary", 0, flaky)], ResilienceConfig(hedge=False)
        )
        client.observe_time(0.0)
        for i in range(2):
            with pytest.raises(RateLimitError):
                client.complete(_request(i))
        backends = client.health_payload()["backends"]
        assert backends[0]["state"] == "open"

        # inside the cooldown nothing is routable: typed exhaustion
        with pytest.raises(TransientLLMError) as info:
            client.complete(_request(3))
        assert throttle_of(info.value).kind == "overloaded"
        assert client.n_exhausted == 1
        assert flaky.n_calls == 2  # the open circuit was never called

        # past the cooldown the next call is the half-open probe; a
        # healed backend closes the circuit again.
        flaky.failing = False
        client.observe_time(25.0)
        reply = client.complete(_request(4))
        assert reply.text == "Answer 1: yes"
        health = client.health_payload()["backends"][0]
        assert health["state"] == "closed"
        assert health["transitions"] == {
            "open": 1, "half_open": 1, "close": 1,
        }

    def test_failed_probe_reopens_the_circuit(self):
        flaky = _Flaky(lambda: RateLimitError(1.0))
        client = FailoverClient(
            [("primary", 0, flaky)], ResilienceConfig(hedge=False)
        )
        client.observe_time(0.0)
        for i in range(2):
            with pytest.raises(RateLimitError):
                client.complete(_request(i))
        client.observe_time(25.0)
        with pytest.raises(RateLimitError):
            client.complete(_request(3))
        health = client.health_payload()["backends"][0]
        assert health["state"] == "open"
        assert health["transitions"]["open"] == 2


class TestShedVerdict:
    def test_hysteresis_enters_high_exits_low(self):
        flaky = _Flaky(
            lambda: RateLimitError(1.0),
            latency_s=1.0,
        )
        client = FailoverClient([("primary", 0, flaky)], _PLAIN)
        assert not client.should_shed()
        # shed_alpha 0.3: two failures push stress to 0.51 >= 0.5
        for i in range(2):
            with pytest.raises(RateLimitError):
                client.complete(_request(i))
        assert client.should_shed()
        assert client.n_shed_windows == 1
        # stress decays 0.51 -> 0.357 -> 0.25 -> 0.175; still shedding
        # until it crosses shed_exit = 0.25
        flaky.failing = False
        client.complete(_request(10))
        assert client.should_shed()
        client.complete(_request(11))
        client.complete(_request(12))
        assert not client.should_shed()
        assert client.n_shed_windows == 1


class TestCheckpoint:
    def _run(self, client, n, start=0):
        for i in range(n):
            try:
                client.complete(_request(start + i))
            except (RateLimitError, TransientLLMError):
                pass

    def test_roundtrip_restores_health_and_samples(self):
        def build():
            return FailoverClient(
                [
                    ("primary", 0, _Flaky(lambda: RateLimitError(1.0))),
                    ("secondary", 1, _Served(latency_s=1.5)),
                ],
                ResilienceConfig(hedge=False),
            )

        original = build()
        original.observe_time(3.0)
        self._run(original, 5)
        resumed = build()
        resumed.restore_checkpoint_state(original.checkpoint_state())
        assert resumed.checkpoint_state() == original.checkpoint_state()
        assert resumed.hedge_delay("secondary") == pytest.approx(
            original.hedge_delay("secondary")
        )
        # and both continue identically
        self._run(original, 3, start=5)
        self._run(resumed, 3, start=5)
        assert resumed.checkpoint_state() == original.checkpoint_state()

    def test_health_payload_shape(self):
        client = FailoverClient([("primary", 0, _Served())], _PLAIN)
        client.complete(_request())
        payload = client.health_payload()
        assert {"backends", "router"} == set(payload)
        (backend,) = payload["backends"]
        assert {
            "name", "state", "error_rate", "latency_ewma_s",
            "n_success", "n_failure", "transitions", "priority",
        } == set(backend)
        assert payload["router"]["n_calls"] == 1


class TestPoolBackend:
    def test_build_orders_members_by_priority(self):
        pool = PoolBackend(members=(
            PoolMember("fallback", SimulatedBackend("gpt-3.5", seed=1),
                       priority=1),
            PoolMember("main", SimulatedBackend("gpt-3.5", seed=0),
                       priority=0),
        ))
        client = pool.build()
        assert isinstance(client, FailoverClient)
        assert client.order == ("main", "fallback")

    def test_describe_is_deterministic(self):
        pool = PoolBackend(members=(
            PoolMember("b", SimulatedBackend("gpt-3.5", seed=1), priority=1),
            PoolMember("a", SimulatedBackend("gpt-3.5", seed=0), priority=0),
        ))
        description = pool.describe()
        assert description["kind"] == "pool"
        assert [m["name"] for m in description["members"]] == ["a", "b"]

    def test_duplicate_member_names_are_rejected(self):
        with pytest.raises(ValueError):
            PoolBackend(members=(
                PoolMember("a", SimulatedBackend("gpt-3.5", seed=0)),
                PoolMember("a", SimulatedBackend("gpt-3.5", seed=1)),
            ))
