"""Tests for repro.baselines.blocking."""

import pytest

from repro.baselines.blocking import Blocker, BlockingResult
from repro.data.records import Table
from repro.data.schema import Schema
from repro.errors import ConfigError


@pytest.fixture()
def tables():
    schema = Schema.from_names("r", ["name", "city"])
    left = Table.from_rows(schema, [
        {"name": "golden dragon", "city": "boston"},
        {"name": "blue plate", "city": "austin"},
        {"name": "harbor view", "city": "miami"},
    ])
    right = Table.from_rows(schema, [
        {"name": "golden dragon restaurant", "city": "boston"},
        {"name": "the harbor view", "city": "miami"},
        {"name": "unrelated place", "city": "denver"},
    ])
    return left, right


class TestBlocker:
    def test_token_blocking_finds_matches(self, tables):
        left, right = tables
        result = Blocker("name", method="token").block(left, right)
        assert (0, 0) in result.pairs  # golden dragon
        assert (2, 1) in result.pairs  # harbor view

    def test_equality_blocking_strict(self, tables):
        left, right = tables
        result = Blocker("city", method="equality").block(left, right)
        assert (0, 0) in result.pairs
        assert (1, 2) not in result.pairs  # austin vs denver

    def test_soundex_blocking(self, tables):
        left, right = tables
        result = Blocker("name", method="soundex").block(left, right)
        assert (0, 0) in result.pairs  # golden ~ golden

    def test_reduction_ratio(self, tables):
        left, right = tables
        result = Blocker("name", method="equality").block(left, right)
        assert 0.0 <= result.reduction_ratio <= 1.0
        # Equality on full names matches nothing here: full reduction.
        assert result.reduction_ratio == 1.0

    def test_pair_completeness(self, tables):
        left, right = tables
        result = Blocker("name", method="token").block(left, right)
        assert result.pair_completeness([(0, 0), (2, 1)]) == 1.0
        assert result.pair_completeness([(1, 2)]) == 0.0
        assert result.pair_completeness([]) == 1.0

    def test_missing_values_produce_no_keys(self, tables):
        left, right = tables
        schema = left.schema
        from repro.data.records import Record

        left.append(Record(schema=schema, values={}, record_id="empty"))
        result = Blocker("name", method="token").block(left, right)
        assert all(i != 3 for i, __ in result.pairs)

    def test_unknown_method(self):
        with pytest.raises(ConfigError):
            Blocker("name", method="magic")

    def test_empty_result_properties(self):
        result = BlockingResult(pairs=(), n_left=0, n_right=0)
        assert result.reduction_ratio == 0.0
