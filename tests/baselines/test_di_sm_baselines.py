"""Tests for the IMP imputer and the SMAT schema matcher."""

import pytest

from repro.baselines import IMPImputer, SMATMatcher
from repro.datasets import load_dataset
from repro.errors import EvaluationError
from repro.eval.metrics import accuracy, f1_score


class TestIMP:
    def test_learns_area_code_evidence(self):
        train = load_dataset("restaurant", size=300, seed=20)
        test = load_dataset("restaurant", size=80, seed=21)
        model = IMPImputer().fit(
            list(train.instances) + list(train.fewshot_pool)
        )
        predictions = model.predict(test.instances)
        truths = [i.true_value for i in test.instances]
        assert accuracy(predictions, truths) > 0.6

    def test_learns_brand_evidence(self):
        train = load_dataset("buy", size=300, seed=20)
        test = load_dataset("buy", size=60, seed=21)
        model = IMPImputer().fit(
            list(train.instances) + list(train.fewshot_pool)
        )
        truths = [i.true_value for i in test.instances]
        assert accuracy(model.predict(test.instances), truths) > 0.6

    def test_only_known_values_predicted(self):
        train = load_dataset("buy", size=120, seed=20)
        test = load_dataset("buy", size=40, seed=21)
        model = IMPImputer().fit(train.instances)
        known = {i.true_value for i in train.instances}
        for prediction in model.predict(test.instances):
            assert prediction in known

    def test_errors(self):
        with pytest.raises(EvaluationError):
            IMPImputer().fit([])
        test = load_dataset("buy", size=40, seed=21)
        with pytest.raises(EvaluationError):
            IMPImputer().predict_one(test.instances[0])


class TestSMAT:
    def test_beats_chance_loses_to_llm_knowledge(self):
        train = load_dataset("synthea", size=400, seed=20)
        test = load_dataset("synthea", size=150, seed=21)
        model = SMATMatcher().fit(train.instances)
        labels = [i.label for i in test.instances]
        f1 = f1_score(model.predict(test.instances), labels)
        # The paper's SMAT scores 38.5; lexical learning sits well below
        # the concept-aware ceiling but well above zero.
        assert 0.2 < f1 < 0.8

    def test_single_class_rejected(self):
        test = load_dataset("synthea", size=150, seed=21)
        positives = [i for i in test.instances if i.label]
        with pytest.raises(EvaluationError):
            SMATMatcher().fit(positives)

    def test_errors(self):
        with pytest.raises(EvaluationError):
            SMATMatcher().fit([])
        test = load_dataset("synthea", size=40, seed=21)
        with pytest.raises(EvaluationError):
            SMATMatcher().predict_one(test.instances[0])
