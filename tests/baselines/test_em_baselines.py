"""Tests for the Magellan and Ditto entity matchers."""

import pytest

from repro.baselines import DittoMatcher, MagellanMatcher
from repro.baselines.ditto import serialize
from repro.baselines.magellan import attribute_features, pair_features
from repro.datasets import load_dataset
from repro.errors import EvaluationError
from repro.eval.metrics import f1_score


@pytest.fixture(scope="module")
def beer_train():
    return load_dataset("beer", size=250, seed=30)


@pytest.fixture(scope="module")
def beer_test():
    return load_dataset("beer", size=90, seed=31)


class TestMagellanFeatures:
    def test_missing_indicator(self):
        features = attribute_features(None, "x")
        assert features[-1] == 1.0  # missingness flag
        assert sum(features[:-1]) == 0.0

    def test_exact_match_flag(self):
        features = attribute_features("Same Value", "same value")
        assert features[0] == 1.0

    def test_numeric_similarity(self):
        features = attribute_features("$100", "$105")
        assert features[4] > 0.9

    def test_pair_features_length_fixed(self, beer_test):
        a = pair_features(beer_test.instances[0])
        b = pair_features(beer_test.instances[1])
        assert len(a) == len(b) == 6 * 5  # 6 features x 5 beer attributes


class TestMagellan:
    def test_learns_beer(self, beer_train, beer_test):
        model = MagellanMatcher().fit(beer_train.instances)
        labels = [i.label for i in beer_test.instances]
        assert f1_score(model.predict(beer_test.instances), labels) > 0.7

    def test_errors(self, beer_test):
        with pytest.raises(EvaluationError):
            MagellanMatcher(threshold=0.0)
        with pytest.raises(EvaluationError):
            MagellanMatcher().fit([])
        with pytest.raises(EvaluationError):
            MagellanMatcher().predict_one(beer_test.instances[0])


class TestDittoSerialize:
    def test_col_val_format(self, beer_test):
        text = serialize(beer_test.instances[0].pair.left)
        assert text.startswith("col beer_name val ")
        assert "col abv val" in text

    def test_missing_columns_skipped(self, beer_test):
        record = beer_test.instances[0].pair.left.copy()
        record["style"] = None
        assert "col style" not in serialize(record)


class TestDitto:
    def test_learns_beer(self, beer_train, beer_test):
        model = DittoMatcher().fit(beer_train.instances)
        labels = [i.label for i in beer_test.instances]
        assert f1_score(model.predict(beer_test.instances), labels) > 0.7

    def test_beats_magellan_on_dirty_products(self):
        """The paper's key EM ordering: Ditto > Magellan on Amazon-Google."""
        train = load_dataset("amazon_google", size=600, seed=30)
        test = load_dataset("amazon_google", size=250, seed=31)
        labels = [i.label for i in test.instances]
        magellan = MagellanMatcher().fit(train.instances)
        ditto = DittoMatcher().fit(train.instances)
        magellan_f1 = f1_score(magellan.predict(test.instances), labels)
        ditto_f1 = f1_score(ditto.predict(test.instances), labels)
        assert ditto_f1 > magellan_f1

    def test_errors(self, beer_test):
        with pytest.raises(EvaluationError):
            DittoMatcher(threshold=1.5)
        with pytest.raises(EvaluationError):
            DittoMatcher().fit([])
        with pytest.raises(EvaluationError):
            DittoMatcher().predict_one(beer_test.instances[0])
