"""Tests for the error-detection baselines (HoloClean / HoloDetect)."""

import pytest

from repro.baselines import HoloCleanDetector, HoloDetectDetector
from repro.datasets import load_dataset
from repro.errors import EvaluationError
from repro.eval.metrics import f1_score


@pytest.fixture(scope="module")
def adult():
    return load_dataset("adult", size=300, seed=2)


@pytest.fixture(scope="module")
def adult_train():
    return load_dataset("adult", size=300, seed=77)


class TestHoloClean:
    def test_fit_predict_shapes(self, adult):
        model = HoloCleanDetector().fit(adult.instances)
        predictions = model.predict(adult.instances)
        assert len(predictions) == len(adult.instances)
        assert all(isinstance(p, bool) for p in predictions)

    def test_better_than_chance_worse_than_ml(self, adult, adult_train):
        labels = [i.label for i in adult.instances]
        hc = HoloCleanDetector().fit(adult.instances)
        hc_f1 = f1_score(hc.predict(adult.instances), labels)
        hd = HoloDetectDetector().fit(
            adult.instances,
            list(adult_train.fewshot_pool) + list(adult_train.instances[:48]),
        )
        hd_f1 = f1_score(hd.predict(adult.instances), labels)
        assert hc_f1 > 0.15           # catches constraint violations
        assert hd_f1 > hc_f1          # the paper's ordering

    def test_perfect_precision_on_fd_violations(self, adult):
        # HoloClean only flags real violations of mined structure, so its
        # false positives should be rare on this benchmark.
        labels = [i.label for i in adult.instances]
        model = HoloCleanDetector().fit(adult.instances)
        predictions = model.predict(adult.instances)
        fp = sum(1 for p, y in zip(predictions, labels) if p and not y)
        tp = sum(1 for p, y in zip(predictions, labels) if p and y)
        assert tp > 0
        assert fp <= tp * 0.2

    def test_fit_empty_rejected(self):
        with pytest.raises(EvaluationError):
            HoloCleanDetector().fit([])

    def test_predict_before_fit(self, adult):
        with pytest.raises(EvaluationError):
            HoloCleanDetector().predict_one(adult.instances[0])


class TestHoloDetect:
    def test_needs_both_inputs(self, adult):
        with pytest.raises(EvaluationError):
            HoloDetectDetector().fit([], adult.fewshot_pool)
        with pytest.raises(EvaluationError):
            HoloDetectDetector().fit(adult.instances, [])

    def test_single_class_labels_rejected(self, adult):
        clean_only = [i for i in adult.instances if not i.label][:10]
        with pytest.raises(EvaluationError):
            HoloDetectDetector().fit(adult.instances, clean_only)

    def test_hospital_typos_caught(self):
        test = load_dataset("hospital", size=250, seed=2)
        train = load_dataset("hospital", size=250, seed=78)
        model = HoloDetectDetector().fit(
            test.instances,
            list(train.fewshot_pool) + list(train.instances[:48]),
        )
        labels = [i.label for i in test.instances]
        assert f1_score(model.predict(test.instances), labels) > 0.5

    def test_deterministic_per_seed(self, adult, adult_train):
        labeled = list(adult_train.fewshot_pool) + list(adult_train.instances[:32])
        a = HoloDetectDetector(seed=5).fit(adult.instances, labeled)
        b = HoloDetectDetector(seed=5).fit(adult.instances, labeled)
        assert a.predict(adult.instances[:50]) == b.predict(adult.instances[:50])
