"""Tests for the detect-then-repair workflow."""

import pytest

from repro import PipelineConfig, SimulatedLLM
from repro.core.workflows import repair_errors
from repro.data.records import Table
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def client():
    return SimulatedLLM("gpt-4")


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(model="gpt-4")


class TestRepairErrors:
    def test_repairs_cross_field_inconsistencies(self, client, config):
        """An educationnum contradicting education is detected and the
        consistent value restored."""
        dataset = load_dataset("adult", size=60)
        schema = dataset.instances[0].record.schema
        records = [i.record.copy() for i in dataset.instances[:12]
                   if not i.label]
        table = Table(schema, records)
        # Break row 0: bachelors should be level 13.
        table[0]["education"] = "bachelors"
        table[0]["educationnum"] = 2
        result = repair_errors(
            client, table, attributes=["educationnum"], config=config,
            ed_fewshot=list(load_dataset("adult", size=60).fewshot_pool),
        )
        assert (0, "educationnum") in result.repairs
        assert result.repairs[(0, "educationnum")] == "13"
        assert str(result.table[0]["educationnum"]) == "13"
        # The input table keeps its broken value.
        assert int(table[0]["educationnum"]) == 2

    def test_repairs_hospital_condition(self, client, config):
        dataset = load_dataset("hospital", size=60)
        schema = dataset.instances[0].record.schema
        records = [i.record.copy() for i in dataset.instances[:10]
                   if not i.label]
        table = Table(schema, records)
        table[0]["condition"] = "heaxrt attack"
        # Make the row's measure consistent with the true condition.
        table[0]["measurecode"] = "ami-2"
        result = repair_errors(
            client, table, attributes=["condition"], config=config,
            ed_fewshot=list(dataset.fewshot_pool),
        )
        assert result.repairs.get((0, "condition")) == "heart attack"

    def test_clean_table_untouched(self, client, config):
        dataset = load_dataset("restaurant", size=30)
        schema = dataset.instances[0].record.schema
        records = []
        for instance in dataset.instances[:8]:
            record = instance.record.copy()
            record["city"] = instance.true_value
            records.append(record)
        table = Table(schema, records)
        result = repair_errors(client, table, attributes=["name", "type"],
                               config=config)
        assert result.repairs == {}

    def test_accounting_covers_both_stages(self, client, config):
        dataset = load_dataset("adult", size=60)
        schema = dataset.instances[0].record.schema
        table = Table(schema, [i.record.copy()
                               for i in dataset.instances[:6]])
        result = repair_errors(
            client, table, attributes=["occupation"], config=config,
            ed_fewshot=list(dataset.fewshot_pool),
        )
        assert result.report.n_requests >= 1
        assert result.report.usage.total_tokens > 0
