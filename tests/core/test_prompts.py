"""Tests for repro.core.prompts."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.prompts import PromptBuilder
from repro.data.instances import Task
from repro.errors import PromptError


class TestPromptBuilder:
    def test_system_message_structure(self, restaurant_dataset):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(), target_attribute="city"
        )
        assert builder.system_text.startswith("You are a database engineer.")
        assert '"city"' in builder.system_text
        assert "two lines" in builder.system_text

    def test_reasoning_off_changes_format(self):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(reasoning=False),
            target_attribute="city",
        )
        assert "one line" in builder.system_text

    def test_ed_confirm_target_only_with_reasoning(self):
        with_reasoning = PromptBuilder(
            Task.ERROR_DETECTION, PipelineConfig(reasoning=True),
            target_attribute="age",
        )
        without = PromptBuilder(
            Task.ERROR_DETECTION, PipelineConfig(reasoning=False),
            target_attribute="age",
        )
        assert "confirm the target attribute" in with_reasoning.system_text
        assert "confirm the target attribute" not in without.system_text

    def test_di_type_hint_included(self):
        hint = 'The "hoursperweek" attribute can be a range of integers.'
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(type_hint=hint),
            target_attribute="hoursperweek",
        )
        assert hint in builder.system_text

    def test_fewshot_block_roles(self, restaurant_dataset):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(), target_attribute="city"
        )
        examples = restaurant_dataset.sample_fewshot(3)
        prompt = builder.build(
            list(restaurant_dataset.instances[:2]), fewshot_examples=examples
        )
        roles = [m.role for m in prompt.messages]
        assert roles == ["system", "user", "assistant", "user"]
        assert prompt.expected_answers == 2

    def test_no_fewshot_three_messages(self, restaurant_dataset):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(), target_attribute="city"
        )
        prompt = builder.build(list(restaurant_dataset.instances[:1]))
        assert [m.role for m in prompt.messages] == ["system", "user"]

    def test_question_numbering_sequential(self, restaurant_dataset):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(), target_attribute="city"
        )
        prompt = builder.build(list(restaurant_dataset.instances[:3]))
        final = prompt.messages[-1].content
        assert "Question 1:" in final
        assert "Question 3:" in final

    def test_empty_batch_rejected(self):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(), target_attribute="city"
        )
        with pytest.raises(PromptError):
            builder.build([])

    def test_task_mismatch_rejected(self, restaurant_dataset, beer_dataset):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(), target_attribute="city"
        )
        with pytest.raises(PromptError):
            builder.build(list(beer_dataset.instances[:1]))

    def test_target_mismatch_rejected(self, restaurant_dataset, buy_dataset):
        builder = PromptBuilder(
            Task.DATA_IMPUTATION, PipelineConfig(), target_attribute="city"
        )
        with pytest.raises(PromptError):
            builder.build(list(buy_dataset.instances[:1]))
