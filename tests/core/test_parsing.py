"""Tests for repro.core.parsing."""

import pytest

from repro.core.parsing import (
    normalize_binary,
    normalize_value,
    parse_batch_answers,
    parse_batch_answers_lenient,
    split_answer_blocks,
)
from repro.data.instances import Task
from repro.errors import AnswerFormatError


class TestSplitAnswerBlocks:
    def test_two_line_contract(self):
        text = "Answer 1: because of the area code\natlanta\nAnswer 2: no reason\nboston"
        blocks = split_answer_blocks(text, 2)
        assert blocks[0].reason == "because of the area code"
        assert blocks[0].answer == "atlanta"
        assert blocks[1].answer == "boston"

    def test_single_line_contract(self):
        blocks = split_answer_blocks("Answer 1: yes\nAnswer 2: no", 2)
        assert blocks[0].answer == "yes"
        assert blocks[0].reason == ""

    def test_single_question_without_marker(self):
        blocks = split_answer_blocks("The reason text.\nyes", 1)
        assert blocks[0].answer == "yes"

    def test_empty_reply_raises(self):
        with pytest.raises(AnswerFormatError):
            split_answer_blocks("   \n  ", 1)

    def test_wrong_count_raises(self):
        with pytest.raises(AnswerFormatError):
            split_answer_blocks("Answer 1: yes", 2)

    def test_case_insensitive_marker(self):
        blocks = split_answer_blocks("answer 1: yes", 1)
        assert blocks[0].answer == "yes"


class TestNormalizeBinary:
    @pytest.mark.parametrize("text, expected", [
        ("yes", True),
        ("Yes.", True),
        ('"no"', False),
        ("No, they differ", False),
        ("They are the same entity.", True),
        ("They are not the same entity.", False),
        ("There is an error in the value.", True),
        ("The value looks clean.", False),
    ])
    def test_variants(self, text, expected):
        assert normalize_binary(text) is expected

    def test_unreadable_raises(self):
        with pytest.raises(AnswerFormatError):
            normalize_binary("perhaps maybe")


class TestNormalizeValue:
    @pytest.mark.parametrize("text, expected", [
        ("atlanta", "atlanta"),
        ('"atlanta"', "atlanta"),
        ("atlanta.", "atlanta"),
        ("The answer is atlanta", "atlanta"),
        ("value: sony", "sony"),
    ])
    def test_variants(self, text, expected):
        assert normalize_value(text) == expected

    def test_empty_raises(self):
        with pytest.raises(AnswerFormatError):
            normalize_value('""')


class TestParseBatchAnswers:
    def test_binary_batch(self):
        text = "Answer 1: yes\nAnswer 2: no"
        assert parse_batch_answers(text, Task.ENTITY_MATCHING, 2) == [True, False]

    def test_di_batch(self):
        text = "Answer 1: some reason\natlanta\nAnswer 2: other\nboston"
        out = parse_batch_answers(text, Task.DATA_IMPUTATION, 2)
        assert out == ["atlanta", "boston"]


class TestLenientParsing:
    def test_partial_salvage(self):
        text = "Answer 1: yes\ncomplete gibberish here\nAnswer 3: no"
        out = parse_batch_answers_lenient(text, Task.ENTITY_MATCHING, 3)
        assert out == [True, None, False]

    def test_garbage_after_answer_skipped(self):
        text = "Answer 1: a fine reason\nyes\nas an ai model i cannot decide"
        out = parse_batch_answers_lenient(text, Task.ENTITY_MATCHING, 1)
        assert out == [True]

    def test_out_of_range_numbers_ignored(self):
        text = "Answer 9: yes"
        out = parse_batch_answers_lenient(text, Task.ENTITY_MATCHING, 2)
        assert out == [None, None]

    def test_never_raises(self):
        assert parse_batch_answers_lenient("", Task.DATA_IMPUTATION, 2) == [None, None]
