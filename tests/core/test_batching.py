"""Tests for repro.core.batching."""

import pytest

from repro.core.batching import batch_homogeneity, make_batches
from repro.errors import ConfigError


class TestRandomBatching:
    def test_partition_complete_and_disjoint(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        batches = make_batches(instances, batch_size=7, mode="random")
        flat = [i for batch in batches for i in batch]
        assert sorted(flat) == list(range(len(instances)))

    def test_batch_size_respected(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        batches = make_batches(instances, batch_size=7)
        assert all(len(b) <= 7 for b in batches)

    def test_deterministic_per_seed(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        a = make_batches(instances, 5, seed=3)
        b = make_batches(instances, 5, seed=3)
        assert a == b

    def test_empty_input(self):
        assert make_batches([], 5) == []

    def test_validation(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        with pytest.raises(ConfigError):
            make_batches(instances, 0)
        with pytest.raises(ConfigError):
            make_batches(instances, 5, mode="sorted")


class TestClusterBatching:
    def test_partition_complete(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        batches = make_batches(instances, batch_size=7, mode="cluster")
        flat = sorted(i for batch in batches for i in batch)
        assert flat == list(range(len(instances)))

    def test_more_homogeneous_than_random(self, amazon_google_dataset):
        """The property the paper's cluster batching relies on."""
        instances = list(amazon_google_dataset.instances)
        random_batches = make_batches(instances, 7, mode="random", seed=0)
        cluster_batches = make_batches(instances, 7, mode="cluster", seed=0)
        assert batch_homogeneity(instances, cluster_batches) > batch_homogeneity(
            instances, random_batches
        )

    def test_small_input_falls_back(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)[:4]
        batches = make_batches(instances, batch_size=10, mode="cluster")
        assert len(batches) == 1
