"""Tests for repro.core.feature_selection."""

import pytest

from repro.core.feature_selection import FeatureSelection, select_features
from repro.errors import ConfigError


class TestFeatureSelection:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FeatureSelection(keep=())
        with pytest.raises(ConfigError):
            FeatureSelection(keep=("a", "a"))

    def test_em_projection(self, beer_dataset):
        selection = FeatureSelection(keep=("beer_name", "abv"))
        inst = beer_dataset.instances[0]
        projected = select_features(inst, selection)
        assert projected.pair.left.schema.attribute_names == ("beer_name", "abv")
        assert projected.pair.right.schema.attribute_names == ("beer_name", "abv")
        assert projected.label == inst.label
        # Original untouched.
        assert "description" in inst.pair.left.schema

    def test_di_target_always_kept(self, restaurant_dataset):
        selection = FeatureSelection(keep=("phone",))
        inst = restaurant_dataset.instances[0]
        projected = select_features(inst, selection)
        assert "city" in projected.record.schema
        assert projected.record["city"] is None

    def test_ed_labels_preserved(self, adult_dataset):
        selection = FeatureSelection(keep=("age", "education", "educationnum"))
        inst = adult_dataset.instances[0]
        projected = select_features(inst, selection)
        assert projected.label == inst.label
        assert projected.target_attribute == inst.target_attribute

    def test_sm_passthrough(self, synthea_dataset):
        selection = FeatureSelection(keep=("name",))
        inst = synthea_dataset.instances[0]
        assert select_features(inst, selection) is inst

    def test_unknown_attribute_rejected(self, beer_dataset):
        selection = FeatureSelection(keep=("nope",))
        with pytest.raises(ConfigError):
            select_features(beer_dataset.instances[0], selection)

    def test_schema_order_preserved(self, beer_dataset):
        selection = FeatureSelection(keep=("abv", "beer_name"))
        projected = select_features(beer_dataset.instances[0], selection)
        # Projection follows schema order, not selection order.
        assert projected.pair.left.schema.attribute_names == ("beer_name", "abv")
