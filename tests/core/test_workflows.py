"""Tests for the table-level workflows."""

import pytest

from repro import PipelineConfig, SimulatedLLM
from repro.core.workflows import (
    WorkflowReport,
    detect_errors,
    impute_missing,
    match_entities,
    match_schemas,
)
from repro.llm.base import Usage
from repro.data.records import Table
from repro.data.schema import Attribute, Schema
from repro.datasets import load_dataset
from repro.errors import ConfigError, EvaluationError


@pytest.fixture(scope="module")
def client():
    return SimulatedLLM("gpt-4")


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(model="gpt-4")


@pytest.fixture(scope="module")
def restaurant_table():
    """A table with half its city cells missing, built from the benchmark."""
    dataset = load_dataset("restaurant", size=40)
    schema = dataset.instances[0].record.schema
    records = []
    truths = {}
    for index, instance in enumerate(dataset.instances):
        record = instance.record.copy()
        if index % 2 == 0:
            record["city"] = instance.true_value  # known half
        else:
            truths[index] = instance.true_value   # held-out half
        records.append(record)
    return Table(schema, records), truths


class TestDetectErrors:
    def test_flags_injected_typos(self, client, config):
        dataset = load_dataset("hospital", size=40)
        schema = dataset.instances[0].record.schema
        table = Table(schema, [i.record.copy() for i in dataset.instances[:10]])
        table[0]["city"] = "bostxon"
        result = detect_errors(
            client, table, attributes=["city"], config=config,
            fewshot=list(load_dataset("hospital", size=40).fewshot_pool),
        )
        assert any(f.row == 0 and f.attribute == "city" for f in result.flagged)
        assert result.report.usage.total_tokens > 0

    def test_unknown_attribute_rejected(self, client, config, restaurant_table):
        table, __ = restaurant_table
        with pytest.raises(ConfigError):
            detect_errors(client, table, attributes=["nope"], config=config)

    def test_missing_cells_skipped(self, client, config, restaurant_table):
        table, __ = restaurant_table
        result = detect_errors(client, table, attributes=["city"], config=config)
        # Only the non-missing half is checked; none should be flagged as a
        # typo (they are clean city names).
        flagged_rows = {f.row for f in result.flagged}
        missing_rows = {r for r in range(len(table)) if table[r]["city"] is None}
        assert not flagged_rows & missing_rows


class TestImputeMissing:
    def test_fills_missing_cells_correctly(self, client, config, restaurant_table):
        table, truths = restaurant_table
        fewshot = list(load_dataset("restaurant", size=40).fewshot_pool)
        result = impute_missing(client, table, "city", config=config,
                                fewshot=fewshot)
        assert set(result.imputed) == set(truths)
        correct = sum(
            1 for row, value in result.imputed.items()
            if value == truths[row]
        )
        assert correct >= len(truths) * 0.8
        # The repaired copy has no missing cities left.
        assert all(record["city"] is not None for record in result.table)
        # The input table is untouched.
        assert any(record["city"] is None for record in table)

    def test_nothing_missing_is_a_noop(self, client, config):
        schema = Schema.from_names("t", ["a", "b"])
        table = Table.from_rows(schema, [{"a": "x", "b": "y"}])
        result = impute_missing(client, table, "b", config=config)
        assert result.imputed == {}
        assert result.report.n_requests == 0

    def test_unknown_attribute_rejected(self, client, config, restaurant_table):
        table, __ = restaurant_table
        with pytest.raises(ConfigError):
            impute_missing(client, table, "nope", config=config)


class TestMatchSchemas:
    def test_finds_clinical_correspondences(self, client):
        left = Schema(name="l", attributes=(
            Attribute("dob", description="demographic field for age derivation"),
            Attribute("sex", description="biological classification noted at intake"),
        ))
        right = Schema(name="r", attributes=(
            Attribute("birth_date", description="when the individual was born"),
            Attribute("gender", description="administrative sex recorded for the person"),
            Attribute("zip_code", description="postal routing number of the residence"),
        ))
        fewshot = list(load_dataset("synthea", size=40).fewshot_pool)
        result = match_schemas(client, left, right,
                               config=PipelineConfig(model="gpt-4"),
                               fewshot=fewshot)
        assert ("dob", "birth_date") in result.correspondences
        assert ("sex", "gender") in result.correspondences
        assert ("dob", "zip_code") not in result.correspondences

    def test_empty_schema_rejected(self, client, config):
        empty = Schema(name="e", attributes=())
        other = Schema.from_names("o", ["a"])
        with pytest.raises(EvaluationError):
            match_schemas(client, empty, other, config=config)


class TestMatchEntities:
    @pytest.fixture(scope="class")
    def catalogs(self):
        dataset = load_dataset("beer", size=60)
        schema = dataset.instances[0].pair.left.schema
        left_records, right_records, expected = [], [], []
        for instance in dataset.instances:
            if instance.label:
                expected.append((len(left_records), len(right_records)))
            left_records.append(instance.pair.left)
            right_records.append(instance.pair.right)
        return (Table(schema, left_records), Table(schema, right_records),
                expected, dataset)

    def test_blocking_plus_matching(self, client, config, catalogs):
        left, right, expected, dataset = catalogs
        result = match_entities(
            client, left, right, config=config,
            fewshot=list(dataset.fewshot_pool),
        )
        assert result.n_candidates < len(left) * len(right)
        assert result.reduction_ratio > 0.5
        found = set(result.matches)
        recovered = sum(1 for pair in expected if pair in found)
        assert recovered >= len(expected) * 0.6

    def test_schema_mismatch_rejected(self, client, config, catalogs):
        left, __, __, __ = catalogs
        other = Table.from_rows(Schema.from_names("o", ["x"]), [{"x": "1"}])
        with pytest.raises(ConfigError):
            match_entities(client, left, other, config=config)

    def test_empty_table_rejected(self, client, config, catalogs):
        left, __, __, __ = catalogs
        empty = Table(left.schema, [])
        with pytest.raises(EvaluationError):
            match_entities(client, left, empty, config=config)


class TestReportCounters:
    def test_prep_cache_counters_surface_in_the_report(self, client, config):
        dataset = load_dataset("hospital", size=40)
        schema = dataset.instances[0].record.schema
        table = Table(schema, [i.record.copy() for i in dataset.instances[:8]])
        result = detect_errors(client, table, attributes=["city"],
                               config=config)
        report = result.report
        assert report.prep_cache_misses > 0
        assert report.prep_cache_hits >= 0

    def test_merge_folds_usage_and_counters(self):
        first = WorkflowReport(
            usage=Usage(prompt_tokens=10, completion_tokens=2),
            n_requests=1, estimated_seconds=0.5,
            prep_cache_hits=3, prep_cache_misses=4,
        )
        second = WorkflowReport(
            usage=Usage(prompt_tokens=5, completion_tokens=1),
            n_requests=2, estimated_seconds=0.25,
            prep_cache_hits=1, prep_cache_misses=2,
        )
        first.merge(second)
        assert first.usage.prompt_tokens == 15
        assert first.usage.completion_tokens == 3
        assert first.n_requests == 3
        assert first.estimated_seconds == 0.75
        assert first.prep_cache_hits == 4
        assert first.prep_cache_misses == 6


class TestExclusions:
    def test_detect_skips_excluded_cells(self, client, config):
        dataset = load_dataset("hospital", size=40)
        schema = dataset.instances[0].record.schema
        table = Table(schema, [i.record.copy() for i in dataset.instances[:8]])
        table[0]["city"] = "bostxon"
        result = detect_errors(
            client, table, attributes=["city"], config=config,
            exclude={(0, "city")},
        )
        assert (0, "city") in result.excluded
        assert (0, "city") not in result.positions
        assert not any(f.row == 0 and f.attribute == "city"
                       for f in result.flagged)

    def test_impute_skips_excluded_rows(self, client, config,
                                        restaurant_table):
        table, truths = restaurant_table
        skip = sorted(truths)[0]
        result = impute_missing(client, table, "city", config=config,
                                exclude_rows={skip})
        assert skip in result.excluded
        assert skip not in result.imputed
        assert skip not in result.rows
        # the other held-out rows are still answered
        assert result.imputed

    def test_keep_raw_exposes_exchanges(self, client, config):
        dataset = load_dataset("hospital", size=40)
        schema = dataset.instances[0].record.schema
        table = Table(schema, [i.record.copy() for i in dataset.instances[:6]])
        result = detect_errors(client, table, attributes=["city"],
                               config=config, keep_raw=True)
        assert result.result is not None
        assert result.result.exchanges

    def test_match_entities_drops_pairs_touching_excluded_rows(
        self, client, config
    ):
        dataset = load_dataset("beer", size=60)
        schema = dataset.instances[0].pair.left.schema
        left = Table(schema, [i.pair.left for i in dataset.instances[:20]])
        right = Table(schema, [i.pair.right for i in dataset.instances[:20]])
        baseline = match_entities(client, left, right, config=config)
        banned = {pair[0] for pair in baseline.candidates[:2]}
        assert banned
        result = match_entities(client, left, right, config=config,
                                exclude_left_rows=banned)
        assert result.excluded
        for i, __ in result.candidates:
            assert i not in banned
        for i, __ in result.excluded:
            assert i in banned
