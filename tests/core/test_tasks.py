"""Tests for repro.core.tasks."""

import pytest

from repro.core.tasks import (
    ED_CONFIRM_TARGET,
    ROLE_INSTRUCTION,
    answer_format_instruction,
    question_text,
    task_text,
)
from repro.data.instances import DIInstance, Task
from repro.data.records import Record
from repro.data.schema import Schema
from repro.errors import PromptError


class TestTaskText:
    def test_di_names_target(self):
        text = task_text(Task.DATA_IMPUTATION, "city")
        assert '"city"' in text.instruction
        assert text.question_suffix == "What is the city?"

    def test_ed_names_target(self):
        text = task_text(Task.ERROR_DETECTION, "age")
        assert '"age"' in text.instruction
        assert "error" in text.question_suffix

    def test_pair_tasks_need_no_target(self):
        assert task_text(Task.SCHEMA_MATCHING).question_suffix
        assert task_text(Task.ENTITY_MATCHING).question_suffix

    def test_missing_target_raises(self):
        with pytest.raises(PromptError):
            task_text(Task.ERROR_DETECTION)


class TestAnswerFormat:
    def test_two_lines_with_reasoning(self):
        text = answer_format_instruction(Task.ENTITY_MATCHING, reasoning=True)
        assert "two lines" in text
        assert "reason" in text

    def test_one_line_without(self):
        text = answer_format_instruction(Task.ENTITY_MATCHING, reasoning=False)
        assert "one line" in text

    def test_di_format_names_attribute(self):
        text = answer_format_instruction(Task.DATA_IMPUTATION, True, "city")
        assert '"city"' in text


class TestQuestionText:
    def test_numbering(self, people_schema):
        record = Record(schema=people_schema, values={"name": "x"})
        inst = DIInstance(record=record, target_attribute="city",
                          true_value="boston")
        text = question_text(inst, 7)
        assert text.startswith("Question 7: Record is [")
        assert text.endswith("What is the city?")


class TestConstants:
    def test_role_is_papers(self):
        assert ROLE_INSTRUCTION == "You are a database engineer."

    def test_confirm_target_wording(self):
        assert "confirm the target attribute" in ED_CONFIRM_TARGET
