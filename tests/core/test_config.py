"""Tests for repro.core.config."""

import pytest

from repro.core.config import (
    ABLATION_ROWS,
    DEFAULT_BATCH_SIZE,
    PipelineConfig,
    ablation_config,
)
from repro.data.instances import Task
from repro.errors import ConfigError


class TestPipelineConfig:
    def test_paper_fewshot_defaults(self):
        config = PipelineConfig()
        assert config.fewshot_for(Task.SCHEMA_MATCHING) == 3
        assert config.fewshot_for(Task.ENTITY_MATCHING) == 10

    def test_explicit_fewshot_wins(self):
        assert PipelineConfig(fewshot=5).fewshot_for(Task.SCHEMA_MATCHING) == 5

    def test_batch_size_defaults_per_model(self):
        for model, expected in DEFAULT_BATCH_SIZE.items():
            assert PipelineConfig(model=model).batch_size_for_model() == expected

    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(fewshot=-1)
        with pytest.raises(ConfigError):
            PipelineConfig(batch_size=0)
        with pytest.raises(ConfigError):
            PipelineConfig(batching="sorted")
        with pytest.raises(ConfigError):
            PipelineConfig(temperature=3.0)
        with pytest.raises(ConfigError):
            PipelineConfig(max_format_retries=-1)
        with pytest.raises(ConfigError):
            PipelineConfig(concurrency=0)

    def test_concurrency_defaults_sequential(self):
        assert PipelineConfig().concurrency == 1
        assert PipelineConfig(concurrency=8).concurrency == 8

    def test_with_components(self):
        config = PipelineConfig().with_components(fewshot=False, batching=False)
        assert config.fewshot == 0
        assert config.batch_size == 1
        assert config.reasoning  # unchanged


class TestAblation:
    def test_six_rows_in_paper_order(self):
        labels = [label for label, __ in ABLATION_ROWS]
        assert labels == ["ZS-T", "ZS-T+B", "ZS-T+B+ZS-R", "ZS-T+FS",
                          "ZS-T+FS+B", "ZS-T+FS+B+ZS-R"]

    def test_zst_row_disables_everything(self):
        config = ablation_config("ZS-T")
        assert config.fewshot == 0
        assert config.batch_size == 1
        assert not config.reasoning

    def test_full_row_enables_everything(self):
        config = ablation_config("ZS-T+FS+B+ZS-R")
        assert config.fewshot is None
        assert config.batch_size is None
        assert config.reasoning

    def test_unknown_row(self):
        with pytest.raises(ConfigError):
            ablation_config("ZS-X")
