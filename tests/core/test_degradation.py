"""The failure-degradation ladder and quarantine accounting.

``degradation="off"`` must reproduce the historical salvage-and-fallback
semantics exactly; ``"ladder"`` walks strict parse → re-ask → lenient
salvage → bisection → per-instance prompt → quarantine, so runs complete
with honest partial results instead of guessed answers.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.executor import ExecutorConfig
from repro.core.pipeline import Preprocessor, QuarantinedInstance
from repro.errors import ConfigError
from repro.eval.harness import evaluate_pipeline
from repro.eval.metrics import score_answered
from repro.eval.reporting import format_score_with_coverage
from repro.data.instances import Task
from repro.llm.accounting import meter_response
from repro.llm.base import CompletionRequest, CompletionResponse
from repro.llm.faults import Fault, FaultInjectingClient, fail_first
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedLLM


class _GarbageClient:
    """Never returns a parseable answer, no matter how often it is asked."""

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        return meter_response(
            get_profile(request.model), request, "I cannot help with that."
        )


class _OddAnswersClient:
    """Answers only odd-numbered questions; a singleton batch always works."""

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        count = request.messages[-1].content.count("Question ")
        blocks = [
            f"Answer {i}: yes" for i in range(1, count + 1) if i % 2 == 1
        ]
        return meter_response(
            get_profile(request.model), request, "\n".join(blocks)
        )


def _config(**overrides):
    settings = {"model": "gpt-3.5", "seed": 0}
    settings.update(overrides)
    return PipelineConfig(**settings)


class TestConfigKnob:
    def test_off_is_the_default(self):
        assert PipelineConfig().degradation == "off"

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(degradation="pray")


class TestOffModePreservesSeedSemantics:
    def test_off_mode_never_quarantines(self, restaurant_dataset):
        result = Preprocessor(_GarbageClient(), _config()).run(
            restaurant_dataset
        )
        assert result.quarantine == []
        assert result.coverage == 1.0
        # every instance got DI's safe fallback answer
        assert all(p == "" for p in result.predictions)
        assert result.n_fallbacks == len(restaurant_dataset.instances)

    def test_off_and_ladder_agree_when_nothing_fails(self, restaurant_dataset):
        off = Preprocessor(
            SimulatedLLM("gpt-3.5", seed=0), _config()
        ).run(restaurant_dataset)
        ladder = Preprocessor(
            SimulatedLLM("gpt-3.5", seed=0), _config(degradation="ladder")
        ).run(restaurant_dataset)
        assert off.predictions == ladder.predictions
        assert off.usage == ladder.usage
        assert ladder.quarantine == []


class TestLadder:
    # These use the ED dataset: binary answers reject free text, so a
    # garbage reply stays unparseable even per-instance.  (DI accepts a
    # bare string as the single-instance answer — the paper's leniency —
    # so DI garbage degrades to a wrong *answer*, not a quarantine.)
    def test_hopeless_replies_quarantine_every_instance(self, adult_dataset):
        result = Preprocessor(
            _GarbageClient(), _config(degradation="ladder")
        ).run(adult_dataset)
        n = len(adult_dataset.instances)
        assert len(result.quarantine) == n
        assert result.coverage == 0.0
        assert all(p is None for p in result.predictions)
        assert {q.reason for q in result.quarantine} == {"malformed_reply"}
        # quarantine is sorted by instance index and aligned to None slots
        indices = [q.index for q in result.quarantine]
        assert indices == sorted(indices) == list(range(n))
        # honest accounting: quarantined instances are not "fallbacks"
        assert result.n_fallbacks == 0

    def test_bisection_recovers_partially_answered_batches(
        self, restaurant_dataset
    ):
        # Odd-numbered answers parse leniently; the even remainder is
        # bisected down to per-instance prompts, which always succeed —
        # so the ladder answers everything without a single guess.
        result = Preprocessor(
            _OddAnswersClient(), _config(degradation="ladder")
        ).run(restaurant_dataset)
        assert result.quarantine == []
        assert result.coverage == 1.0
        assert result.n_fallbacks == 0
        assert all(p is not None for p in result.predictions)

    def test_off_mode_guesses_where_ladder_recovers(self, restaurant_dataset):
        off = Preprocessor(_OddAnswersClient(), _config()).run(
            restaurant_dataset
        )
        assert off.n_fallbacks > 0  # the historical guessed answers

    def test_retry_exhaustion_quarantines_single_instances(
        self, restaurant_dataset
    ):
        # Every call fails transiently and the retry budget is tiny: the
        # batch splits down to single instances, which then quarantine
        # with the typed retry_exhausted reason instead of guessing.
        client = FaultInjectingClient(
            SimulatedLLM("gpt-3.5", seed=0),
            fail_first(10_000, Fault("transient")),
        )
        result = Preprocessor(
            client,
            _config(degradation="ladder"),
            executor_config=ExecutorConfig(
                max_attempts=2, breaker_threshold=0
            ),
        ).run(restaurant_dataset)
        assert len(result.quarantine) == len(restaurant_dataset.instances)
        assert {q.reason for q in result.quarantine} == {"retry_exhausted"}

    def test_quarantine_entries_are_typed(self, adult_dataset):
        result = Preprocessor(
            _GarbageClient(), _config(degradation="ladder")
        ).run(adult_dataset)
        entry = result.quarantine[0]
        assert isinstance(entry, QuarantinedInstance)
        assert entry.detail


class TestCoverageScoring:
    def test_score_answered_excludes_quarantined(self):
        score, n = score_answered(
            Task.ENTITY_MATCHING,
            [True, None, False, True],
            [True, True, False, False],
        )
        assert n == 3
        # over the answered three: tp=1, fp=1, fn=0, tn=1 -> F1 = 2/3
        assert score == pytest.approx(2 / 3)

    def test_score_answered_with_nothing_answered(self):
        score, n = score_answered(
            Task.DATA_IMPUTATION, [None, None], ["a", "b"]
        )
        assert score is None
        assert n == 0

    def test_full_coverage_matches_score_predictions(self):
        from repro.eval.metrics import score_predictions

        predictions = [True, False, True]
        labels = [True, True, True]
        full, n = score_answered(Task.ERROR_DETECTION, predictions, labels)
        assert n == 3
        assert full == score_predictions(
            Task.ERROR_DETECTION, predictions, labels
        )

    def test_evaluation_run_reports_coverage(self, adult_dataset):
        run = evaluate_pipeline(
            _GarbageClient(),
            _config(degradation="ladder", observability=True),
            adult_dataset,
        )
        assert run.coverage == 0.0
        assert run.n_quarantined == run.n_instances
        assert run.score is None
        assert run.manifest.evaluation["coverage"] == 0.0
        assert run.manifest.evaluation["n_quarantined"] == run.n_instances

    def test_reporting_shows_coverage_next_to_score(self):
        assert format_score_with_coverage(0.875, 1.0) == "87.5"
        assert (
            format_score_with_coverage(0.875, 0.95)
            == "87.5 @ 95.0% coverage"
        )
        assert format_score_with_coverage(None, 0.0) == "N/A @ 0.0% coverage"
