"""Tests for repro.core.executor (lane scheduling and fault tolerance)."""

import pytest

from repro.core.executor import BatchExecutor, ExecutorConfig
from repro.errors import (
    ExecutionGiveUpError,
    RateLimitError,
    TransientLLMError,
)
from repro.llm.base import (
    ChatMessage,
    CompletionRequest,
    CompletionResponse,
    Usage,
)
from repro.llm.faults import Fault, FaultInjectingClient, fail_first
from repro.llm.ratelimit import RateLimit


def _request(i=1):
    return CompletionRequest(
        messages=(ChatMessage(role="user", content=f"Question {i}: ping"),),
        model="gpt-3.5",
    )


class _FixedLatencyClient:
    """Serves a canned reply with a fixed modeled latency."""

    def __init__(self, latency_s=10.0):
        self._latency = latency_s
        self.n_calls = 0

    def complete(self, request):
        self.n_calls += 1
        return CompletionResponse(
            text="Answer 1: yes",
            model=request.model,
            usage=Usage(prompt_tokens=10, completion_tokens=5),
            latency_s=self._latency,
        )


class TestExecutorConfig:
    def test_defaults_are_sequential(self):
        config = ExecutorConfig()
        assert config.concurrency == 1
        assert config.timeout_s is None

    @pytest.mark.parametrize("kwargs", [
        {"concurrency": 0},
        {"max_attempts": 0},
        {"timeout_s": 0.0},
        {"base_backoff_s": -1.0},
        {"backoff_multiplier": 0.5},
        {"jitter": 1.5},
        {"breaker_threshold": -1},
        {"breaker_cooldown_s": -1.0},
        {"max_rate_limit_waits": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(**kwargs)


class TestLaneScheduling:
    def test_single_lane_sums_latency(self):
        executor = BatchExecutor(_FixedLatencyClient(10.0), ExecutorConfig())
        for i in range(4):
            executor.call(_request(i))
        report = executor.report()
        assert report.makespan_s == pytest.approx(40.0)
        assert report.sequential_s == pytest.approx(40.0)
        assert report.speedup == pytest.approx(1.0)

    def test_two_lanes_overlap_latency(self):
        executor = BatchExecutor(
            _FixedLatencyClient(10.0), ExecutorConfig(concurrency=2)
        )
        for i in range(4):
            executor.call(_request(i))
        report = executor.report()
        assert report.makespan_s == pytest.approx(20.0)
        assert report.sequential_s == pytest.approx(40.0)
        assert report.speedup == pytest.approx(2.0)
        assert [lane.n_calls for lane in report.lanes] == [2, 2]
        assert all(
            lane.utilization == pytest.approx(1.0) for lane in report.lanes
        )

    def test_more_lanes_than_calls(self):
        executor = BatchExecutor(
            _FixedLatencyClient(10.0), ExecutorConfig(concurrency=8)
        )
        for i in range(3):
            executor.call(_request(i))
        report = executor.report()
        assert report.makespan_s == pytest.approx(10.0)
        assert report.n_calls == 3

    def test_ready_at_delays_start(self):
        executor = BatchExecutor(_FixedLatencyClient(10.0), ExecutorConfig())
        __, finished = executor.call(_request(), ready_at=100.0)
        assert finished == pytest.approx(110.0)
        # The waiting gap is idle, not busy.
        assert executor.report().sequential_s == pytest.approx(10.0)

    def test_calls_issue_in_submission_order(self):
        client = _FixedLatencyClient(10.0)
        executor = BatchExecutor(client, ExecutorConfig(concurrency=4))
        responses = [executor.call(_request(i))[0] for i in range(6)]
        assert client.n_calls == 6
        assert all(r.text == "Answer 1: yes" for r in responses)


class TestRetries:
    def test_transient_failure_retried(self):
        client = FaultInjectingClient(
            _FixedLatencyClient(10.0),
            fail_first(1, Fault("transient", latency_s=2.0)),
        )
        executor = BatchExecutor(client, ExecutorConfig(max_attempts=3))
        response, finished = executor.call(_request())
        assert response.text == "Answer 1: yes"
        report = executor.report()
        assert report.n_retries == 1
        assert report.n_giveups == 0
        # Busy time includes the burned 2s of the failed attempt.
        assert report.sequential_s == pytest.approx(12.0)
        # Finish time adds the backoff wait between attempts.
        assert finished > 12.0

    def test_retries_exhausted_gives_up(self):
        client = FaultInjectingClient(
            _FixedLatencyClient(10.0), fail_first(99, Fault("transient"))
        )
        executor = BatchExecutor(client, ExecutorConfig(max_attempts=3))
        with pytest.raises(ExecutionGiveUpError) as excinfo:
            executor.call(_request())
        assert excinfo.value.attempts == 3
        report = executor.report()
        assert report.n_giveups == 1
        assert report.n_retries == 2  # two retries after the first attempt

    def test_timeout_converts_spike_to_retry(self):
        client = FaultInjectingClient(
            _FixedLatencyClient(10.0),
            {1: Fault("latency", latency_s=500.0)},
        )
        executor = BatchExecutor(
            client, ExecutorConfig(max_attempts=2, timeout_s=60.0)
        )
        response, __ = executor.call(_request())
        assert response.text == "Answer 1: yes"
        report = executor.report()
        assert report.n_timeouts == 1
        assert report.n_retries == 1
        # The lane burned the timeout, not the whole 500s spike.
        assert report.sequential_s == pytest.approx(60.0 + 10.0)

    def test_backoff_is_deterministic(self):
        def build():
            client = FaultInjectingClient(
                _FixedLatencyClient(10.0),
                fail_first(2, Fault("transient")),
            )
            executor = BatchExecutor(
                client, ExecutorConfig(max_attempts=3, seed=7)
            )
            executor.call(_request())
            return executor.report().makespan_s

        assert build() == build()


class TestCircuitBreaker:
    def test_consecutive_failures_trip_the_lane(self):
        client = FaultInjectingClient(
            _FixedLatencyClient(10.0), fail_first(3, Fault("transient"))
        )
        executor = BatchExecutor(
            client,
            ExecutorConfig(
                max_attempts=4, breaker_threshold=3, breaker_cooldown_s=120.0
            ),
        )
        response, finished = executor.call(_request())
        assert response.text == "Answer 1: yes"
        report = executor.report()
        assert report.n_breaker_trips == 1
        assert report.lanes[0].n_breaker_trips == 1
        # The successful attempt had to wait out the cooldown.
        assert finished >= 120.0

    def test_breaker_disabled_with_zero_threshold(self):
        client = FaultInjectingClient(
            _FixedLatencyClient(10.0), fail_first(3, Fault("transient"))
        )
        executor = BatchExecutor(
            client, ExecutorConfig(max_attempts=4, breaker_threshold=0)
        )
        executor.call(_request())
        assert executor.report().n_breaker_trips == 0

    def test_open_lane_is_avoided(self):
        # Lane 0 trips; the next call should land on lane 1 untouched by
        # the cooldown.
        client = FaultInjectingClient(
            _FixedLatencyClient(10.0), fail_first(2, Fault("transient"))
        )
        executor = BatchExecutor(
            client,
            ExecutorConfig(
                concurrency=2, max_attempts=1, breaker_threshold=2,
                breaker_cooldown_s=500.0,
            ),
        )
        with pytest.raises(ExecutionGiveUpError):
            executor.call(_request())
        with pytest.raises(ExecutionGiveUpError):
            executor.call(_request())
        __, finished = executor.call(_request())
        assert finished < 500.0
        report = executor.report()
        assert report.n_breaker_trips == 1


class TestRateLimits:
    def test_own_budget_stalls_and_recovers(self):
        executor = BatchExecutor(
            _FixedLatencyClient(1.0),
            ExecutorConfig(rate_limit=RateLimit(2, 10**9)),
        )
        for i in range(3):
            executor.call(_request(i))
        report = executor.report()
        assert report.n_rate_limit_waits >= 1
        assert report.makespan_s >= 60.0
        assert report.n_giveups == 0

    def test_budget_is_global_across_lanes(self):
        executor = BatchExecutor(
            _FixedLatencyClient(1.0),
            ExecutorConfig(concurrency=4, rate_limit=RateLimit(2, 10**9)),
        )
        for i in range(4):
            executor.call(_request(i))
        report = executor.report()
        # Four lanes could all start at t=0, but only two requests fit in
        # the shared minute window.
        assert report.n_rate_limit_waits >= 1
        assert report.makespan_s >= 60.0

    def test_upstream_429_is_a_stall_not_a_failure(self):
        client = FaultInjectingClient(
            _FixedLatencyClient(1.0),
            {1: Fault("rate_limit", retry_after=30.0)},
        )
        executor = BatchExecutor(client, ExecutorConfig(max_attempts=1))
        response, finished = executor.call(_request())
        assert response.text == "Answer 1: yes"
        report = executor.report()
        assert report.n_rate_limit_waits == 1
        assert report.n_retries == 0
        assert report.n_breaker_trips == 0
        assert finished >= 30.0

    def test_endless_429_eventually_gives_up(self):
        client = FaultInjectingClient(
            _FixedLatencyClient(1.0),
            fail_first(999, Fault("rate_limit", retry_after=1.0)),
        )
        executor = BatchExecutor(
            client, ExecutorConfig(max_rate_limit_waits=3)
        )
        with pytest.raises(ExecutionGiveUpError):
            executor.call(_request())
        assert executor.report().n_giveups == 1
