"""Tests for the dry-run cost estimator."""

import pytest

from repro import PipelineConfig, Preprocessor, SimulatedLLM, load_dataset
from repro.core.dryrun import compare_batch_sizes, estimate_cost
from repro.data.instances import PreprocessingDataset, Task
from repro.errors import EvaluationError


class TestEstimateCost:
    def test_prompt_tokens_match_real_run_exactly(self, restaurant_dataset):
        """The estimator builds the same prompts the pipeline sends."""
        config = PipelineConfig(model="gpt-4")
        estimate = estimate_cost(restaurant_dataset, config)
        real = Preprocessor(SimulatedLLM("gpt-4"), config).run(restaurant_dataset)
        # No retries happened (gpt-4 fidelity ~1), so prompt tokens agree.
        assert estimate.prompt_tokens == real.usage.prompt_tokens
        assert estimate.n_requests == real.n_requests

    def test_completion_estimate_in_band(self, restaurant_dataset):
        config = PipelineConfig(model="gpt-4")
        estimate = estimate_cost(restaurant_dataset, config)
        real = Preprocessor(SimulatedLLM("gpt-4"), config).run(restaurant_dataset)
        ratio = estimate.completion_tokens / max(real.usage.completion_tokens, 1)
        assert 0.4 < ratio < 2.5

    def test_batching_reduces_estimate(self, adult_dataset):
        single = estimate_cost(
            adult_dataset, PipelineConfig(model="gpt-3.5", batch_size=1)
        )
        batched = estimate_cost(
            adult_dataset, PipelineConfig(model="gpt-3.5", batch_size=15)
        )
        assert batched.total_tokens < single.total_tokens
        assert batched.cost_usd < single.cost_usd
        assert batched.hours < single.hours
        assert batched.n_requests < single.n_requests

    def test_reasoning_increases_completion_estimate(self, restaurant_dataset):
        with_reasoning = estimate_cost(
            restaurant_dataset, PipelineConfig(model="gpt-4", reasoning=True)
        )
        without = estimate_cost(
            restaurant_dataset, PipelineConfig(model="gpt-4", reasoning=False)
        )
        assert with_reasoning.completion_tokens > without.completion_tokens

    def test_gpt4_costs_more_than_gpt35(self, restaurant_dataset):
        cheap = estimate_cost(restaurant_dataset, PipelineConfig(model="gpt-3.5"))
        pricey = estimate_cost(restaurant_dataset, PipelineConfig(model="gpt-4"))
        assert pricey.cost_usd > cheap.cost_usd

    def test_empty_dataset_rejected(self):
        empty = PreprocessingDataset(
            name="e", task=Task.ENTITY_MATCHING, instances=[]
        )
        with pytest.raises(EvaluationError):
            estimate_cost(empty)

    def test_str_summary(self, restaurant_dataset):
        estimate = estimate_cost(restaurant_dataset, PipelineConfig(model="gpt-4"))
        text = str(estimate)
        assert "gpt-4" in text and "$" in text


class TestCompareBatchSizes:
    def test_monotone_token_curve(self):
        dataset = load_dataset("adult", size=200)
        curve = compare_batch_sizes(dataset, PipelineConfig(model="gpt-3.5"))
        tokens = [e.total_tokens for e in curve]
        assert tokens == sorted(tokens, reverse=True)
        assert [e.n_requests for e in curve] == sorted(
            (e.n_requests for e in curve), reverse=True
        )
