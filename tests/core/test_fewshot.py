"""Tests for repro.core.fewshot."""

import pytest

from repro.core.fewshot import example_answer, example_reason, render_examples
from repro.errors import PromptError


class TestExampleAnswer:
    def test_di_answer_is_true_value(self, restaurant_dataset):
        inst = restaurant_dataset.fewshot_pool[0]
        assert example_answer(inst) == inst.true_value

    def test_binary_answers(self, beer_dataset):
        for inst in beer_dataset.fewshot_pool:
            assert example_answer(inst) == ("yes" if inst.label else "no")


class TestExampleReason:
    def test_di_reason_mentions_value(self, restaurant_dataset):
        inst = restaurant_dataset.fewshot_pool[0]
        reason = example_reason(inst)
        assert inst.true_value in reason

    def test_ed_reason_confirms_target(self, adult_dataset):
        inst = adult_dataset.fewshot_pool[0]
        assert inst.target_attribute in example_reason(inst)

    def test_sm_reason_mentions_names(self, synthea_dataset):
        inst = synthea_dataset.fewshot_pool[0]
        reason = example_reason(inst)
        assert inst.pair.left.name in reason


class TestRenderExamples:
    def test_reasoning_two_lines(self, restaurant_dataset):
        examples = restaurant_dataset.sample_fewshot(2)
        user, assistant = render_examples(examples, reasoning=True)
        assert user.count("Question") == 2
        assert assistant.count("Answer") == 2
        # Each answer block spans two lines: marker+reason, then value.
        first_block = assistant.split("Answer 2:")[0].strip()
        assert len(first_block.splitlines()) == 2

    def test_no_reasoning_single_lines(self, restaurant_dataset):
        examples = restaurant_dataset.sample_fewshot(2)
        __, assistant = render_examples(examples, reasoning=False)
        for line in assistant.splitlines():
            assert line.startswith("Answer")

    def test_empty_rejected(self):
        with pytest.raises(PromptError):
            render_examples([], reasoning=True)
