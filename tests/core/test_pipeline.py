"""Tests for repro.core.pipeline (against the simulated LLM and stubs)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.executor import ExecutorConfig
from repro.core.pipeline import (
    DEFAULT_TEMPERATURE,
    Preprocessor,
    default_temperature_for,
)
from repro.data.instances import PreprocessingDataset, Task
from repro.errors import (
    ContextWindowExceededError,
    EvaluationError,
    UnknownModelError,
)
from repro.llm.accounting import meter_response, request_prompt_tokens
from repro.llm.base import CompletionRequest, CompletionResponse, Usage
from repro.llm.profiles import get_profile


class _ScriptedClient:
    """A stub client answering every question 'yes' (or a fixed value)."""

    def __init__(self, answer="yes", reasoning=True):
        self.requests: list[CompletionRequest] = []
        self._answer = answer
        self._reasoning = reasoning

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        self.requests.append(request)
        final = request.messages[-1].content
        count = final.count("Question ")
        blocks = []
        for i in range(1, count + 1):
            if self._reasoning:
                blocks.append(f"Answer {i}: because I said so\n{self._answer}")
            else:
                blocks.append(f"Answer {i}: {self._answer}")
        return meter_response(get_profile("gpt-3.5"), request, "\n".join(blocks))


class _GarbageClient:
    """A stub that never follows the answer format."""

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        return meter_response(
            get_profile("gpt-3.5"), request, "I am not sure about anything"
        )


class _TinyWindowClient:
    """Raises context overflow for prompts above a tiny budget."""

    def __init__(self, budget=700):
        self._budget = budget
        self.overflows = 0
        self._inner = _ScriptedClient()

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        if request_prompt_tokens(request) > self._budget:
            self.overflows += 1
            raise ContextWindowExceededError("gpt-3.5", 9999, self._budget)
        return self._inner.complete(request)


class TestPreprocessor:
    def test_alignment_and_coverage(self, beer_dataset):
        client = _ScriptedClient(answer="yes")
        result = Preprocessor(client, PipelineConfig(model="gpt-3.5")).run(
            beer_dataset
        )
        assert len(result.predictions) == len(beer_dataset.instances)
        assert all(p is True for p in result.predictions)

    def test_di_values_passed_through(self, restaurant_dataset):
        client = _ScriptedClient(answer="atlanta")
        result = Preprocessor(client, PipelineConfig(model="gpt-3.5")).run(
            restaurant_dataset
        )
        assert set(result.predictions) == {"atlanta"}

    def test_batching_reduces_requests(self, beer_dataset):
        one = _ScriptedClient()
        batched = _ScriptedClient()
        Preprocessor(one, PipelineConfig(model="gpt-3.5", batch_size=1)).run(
            beer_dataset
        )
        Preprocessor(batched, PipelineConfig(model="gpt-3.5", batch_size=10)).run(
            beer_dataset
        )
        assert len(batched.requests) < len(one.requests)

    def test_fewshot_zero_omits_examples(self, beer_dataset):
        client = _ScriptedClient()
        Preprocessor(client, PipelineConfig(model="gpt-3.5", fewshot=0)).run(
            beer_dataset
        )
        for request in client.requests:
            assert [m.role for m in request.messages] == ["system", "user"]

    def test_garbage_replies_fall_back_to_no(self, beer_dataset):
        result = Preprocessor(
            _GarbageClient(), PipelineConfig(model="gpt-3.5")
        ).run(beer_dataset)
        assert result.n_fallbacks == len(beer_dataset.instances)
        assert all(p is False for p in result.predictions)
        assert result.n_format_retries > 0

    def test_context_overflow_splits_batches(self, beer_dataset):
        client = _TinyWindowClient(budget=900)
        result = Preprocessor(
            client, PipelineConfig(model="gpt-3.5", batch_size=15, fewshot=0)
        ).run(beer_dataset)
        assert client.overflows > 0
        assert result.n_fallbacks == 0
        assert len(result.predictions) == len(beer_dataset.instances)

    def test_ed_groups_by_target_attribute(self, adult_dataset):
        client = _ScriptedClient()
        small = adult_dataset.subset(40)
        Preprocessor(client, PipelineConfig(model="gpt-3.5")).run(small)
        # Every request's system prompt names exactly one target attribute,
        # and every question in it asks about that attribute.
        for request in client.requests:
            system = request.messages[0].content
            final = request.messages[-1].content
            import re

            target = re.search(r'the "([^"]+)" attribute', system).group(1)
            for line in final.splitlines():
                if line.startswith("Question"):
                    assert f'error in the "{target}" attribute' in line

    def test_empty_dataset_rejected(self, beer_dataset):
        empty = PreprocessingDataset(
            name="empty", task=Task.ENTITY_MATCHING, instances=[]
        )
        with pytest.raises(EvaluationError):
            Preprocessor(_ScriptedClient(), PipelineConfig()).run(empty)

    def test_usage_accumulated(self, beer_dataset):
        client = _ScriptedClient()
        result = Preprocessor(client, PipelineConfig(model="gpt-3.5")).run(
            beer_dataset
        )
        assert result.usage.prompt_tokens > 0
        assert result.usage.completion_tokens > 0
        assert result.estimated_seconds > 0
        assert result.n_requests == len(client.requests)

    def test_keep_raw(self, beer_dataset):
        client = _ScriptedClient()
        result = Preprocessor(client, PipelineConfig(model="gpt-3.5")).run(
            beer_dataset, keep_raw=True
        )
        assert len(result.raw_replies) == result.n_requests

    def test_execution_report_attached(self, beer_dataset):
        client = _ScriptedClient()
        result = Preprocessor(client, PipelineConfig(model="gpt-3.5")).run(
            beer_dataset
        )
        report = result.execution
        assert report is not None
        assert report.concurrency == 1
        assert report.n_calls == result.n_requests
        assert result.estimated_seconds == pytest.approx(report.makespan_s)

    def test_executor_follows_pipeline_concurrency(self, beer_dataset):
        config = PipelineConfig(model="gpt-3.5", concurrency=4, seed=3)
        preprocessor = Preprocessor(
            _ScriptedClient(), config, ExecutorConfig(max_attempts=5)
        )
        # concurrency and seed come from the pipeline config; other
        # executor knobs survive.
        assert preprocessor.executor_config.concurrency == 4
        assert preprocessor.executor_config.seed == 3
        assert preprocessor.executor_config.max_attempts == 5
        result = preprocessor.run(beer_dataset)
        assert result.execution.concurrency == 4


class TestDefaultTemperature:
    def test_paper_values(self):
        assert default_temperature_for("gpt-3.5") == 0.75
        assert default_temperature_for("gpt-4") == 0.65
        assert default_temperature_for("gpt-3") == 0.75
        assert default_temperature_for("vicuna-13b") == 0.2

    def test_every_entry_names_a_registered_profile(self):
        for model in DEFAULT_TEMPERATURE:
            assert default_temperature_for(model) == DEFAULT_TEMPERATURE[model]

    def test_unknown_model_fails_loudly(self):
        with pytest.raises(UnknownModelError):
            default_temperature_for("gpt-5-turbo")

    def test_pipeline_rejects_unknown_model_up_front(self, beer_dataset):
        config = PipelineConfig(model="gpt-5-turbo")
        with pytest.raises(UnknownModelError):
            Preprocessor(_ScriptedClient(), config).run(beer_dataset)

    def test_explicit_temperature_bypasses_lookup(self, beer_dataset):
        # A caller bringing their own model (and temperature) is not
        # forced through the registry.
        client = _ScriptedClient()
        config = PipelineConfig(model="gpt-5-turbo", temperature=0.5)
        result = Preprocessor(client, config).run(beer_dataset)
        assert len(result.predictions) == len(beer_dataset.instances)
        assert all(r.temperature == 0.5 for r in client.requests)
