"""Tests for repro.core.prep (the shared data-prep artifact cache)."""

import numpy as np

from repro.core.batching import batch_homogeneity, make_batches
from repro.core.prep import PrepArtifacts
from repro.obs.metrics import MetricsRegistry
from repro.text.embeddings import HashingEmbedder


class TestSerializationMemo:
    def test_each_instance_serialized_once(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        first = prep.texts(instances)
        second = prep.texts(instances)
        assert first == second
        assert prep.stats.serialize_misses == len(instances)
        assert prep.stats.serialize_hits == len(instances)

    def test_text_matches_serialize_instance(self, amazon_google_dataset):
        from repro.core.contextualize import serialize_instance

        instance = list(amazon_google_dataset.instances)[0]
        assert PrepArtifacts().text_of(instance) == serialize_instance(instance)


class TestEmbeddingMemo:
    def test_matrix_computed_once(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts(embedder=HashingEmbedder(dim=64))
        a = prep.matrix(instances)
        b = prep.matrix(instances)
        assert a is b
        assert prep.stats.embed_misses == 1
        assert prep.stats.embed_hits == 1
        assert prep.stats.embed_texts == len(instances)

    def test_matrix_matches_direct_embedding(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)[:20]
        embedder = HashingEmbedder(dim=64)
        prep = PrepArtifacts(embedder=embedder)
        direct = embedder.embed_all(
            [prep.text_of(inst) for inst in instances]
        )
        assert (prep.matrix(instances) == direct).all()

    def test_distinct_instance_sets_get_distinct_matrices(
        self, amazon_google_dataset
    ):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        a = prep.matrix(instances[:10])
        b = prep.matrix(instances[10:20])
        assert a.shape == b.shape
        assert prep.stats.embed_misses == 2


class TestClusterMemo:
    def test_labels_cached_per_k_and_seed(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        a = prep.labels(instances, k=4, seed=0)
        b = prep.labels(instances, k=4, seed=0)
        c = prep.labels(instances, k=5, seed=0)
        d = prep.labels(instances, k=4, seed=1)
        assert a is b
        assert prep.stats.cluster_misses == 3
        assert prep.stats.cluster_hits == 1
        assert len(a) == len(c) == len(d) == len(instances)

    def test_cluster_members_cover_all_positions(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        groups = prep.cluster_members(instances, k=4, seed=0)
        flat = sorted(i for group in groups for i in group)
        assert flat == list(range(len(instances)))


class TestSharedArtifactsAcrossBatchingCalls:
    def test_homogeneity_reuses_make_batches_embeddings(
        self, amazon_google_dataset
    ):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        batches = make_batches(
            instances, 7, mode="cluster", seed=0, artifacts=prep
        )
        misses_after_batching = prep.stats.embed_misses
        batch_homogeneity(instances, batches, artifacts=prep)
        # The homogeneity pass embeds nothing new.
        assert prep.stats.embed_misses == misses_after_batching
        assert prep.stats.embed_hits >= 1
        assert prep.stats.serialize_misses == len(instances)

    def test_shared_artifacts_change_no_batches(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        plain = make_batches(instances, 7, mode="cluster", seed=0)
        shared = make_batches(
            instances, 7, mode="cluster", seed=0, artifacts=PrepArtifacts()
        )
        assert plain == shared

    def test_homogeneity_same_with_and_without_artifacts(
        self, amazon_google_dataset
    ):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        batches = make_batches(
            instances, 7, mode="cluster", seed=0, artifacts=prep
        )
        assert batch_homogeneity(
            instances, batches, artifacts=prep
        ) == batch_homogeneity(instances, batches)


class TestMetricsWiring:
    def test_counters_follow_cache_traffic(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        registry = MetricsRegistry()
        prep = PrepArtifacts(metrics=registry)
        prep.matrix(instances)
        prep.matrix(instances)
        prep.labels(instances, k=4, seed=0)
        counters = registry.snapshot()["counters"]
        assert counters["prep.serialize.misses"] == len(instances)
        assert counters["prep.embed.misses"] == 1
        assert counters["prep.embed.hits"] >= 1
        assert counters["prep.embed.texts"] == len(instances)
        assert counters["prep.cluster.misses"] == 1
        assert counters["prep.kmeans.iterations"] >= 1

    def test_no_registry_still_counts_stats(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        prep.matrix(instances)
        assert prep.stats.embed_misses == 1
        assert prep.stats.embed_wall_s >= 0.0


class TestFingerprint:
    def test_same_content_same_fingerprint(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        assert prep.fingerprint(instances) == prep.fingerprint(list(instances))

    def test_order_sensitive(self, amazon_google_dataset):
        instances = list(amazon_google_dataset.instances)
        prep = PrepArtifacts()
        assert prep.fingerprint(instances) != prep.fingerprint(
            list(reversed(instances))
        )


class TestNearestNeighborTieBreak:
    def test_equal_scores_ordered_by_index(self):
        from repro.text.embeddings import nearest_neighbors

        # Five identical rows: every score ties, so the winner set must be
        # the lowest indices, in ascending order.
        row = np.ones(8) / np.sqrt(8.0)
        matrix = np.tile(row, (5, 1))
        assert nearest_neighbors(row, matrix, k=3) == [0, 1, 2]

    def test_distinct_scores_sorted_descending(self):
        from repro.text.embeddings import nearest_neighbors

        query = np.array([1.0, 0.0])
        matrix = np.array([[0.0, 1.0], [1.0, 0.0], [0.6, 0.8]])
        assert nearest_neighbors(query, matrix, k=2) == [1, 2]
