"""Tests for repro.core.contextualize."""

import pytest

from repro.core.contextualize import (
    parse_record_pair,
    parse_serialized_record,
    serialize_attribute,
    serialize_instance,
    serialize_record,
)
from repro.data.instances import EMInstance, SMInstance
from repro.data.records import AttributePair, Record, RecordPair
from repro.data.schema import Attribute, Schema
from repro.errors import PromptError


class TestSerializeRecord:
    def test_paper_format(self, alice):
        text = serialize_record(alice)
        assert text == '[name: "alice", age: "30", city: "boston"]'

    def test_missing_rendered_as_question_marks(self, people_schema):
        record = Record(schema=people_schema, values={"name": "x"})
        text = serialize_record(record)
        assert "age: ???" in text
        assert '"???"' not in text


class TestRoundtrip:
    def test_parse_inverts_serialize(self, alice):
        fields = parse_serialized_record(serialize_record(alice))
        assert fields == {"name": "alice", "age": "30", "city": "boston"}

    def test_missing_roundtrip(self, people_schema):
        record = Record(schema=people_schema, values={"name": "x"})
        fields = parse_serialized_record(serialize_record(record))
        assert fields["age"] is None
        assert fields["name"] == "x"

    def test_surrounding_text_tolerated(self, alice):
        text = f"Question 3: Record is {serialize_record(alice)}. What is it?"
        fields = parse_serialized_record(text)
        assert fields["city"] == "boston"

    def test_no_record_raises(self):
        with pytest.raises(PromptError):
            parse_serialized_record("no brackets here")

    def test_empty_brackets_raise(self):
        with pytest.raises(PromptError):
            parse_serialized_record("[]")


class TestPairSerialization:
    def test_em_instance(self, alice):
        inst = EMInstance(pair=RecordPair(alice, alice.copy()), label=True)
        text = serialize_instance(inst)
        assert text.startswith("Record A is [")
        assert "Record B is [" in text
        left, right = parse_record_pair(text)
        assert left["name"] == right["name"] == "alice"

    def test_sm_instance(self):
        pair = AttributePair(
            Attribute("dob", description="date of birth"),
            Attribute("birth_date", description="birth date"),
        )
        inst = SMInstance(pair=pair, label=True)
        text = serialize_instance(inst)
        assert 'name: "dob"' in text
        left, right = parse_record_pair(text)
        assert left["name"] == "dob"
        assert right["description"] == "birth date"

    def test_missing_second_record_raises(self):
        with pytest.raises(PromptError):
            parse_record_pair('Record A is [a: "1"]. nothing else')


class TestSerializeAttribute:
    def test_format(self):
        text = serialize_attribute(Attribute("x", description="desc"))
        assert text == '[name: "x", description: "desc"]'
