"""Sharded execution: bit-identity across worker counts and vs the legacy
single-process path, plus the crash-sentinel contract."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import Preprocessor
from repro.datasets import load_dataset
from repro.errors import InjectedCrashError, ShardError
from repro.llm.backend import FaultBackend, SimulatedBackend
from repro.llm.faults import Fault
from repro.shard import ShardChaos, plan_shards, run_sharded, shard_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("adult", size=40, seed=0)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(observability=True)


@pytest.fixture(scope="module")
def backend():
    return SimulatedBackend()


@pytest.fixture(scope="module")
def reference(backend, config, dataset):
    """The workers=1 sharded run every other configuration is diffed against."""
    return run_sharded(backend, config, dataset, n_shards=4, workers=1,
                       keep_raw=True)


class TestWorkerCountIndependence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_merged_payload_is_bit_identical(self, backend, config, dataset,
                                             reference, workers):
        run = run_sharded(backend, config, dataset, n_shards=4,
                          workers=workers, keep_raw=True)
        assert run.payload() == reference.payload()

    def test_worker_count_caps_at_the_shard_count(self, backend, config,
                                                  dataset):
        run = run_sharded(backend, config, dataset, n_shards=2, workers=16)
        assert run.workers == 2


class TestSingleShardMatchesLegacy:
    def test_field_by_field(self, backend, config, dataset):
        sharded = run_sharded(backend, config, dataset, n_shards=1,
                              workers=1, keep_raw=True).merged
        legacy = Preprocessor(backend.build(), config).run(
            dataset, keep_raw=True
        )
        assert sharded.predictions == legacy.predictions
        assert sharded.raw_replies == legacy.raw_replies
        assert sharded.usage["prompt_tokens"] == legacy.usage.prompt_tokens
        assert (
            sharded.usage["completion_tokens"]
            == legacy.usage.completion_tokens
        )
        assert sharded.n_requests == legacy.n_requests
        assert sharded.n_format_retries == legacy.n_format_retries
        assert sharded.n_fallbacks == legacy.n_fallbacks
        assert sharded.estimated_seconds == legacy.estimated_seconds
        assert sharded.sequential_seconds == legacy.estimated_seconds


class TestShardDataset:
    def test_keeps_name_order_and_the_full_fewshot_pool(self, config, dataset):
        plan = plan_shards(dataset, config, 4)
        spec = plan.nonempty_shards[0]
        sub = shard_dataset(dataset, spec)
        assert sub.name == dataset.name
        assert sub.task == dataset.task
        assert sub.fewshot_pool == dataset.fewshot_pool
        assert sub.instances == [
            dataset.instances[index] for index in spec.indices
        ]


class TestRunnerContracts:
    def test_rejects_a_bare_client(self, config, dataset):
        with pytest.raises(ShardError, match="Backend"):
            run_sharded(SimulatedBackend().build(), config, dataset)

    def test_rejects_nonpositive_workers(self, backend, config, dataset):
        with pytest.raises(ShardError, match="workers"):
            run_sharded(backend, config, dataset, workers=0)

    def test_journal_chaos_without_workdir_is_an_error(self, backend, config,
                                                       dataset):
        with pytest.raises(ShardError, match="workdir"):
            run_sharded(
                backend, config, dataset, n_shards=2,
                chaos=ShardChaos(shard_id=0, site="mid_journal", at=1),
            )

    def test_unknown_chaos_site_is_an_error(self):
        with pytest.raises(ShardError, match="site"):
            ShardChaos(shard_id=0, site="mid_merge", at=1)

    def test_worker_crash_surfaces_after_siblings_finish(
        self, backend, config, dataset, tmp_path
    ):
        plan = plan_shards(dataset, config, 3)
        target = plan.nonempty_shards[0].shard_id
        with pytest.raises(InjectedCrashError):
            run_sharded(
                backend, config, dataset, n_shards=3, workers=1,
                workdir=tmp_path,
                chaos=ShardChaos(shard_id=target, site="mid_batch", at=1),
            )
        # every *other* shard completed and left a sealed journal behind
        journals = sorted(p.name for p in tmp_path.glob("shard-*.journal"))
        expected = sorted(
            f"shard-{spec.shard_id:04d}.journal"
            for spec in plan.nonempty_shards
        )
        assert journals == expected

    def test_mid_batch_chaos_arms_an_existing_fault_backend(
        self, config, dataset
    ):
        # A pre-wrapped backend (as the chaos harness uses) must not end up
        # double-wrapped: the journaled client state's shape depends on the
        # stack, and resume rebuilds the stack without the chaos.
        wrapped = FaultBackend(
            SimulatedBackend(),
            {1: Fault(kind="rate_limit", message="slow down")},
        )
        with pytest.raises(InjectedCrashError):
            run_sharded(
                wrapped, config, dataset, n_shards=2, workers=1,
                chaos=ShardChaos(shard_id=0, site="mid_batch", at=2),
            )
