"""The shard plan: pure, content-addressed, exhaustive-and-disjoint."""

import pytest

from repro.core.config import PipelineConfig
from repro.datasets import load_dataset
from repro.errors import ShardError
from repro.shard import (
    config_fingerprint,
    dataset_digest,
    default_shard_count,
    plan_shards,
    shard_of,
)
from repro.shard.plan import MAX_AUTO_SHARDS


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("adult", size=60, seed=0)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig()


class TestPlanShards:
    def test_replanning_is_bit_identical(self, dataset, config):
        assert plan_shards(dataset, config, 4) == plan_shards(
            dataset, config, 4
        )

    def test_every_index_lands_in_exactly_one_shard(self, dataset, config):
        plan = plan_shards(dataset, config, 5)
        seen = [index for spec in plan.shards for index in spec.indices]
        assert sorted(seen) == list(range(len(dataset.instances)))
        assert len(seen) == len(set(seen))

    def test_shard_indices_preserve_dataset_order(self, dataset, config):
        plan = plan_shards(dataset, config, 5)
        for spec in plan.shards:
            assert list(spec.indices) == sorted(spec.indices)

    def test_single_shard_plan_owns_everything(self, dataset, config):
        plan = plan_shards(dataset, config, 1)
        assert plan.n_shards == 1
        assert plan.shards[0].indices == tuple(range(len(dataset.instances)))

    def test_plan_is_sealed_to_dataset_and_config(self, dataset, config):
        plan = plan_shards(dataset, config, 3)
        assert plan.digest == dataset_digest(dataset)
        assert plan.fingerprint == config_fingerprint(config)

        other_data = load_dataset("adult", size=60, seed=1)
        assert plan_shards(other_data, config, 3).digest != plan.digest

        other_config = PipelineConfig(seed=config.seed + 1)
        assert (
            plan_shards(dataset, other_config, 3).fingerprint
            != plan.fingerprint
        )

    def test_assignment_is_content_addressed_not_positional(
        self, dataset, config
    ):
        plan = plan_shards(dataset, config, 4)
        salt = f"{plan.fingerprint}|{plan.n_shards}"
        for spec in plan.shards:
            for index in spec.indices:
                assert (
                    shard_of(dataset.instances[index], 4, salt)
                    == spec.shard_id
                )

    def test_shard_for_index_inverts_the_partition(self, dataset, config):
        plan = plan_shards(dataset, config, 4)
        for spec in plan.nonempty_shards:
            assert plan.shard_for_index(spec.indices[0]) == spec.shard_id
        with pytest.raises(ShardError):
            plan.shard_for_index(len(dataset.instances))

    def test_describe_is_plain_data(self, dataset, config):
        described = plan_shards(dataset, config, 4).describe()
        assert described["n_instances"] == len(dataset.instances)
        assert described["n_shards"] == 4
        assert sum(described["shard_sizes"]) == len(dataset.instances)
        assert set(described) == {
            "digest", "fingerprint", "n_instances", "n_shards", "shard_sizes"
        }

    def test_rejects_nonpositive_shard_counts(self, dataset, config):
        with pytest.raises(ShardError):
            plan_shards(dataset, config, 0)
        with pytest.raises(ShardError):
            plan_shards(dataset, config, -2)


class TestDefaultShardCount:
    def test_small_datasets_stay_single_shard(self, config):
        batch = config.batch_size_for_model()
        assert default_shard_count(8 * batch, config) == 1
        assert default_shard_count(1, config) == 1
        assert default_shard_count(0, config) == 1

    def test_large_datasets_cap_at_the_ceiling(self, config):
        assert default_shard_count(10_000_000, config) == MAX_AUTO_SHARDS

    def test_growth_is_monotone(self, config):
        counts = [
            default_shard_count(n, config) for n in range(0, 4000, 97)
        ]
        assert counts == sorted(counts)
