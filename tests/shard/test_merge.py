"""The merge fold: associative, commutative, and loudly unforgiving."""

import pytest

from repro.errors import ShardError
from repro.shard import combine, delta_of, empty_delta, finalize, merge_shards
from repro.shard.merge import SPAN_STRIDE, _merge_metrics, _rebase_spans
from repro.shard.plan import ShardPlan, ShardSpec


def _plan(assignment: dict[int, tuple[int, ...]], n_instances: int) -> ShardPlan:
    n_shards = max(assignment) + 1
    return ShardPlan(
        digest="d" * 32,
        fingerprint="f" * 16,
        n_instances=n_instances,
        n_shards=n_shards,
        shards=tuple(
            ShardSpec(shard_id=sid, indices=assignment.get(sid, ()))
            for sid in range(n_shards)
        ),
    )


def _payload(shard_id: int, indices: tuple[int, ...], *, seconds=1.0,
             predictions=None, quarantine=(), metrics=None, spans=None):
    return {
        "shard_id": shard_id,
        "indices": list(indices),
        "predictions": (
            list(predictions)
            if predictions is not None
            else [f"p{index}" for index in indices]
        ),
        "quarantine": list(quarantine),
        "usage": {"prompt_tokens": 100, "completion_tokens": 10},
        "n_requests": 2,
        "n_format_retries": 1,
        "n_fallbacks": 0,
        "estimated_seconds": seconds,
        "raw_replies": [],
        "exchanges": [],
        "metrics": metrics,
        "spans": spans,
    }


class TestCombine:
    def test_identity_associativity_commutativity(self):
        a = delta_of(_payload(0, (0, 2)))
        b = delta_of(_payload(1, (1,)))
        c = delta_of(_payload(2, (3,)))
        assert combine(empty_delta(), a) == a
        assert combine(a, empty_delta()) == a
        assert combine(combine(a, b), c) == combine(a, combine(b, c))
        assert combine(a, b) == combine(b, a)

    def test_overlapping_shards_refuse_to_combine(self):
        a = delta_of(_payload(0, (0,)))
        with pytest.raises(ShardError, match="exactly once"):
            combine(a, delta_of(_payload(0, (0,))))


class TestFinalize:
    def test_scatters_predictions_through_the_plan(self):
        plan = _plan({0: (0, 3), 1: (1, 2)}, 4)
        merged = merge_shards(
            plan, [_payload(0, (0, 3)), _payload(1, (1, 2))]
        )
        assert merged.predictions == ["p0", "p1", "p2", "p3"]
        assert merged.n_requests == 4
        assert merged.n_format_retries == 2
        assert merged.usage == {"prompt_tokens": 200, "completion_tokens": 20}

    def test_fold_order_cannot_change_the_result(self):
        plan = _plan({0: (0, 3), 1: (1, 2), 2: (4,)}, 5)
        payloads = [
            _payload(0, (0, 3)), _payload(1, (1, 2)), _payload(2, (4,)),
        ]
        forward = merge_shards(plan, payloads).payload()
        backward = merge_shards(plan, list(reversed(payloads))).payload()
        assert forward == backward

    def test_parallel_makespan_is_max_sequential_is_sum(self):
        plan = _plan({0: (0,), 1: (1,)}, 2)
        merged = merge_shards(plan, [
            _payload(0, (0,), seconds=3.0), _payload(1, (1,), seconds=5.0),
        ])
        assert merged.estimated_seconds == 5.0
        assert merged.sequential_seconds == 8.0

    def test_quarantine_remaps_local_to_global_and_sorts(self):
        plan = _plan({0: (2, 5), 1: (0, 7)}, 8)
        merged = merge_shards(plan, [
            _payload(0, (2, 5),
                     quarantine=[{"index": 1, "reason": "r", "detail": ""}]),
            _payload(1, (0, 7),
                     quarantine=[{"index": 0, "reason": "q", "detail": ""}]),
        ])
        assert [entry["index"] for entry in merged.quarantine] == [0, 5]
        assert merged.n_quarantined == 2
        assert merged.coverage == pytest.approx(6 / 8)

    def test_missing_shard_payload_is_an_error(self):
        plan = _plan({0: (0,), 1: (1,)}, 2)
        with pytest.raises(ShardError, match="missing shard payload"):
            merge_shards(plan, [_payload(0, (0,))])

    def test_foreign_shard_payload_is_an_error(self):
        plan = _plan({0: (0, 1)}, 2)
        with pytest.raises(ShardError, match="unplanned"):
            merge_shards(plan, [_payload(0, (0, 1)), _payload(7, (9,))])

    def test_empty_shards_need_no_payload(self):
        plan = _plan({0: (0, 1), 1: ()}, 2)
        merged = merge_shards(plan, [_payload(0, (0, 1))])
        assert merged.predictions == ["p0", "p1"]

    def test_payload_from_a_foreign_plan_is_an_error(self):
        plan = _plan({0: (0, 1)}, 2)
        with pytest.raises(ShardError, match="foreign plan"):
            merge_shards(plan, [_payload(0, (0, 2))])

    def test_prediction_count_mismatch_is_an_error(self):
        plan = _plan({0: (0, 1)}, 2)
        with pytest.raises(ShardError, match="prediction"):
            merge_shards(plan, [_payload(0, (0, 1), predictions=["only"])])


class TestMetricsMerge:
    def test_counters_and_histograms_sum_gauges_namespace(self):
        merged = _merge_metrics([
            (0, {
                "counters": {"llm.requests": 2},
                "gauges": {"cache.hit_rate": 0.5},
                "histograms": {"latency": {
                    "bounds": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1,
                }},
            }),
            (3, {
                "counters": {"llm.requests": 3},
                "gauges": {"cache.hit_rate": 0.25},
                "histograms": {"latency": {
                    "bounds": [1.0], "counts": [0, 2], "sum": 4.0, "count": 2,
                }},
            }),
        ])
        assert merged["counters"] == {"llm.requests": 5.0}
        assert merged["gauges"] == {
            "shard000.cache.hit_rate": 0.5,
            "shard003.cache.hit_rate": 0.25,
        }
        assert merged["histograms"]["latency"] == {
            "bounds": [1.0], "counts": [1, 2], "sum": 4.5, "count": 3,
        }

    def test_divergent_histogram_bounds_are_an_error(self):
        with pytest.raises(ShardError, match="divergent"):
            _merge_metrics([
                (0, {"counters": {}, "gauges": {}, "histograms": {"h": {
                    "bounds": [1.0], "counts": [0, 0], "sum": 0, "count": 0,
                }}}),
                (1, {"counters": {}, "gauges": {}, "histograms": {"h": {
                    "bounds": [2.0], "counts": [0, 0], "sum": 0, "count": 0,
                }}}),
            ])

    def test_all_absent_snapshots_merge_to_none(self):
        assert _merge_metrics([(0, None), (1, None)]) is None


class TestSpanRebasing:
    def test_ids_shift_into_the_shard_stride_and_tag_the_shard(self):
        spans = [
            {"span_id": 1, "parent_id": None, "attributes": {"x": 1}},
            {"span_id": 2, "parent_id": 1, "attributes": {}},
        ]
        rebased = _rebase_spans(2, spans)
        assert rebased[0]["span_id"] == 1 + 2 * SPAN_STRIDE
        assert rebased[0]["parent_id"] is None
        assert rebased[1]["parent_id"] == 1 + 2 * SPAN_STRIDE
        assert all(span["attributes"]["shard"] == 2 for span in rebased)
        # the originals are untouched (merge must not mutate payloads)
        assert spans[0]["span_id"] == 1
        assert "shard" not in spans[0]["attributes"]
