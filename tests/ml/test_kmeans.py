"""Tests for repro.ml.kmeans."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml.kmeans import KMeans


@pytest.fixture()
def three_blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack([
        center + rng.normal(scale=0.3, size=(30, 2)) for center in centers
    ])
    return points


class TestKMeans:
    def test_recovers_blobs(self, three_blobs):
        model = KMeans(k=3, seed=1).fit(three_blobs)
        groups = model.clusters()
        assert len(groups) == 3
        # Each true blob should land in exactly one cluster.
        for start in (0, 30, 60):
            blob_labels = {int(model.labels_[i]) for i in range(start, start + 30)}
            assert len(blob_labels) == 1

    def test_deterministic_per_seed(self, three_blobs):
        a = KMeans(k=3, seed=5).fit(three_blobs).labels_
        b = KMeans(k=3, seed=5).fit(three_blobs).labels_
        assert np.array_equal(a, b)

    def test_fewer_points_than_k(self):
        X = np.array([[0.0], [1.0]])
        model = KMeans(k=5).fit(X)
        assert len(model.clusters()) == 2
        assert model.inertia_ == 0.0

    def test_predict_assigns_nearest(self, three_blobs):
        model = KMeans(k=3, seed=1).fit(three_blobs)
        label_at_origin = model.predict(np.array([[0.1, -0.1]]))[0]
        assert label_at_origin == model.labels_[0]

    def test_every_point_assigned(self, three_blobs):
        model = KMeans(k=3, seed=2).fit(three_blobs)
        assert sum(len(c) for c in model.clusters()) == len(three_blobs)

    def test_identical_points(self):
        X = np.ones((10, 2))
        model = KMeans(k=3, seed=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            KMeans(k=0)
        with pytest.raises(ReproError):
            KMeans(k=2).fit(np.zeros((0, 2)))
        with pytest.raises(ReproError):
            KMeans(k=2).predict(np.zeros((1, 2)))


class TestConvergenceExit:
    def test_early_exit_matches_full_budget(self, three_blobs):
        early = KMeans(k=3, seed=7).fit(three_blobs)
        full = KMeans(k=3, seed=7, early_stop=False).fit(three_blobs)
        assert np.array_equal(early.labels_, full.labels_)
        assert early.inertia_ == full.inertia_
        assert np.array_equal(early.centroids_, full.centroids_)

    def test_early_exit_runs_fewer_iterations(self, three_blobs):
        early = KMeans(k=3, seed=7).fit(three_blobs)
        full = KMeans(k=3, seed=7, early_stop=False).fit(three_blobs)
        assert early.n_iter_ < full.n_iter_ == 50

    def test_n_iter_tracks_degenerate_fit(self):
        model = KMeans(k=5).fit(np.array([[0.0], [1.0]]))
        assert model.n_iter_ == 0


class TestMatmulAssignment:
    def test_distances_match_broadcast_form(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 8))
        centroids = rng.normal(size=(5, 8))
        x_norms = (X * X).sum(axis=1)
        fast = KMeans._pairwise_sq_distances(X, x_norms, centroids)
        slow = ((X[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(fast, slow)
        assert (fast >= 0.0).all()

    def test_duplicate_points_distance_zero(self):
        X = np.ones((4, 3))
        x_norms = (X * X).sum(axis=1)
        distances = KMeans._pairwise_sq_distances(X, x_norms, X[:1].copy())
        # Cancellation noise must be clipped, never negative.
        assert (distances >= 0.0).all()

    def test_predict_matches_fit_labels(self, three_blobs):
        model = KMeans(k=3, seed=1).fit(three_blobs)
        assert np.array_equal(model.predict(three_blobs), model.labels_)
