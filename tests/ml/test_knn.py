"""Tests for repro.ml.knn."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml.knn import KNNClassifier, KNNImputer


class TestKNNClassifier:
    def test_majority_vote(self):
        X = np.array([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0]])
        model = KNNClassifier(k=2).fit(X, ["a", "a", "b"])
        assert model.predict_one(np.array([1.0, 0.05])) == "a"

    def test_euclidean_metric(self):
        X = np.array([[0.0], [10.0]])
        model = KNNClassifier(k=1, metric="euclidean").fit(X, ["low", "high"])
        assert model.predict_one(np.array([1.0])) == "low"

    def test_k_larger_than_data(self):
        X = np.array([[0.0], [1.0]])
        model = KNNClassifier(k=50).fit(X, ["a", "a"])
        assert model.predict(np.array([[0.5]])) == ["a"]

    def test_errors(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)
        with pytest.raises(ValueError):
            KNNClassifier(metric="manhattan")
        with pytest.raises(ReproError):
            KNNClassifier().fit(np.zeros((2, 1)), ["a"])
        with pytest.raises(ReproError):
            KNNClassifier().predict(np.zeros((1, 1)))


class TestKNNImputer:
    def test_similarity_weighted_vote(self):
        # One very close neighbor outvotes two distant ones.
        X = np.array([[1.0, 0.0], [0.0, 1.0], [0.05, 1.0]])
        model = KNNImputer(k=3).fit(X, ["near", "far", "far"])
        assert model.impute_one(np.array([1.0, 0.02])) == "near"

    def test_batch(self):
        X = np.eye(3)
        model = KNNImputer(k=1).fit(X, ["a", "b", "c"])
        assert model.impute(X) == ["a", "b", "c"]

    def test_errors(self):
        with pytest.raises(ValueError):
            KNNImputer(k=0)
        with pytest.raises(ReproError):
            KNNImputer().fit(np.zeros((0, 1)), [])
        with pytest.raises(ReproError):
            KNNImputer().impute(np.zeros((1, 1)))
