"""Tests for repro.ml.scaling."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml.scaling import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_passthrough(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)  # centered, not divided by zero

    def test_transform_before_fit_raises(self):
        with pytest.raises(ReproError):
            StandardScaler().transform(np.zeros((1, 1)))

    def test_non_2d_rejected(self):
        with pytest.raises(ReproError):
            StandardScaler().fit(np.zeros(3))
