"""Tests for repro.ml.naive_bayes."""

import pytest

from repro.errors import ReproError
from repro.ml.naive_bayes import MultinomialNB


@pytest.fixture()
def spam_model():
    documents = [
        ["win", "money", "now"],
        ["win", "prize", "money"],
        ["meeting", "tomorrow", "agenda"],
        ["project", "meeting", "notes"],
    ]
    labels = ["spam", "spam", "ham", "ham"]
    return MultinomialNB().fit(documents, labels)


class TestMultinomialNB:
    def test_classification(self, spam_model):
        assert spam_model.predict_one(["money", "win"]) == "spam"
        assert spam_model.predict_one(["meeting", "agenda"]) == "ham"

    def test_unseen_terms_smoothed(self, spam_model):
        # Must not crash or return -inf on novel vocabulary.
        value = spam_model.log_likelihood(["zebra"], "spam")
        assert value < 0

    def test_predict_batch(self, spam_model):
        out = spam_model.predict([["win"], ["meeting"]])
        assert out == ["spam", "ham"]

    def test_class_prior_influences(self):
        documents = [["x"], ["x"], ["x"], ["y"]]
        labels = ["a", "a", "a", "b"]
        model = MultinomialNB().fit(documents, labels)
        # A term seen in neither class defers to the prior.
        assert model.predict_one(["unseen"]) == "a"

    def test_unknown_class_raises(self, spam_model):
        with pytest.raises(ReproError):
            spam_model.log_likelihood(["x"], "nope")

    def test_errors(self):
        with pytest.raises(ValueError):
            MultinomialNB(alpha=0)
        with pytest.raises(ReproError):
            MultinomialNB().fit([], [])
        with pytest.raises(ReproError):
            MultinomialNB().fit([["x"]], ["a", "b"])
        with pytest.raises(ReproError):
            MultinomialNB().log_likelihood(["x"], "a")
