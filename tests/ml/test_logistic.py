"""Tests for repro.ml.logistic."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml.logistic import LogisticRegression


@pytest.fixture()
def separable():
    rng = np.random.default_rng(0)
    X0 = rng.normal(loc=-2.0, size=(60, 2))
    X1 = rng.normal(loc=+2.0, size=(60, 2))
    X = np.vstack([X0, X1])
    y = np.array([0.0] * 60 + [1.0] * 60)
    return X, y


class TestLogisticRegression:
    def test_separable_data_learned(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        assert accuracy > 0.97

    def test_probabilities_in_unit_interval(self, separable):
        X, y = separable
        p = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)

    def test_decision_function_sign_matches_prediction(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        logits = model.decision_function(X)
        assert np.array_equal(logits >= 0, model.predict(X) == 1)

    def test_balanced_weighting_helps_minority_recall(self):
        rng = np.random.default_rng(1)
        X0 = rng.normal(loc=-0.4, size=(500, 1))
        X1 = rng.normal(loc=+0.6, size=(25, 1))
        X = np.vstack([X0, X1])
        y = np.array([0.0] * 500 + [1.0] * 25)
        balanced = LogisticRegression(class_weight="balanced").fit(X, y)
        plain = LogisticRegression(class_weight=None).fit(X, y)
        recall_balanced = balanced.predict(X[500:]).mean()
        recall_plain = plain.predict(X[500:]).mean()
        assert recall_balanced >= recall_plain

    def test_predict_before_fit_raises(self):
        with pytest.raises(ReproError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_bad_labels_rejected(self):
        with pytest.raises(ReproError):
            LogisticRegression().fit(np.zeros((2, 1)), np.array([0.0, 2.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            LogisticRegression().fit(np.zeros((3, 1)), np.array([0.0, 1.0]))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(n_iter=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1)
        with pytest.raises(ValueError):
            LogisticRegression(class_weight="bogus")
