"""Tests for repro.data.schema."""

import pytest

from repro.data.schema import Attribute, AttrType, Schema
from repro.errors import SchemaError


class TestAttrType:
    def test_numeric_includes_binary(self):
        assert AttrType.NUMERIC.is_numeric
        assert AttrType.BINARY.is_numeric
        assert not AttrType.TEXT.is_numeric

    def test_textual_includes_categorical(self):
        assert AttrType.TEXT.is_textual
        assert AttrType.CATEGORICAL.is_textual
        assert not AttrType.NUMERIC.is_textual


class TestAttribute:
    def test_defaults_to_text(self):
        assert Attribute("name").type is AttrType.TEXT

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_str_is_name(self):
        assert str(Attribute("city")) == "city"

    def test_description_carried(self):
        attr = Attribute("dob", description="date of birth")
        assert attr.description == "date of birth"


class TestSchema:
    def test_from_names_order_preserved(self):
        schema = Schema.from_names("t", ["b", "a", "c"])
        assert schema.attribute_names == ("b", "a", "c")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_names("t", ["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(name="", attributes=())

    def test_lookup_by_name_and_index(self):
        schema = Schema.from_names("t", ["a", "b"])
        assert schema["a"].name == "a"
        assert schema[1].name == "b"

    def test_lookup_missing_raises(self):
        schema = Schema.from_names("t", ["a"])
        with pytest.raises(SchemaError):
            schema["nope"]
        with pytest.raises(SchemaError):
            schema[5]

    def test_contains_accepts_str_and_attribute(self):
        schema = Schema.from_names("t", ["a"])
        assert "a" in schema
        assert Attribute("a") in schema
        assert "b" not in schema

    def test_index_of(self):
        schema = Schema.from_names("t", ["a", "b", "c"])
        assert schema.index_of("c") == 2
        with pytest.raises(SchemaError):
            schema.index_of("zz")

    def test_project_preserves_requested_order(self):
        schema = Schema.from_names("t", ["a", "b", "c"])
        projected = schema.project(["c", "a"])
        assert projected.attribute_names == ("c", "a")

    def test_project_unknown_raises(self):
        schema = Schema.from_names("t", ["a"])
        with pytest.raises(SchemaError):
            schema.project(["a", "zz"])

    def test_types_applied(self):
        schema = Schema.from_names(
            "t", ["a", "b"], types={"a": AttrType.NUMERIC}
        )
        assert schema["a"].type is AttrType.NUMERIC
        assert schema["b"].type is AttrType.TEXT

    def test_len_and_iter(self):
        schema = Schema.from_names("t", ["a", "b"])
        assert len(schema) == 2
        assert [a.name for a in schema] == ["a", "b"]
