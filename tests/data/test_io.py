"""Tests for repro.data.io."""

import pytest

from repro.data.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.data.records import Table
from repro.data.schema import AttrType, Schema
from repro.errors import DatasetError


@pytest.fixture()
def table():
    schema = Schema.from_names("t", ["name", "n"], types={"n": AttrType.NUMERIC})
    return Table.from_rows(
        schema,
        [{"name": "a", "n": 1}, {"name": "b", "n": None}],
    )


class TestCsv:
    def test_roundtrip(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path, schema=table.schema)
        assert len(loaded) == 2
        assert loaded[0]["name"] == "a"
        assert loaded[0]["n"] == 1
        assert loaded[1]["n"] is None

    def test_schema_inference(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.schema["n"].type is AttrType.NUMERIC

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            read_csv(path)

    def test_header_only_needs_schema(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        with pytest.raises(DatasetError):
            read_csv(path)


class TestJsonl:
    def test_roundtrip(self, table, tmp_path):
        path = tmp_path / "t.jsonl"
        n = write_jsonl(table.records, path)
        assert n == 2
        loaded = read_jsonl(path, table.schema)
        assert loaded[1]["name"] == "b"

    def test_invalid_json_raises_with_line(self, table, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a"}\nnot-json\n')
        with pytest.raises(DatasetError, match="2"):
            read_jsonl(path, table.schema)

    def test_blank_lines_skipped(self, table, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a"}\n\n{"name": "b"}\n')
        loaded = read_jsonl(path, table.schema)
        assert len(loaded) == 2
