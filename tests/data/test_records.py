"""Tests for repro.data.records."""

import pytest

from repro.data.records import (
    Record,
    RecordPair,
    Table,
    coerce_cell,
    infer_schema,
)
from repro.data.schema import Attribute, AttrType, Schema
from repro.errors import RecordError, SchemaError


class TestCoerceCell:
    def test_empty_string_is_missing(self):
        assert coerce_cell("", Attribute("a")) is None
        assert coerce_cell("   ", Attribute("a")) is None

    def test_question_marks_are_missing(self):
        assert coerce_cell("???", Attribute("a")) is None

    def test_numeric_string_coerced_for_numeric_attr(self):
        attr = Attribute("n", AttrType.NUMERIC)
        assert coerce_cell("42", attr) == 42
        assert coerce_cell("4.5", attr) == 4.5

    def test_non_numeric_string_kept_in_numeric_attr(self):
        # Erroneous cells must be representable: "42x" stays text.
        attr = Attribute("n", AttrType.NUMERIC)
        assert coerce_cell("42x", attr) == "42x"

    def test_bool_becomes_int(self):
        assert coerce_cell(True, Attribute("b", AttrType.BINARY)) == 1

    def test_number_in_text_attr_becomes_string(self):
        assert coerce_cell(7, Attribute("t")) == "7"

    def test_unsupported_type_raises(self):
        with pytest.raises(RecordError):
            coerce_cell(["list"], Attribute("a"))


class TestRecord:
    def test_unknown_attribute_rejected(self, people_schema):
        with pytest.raises(RecordError):
            Record(schema=people_schema, values={"nope": 1})

    def test_all_attributes_present_after_init(self, people_schema):
        record = Record(schema=people_schema, values={"name": "x"})
        assert record["age"] is None
        assert record["city"] is None

    def test_setitem_validates(self, alice):
        alice["age"] = 31
        assert alice["age"] == 31
        with pytest.raises(SchemaError):
            alice["zz"] = 1

    def test_getitem_unknown_raises(self, alice):
        with pytest.raises(SchemaError):
            alice["zz"]

    def test_missing_helpers(self, people_schema):
        record = Record(schema=people_schema, values={"name": "x"})
        assert record.is_missing("age")
        assert set(record.missing_attributes) == {"age", "city"}

    def test_copy_is_independent(self, alice):
        clone = alice.copy()
        clone["name"] = "bob"
        assert alice["name"] == "alice"

    def test_project(self, alice):
        projected = alice.project(["city", "name"])
        assert projected.schema.attribute_names == ("city", "name")
        assert projected["city"] == "boston"

    def test_with_missing(self, alice):
        blanked = alice.with_missing("city")
        assert blanked["city"] is None
        assert alice["city"] == "boston"

    def test_iteration_follows_schema_order(self, alice):
        assert [name for name, __ in alice] == ["name", "age", "city"]

    def test_to_dict(self, alice):
        assert alice.to_dict() == {"name": "alice", "age": 30, "city": "boston"}


class TestTable:
    def test_append_checks_schema(self, people_schema, alice):
        other = Schema.from_names("other", ["x"])
        table = Table(people_schema)
        table.append(alice)
        with pytest.raises(RecordError):
            table.append(Record(schema=other, values={"x": 1}))

    def test_column_and_distinct(self, people_schema):
        table = Table.from_rows(
            people_schema,
            [{"name": "a", "city": "x"}, {"name": "b", "city": "x"}],
        )
        assert table.column("city") == ["x", "x"]
        assert table.distinct("city") == {"x"}

    def test_column_unknown_raises(self, people_schema):
        table = Table(people_schema)
        with pytest.raises(SchemaError):
            table.column("zz")

    def test_indexing(self, people_schema, alice):
        table = Table(people_schema, [alice])
        assert table[0]["name"] == "alice"
        assert len(table) == 1


class TestInferSchema:
    def test_numeric_detection(self):
        schema = infer_schema("t", [{"a": "1", "b": "x"}, {"a": "2.5", "b": "y"}])
        assert schema["a"].type is AttrType.NUMERIC
        assert schema["b"].type is AttrType.TEXT

    def test_all_missing_column_is_text(self):
        schema = infer_schema("t", [{"a": ""}, {"a": ""}])
        assert schema["a"].type is AttrType.TEXT

    def test_zero_rows_raises(self):
        with pytest.raises(SchemaError):
            infer_schema("t", [])


class TestRecordPair:
    def test_iteration(self, alice):
        pair = RecordPair(alice, alice.copy())
        left, right = pair
        assert left is alice
