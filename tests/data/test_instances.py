"""Tests for repro.data.instances."""

import pytest

from repro.data.instances import (
    DIInstance,
    EDInstance,
    PreprocessingDataset,
    Task,
    ground_truth_labels,
    schema_of,
)
from repro.data.records import Record
from repro.data.schema import Schema
from repro.errors import DatasetError


@pytest.fixture()
def schema():
    return Schema.from_names("t", ["a", "b"])


def _ed(schema, label, target="a"):
    return EDInstance(
        record=Record(schema=schema, values={"a": "x", "b": "y"}),
        target_attribute=target,
        label=label,
    )


class TestTask:
    def test_short_names(self):
        assert Task.ERROR_DETECTION.short_name == "ED"
        assert Task.ENTITY_MATCHING.short_name == "EM"

    def test_metric_names(self):
        assert Task.DATA_IMPUTATION.metric_name == "accuracy"
        assert Task.SCHEMA_MATCHING.metric_name == "f1"

    def test_binary(self):
        assert not Task.DATA_IMPUTATION.is_binary
        assert Task.ERROR_DETECTION.is_binary


class TestDIInstance:
    def test_target_must_be_missing(self, schema):
        record = Record(schema=schema, values={"a": "x"})
        with pytest.raises(DatasetError):
            DIInstance(record=record, target_attribute="a", true_value="x")

    def test_valid(self, schema):
        record = Record(schema=schema, values={"b": "y"})
        inst = DIInstance(record=record, target_attribute="a", true_value="v")
        assert inst.true_value == "v"


class TestPreprocessingDataset:
    def test_task_mismatch_rejected(self, schema):
        record = Record(schema=schema, values={"b": "y"})
        di = DIInstance(record=record, target_attribute="a", true_value="v")
        with pytest.raises(DatasetError):
            PreprocessingDataset(
                name="x", task=Task.ERROR_DETECTION, instances=[di]
            )

    def test_positive_rate(self, schema):
        ds = PreprocessingDataset(
            name="x",
            task=Task.ERROR_DETECTION,
            instances=[_ed(schema, True), _ed(schema, False)],
        )
        assert ds.positive_rate == 0.5

    def test_sample_fewshot_zero(self, schema):
        ds = PreprocessingDataset(
            name="x", task=Task.ERROR_DETECTION,
            instances=[_ed(schema, True)],
            fewshot_pool=[_ed(schema, False)],
        )
        assert ds.sample_fewshot(0) == []

    def test_sample_fewshot_whole_pool(self, schema):
        pool = [_ed(schema, True), _ed(schema, False)]
        ds = PreprocessingDataset(
            name="x", task=Task.ERROR_DETECTION,
            instances=[_ed(schema, True)], fewshot_pool=pool,
        )
        assert len(ds.sample_fewshot(10)) == 2

    def test_sample_fewshot_stratified(self, schema):
        pool = [_ed(schema, True)] * 5 + [_ed(schema, False)] * 5
        ds = PreprocessingDataset(
            name="x", task=Task.ERROR_DETECTION,
            instances=[_ed(schema, True)], fewshot_pool=pool,
        )
        sample = ds.sample_fewshot(4, seed=3)
        labels = {i.label for i in sample}
        assert labels == {True, False}

    def test_sample_fewshot_deterministic(self, restaurant_dataset):
        a = restaurant_dataset.sample_fewshot(5, seed=1)
        b = restaurant_dataset.sample_fewshot(5, seed=1)
        assert [i.instance_id for i in a] == [i.instance_id for i in b]

    def test_subset(self, adult_dataset):
        small = adult_dataset.subset(10)
        assert len(small) == 10
        assert small.fewshot_pool == adult_dataset.fewshot_pool

    def test_subset_noop_when_bigger(self, restaurant_dataset):
        assert restaurant_dataset.subset(10**6) is restaurant_dataset


class TestHelpers:
    def test_ground_truth_labels_mixed(self, schema):
        ed = _ed(schema, True)
        record = Record(schema=schema, values={"b": "y"})
        di = DIInstance(record=record, target_attribute="a", true_value="v")
        assert ground_truth_labels([ed]) == [True]
        assert ground_truth_labels([di]) == ["v"]

    def test_schema_of_ed(self, schema):
        assert schema_of(_ed(schema, True)) is schema
