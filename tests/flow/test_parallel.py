"""Parallel flow execution (stage isolation): deterministic and resumable.

With a backend, every stage runs on a fresh hermetic client, so stages
become order-free and the engine may fan independent stages out to worker
processes.  The result must be bit-identical at any worker count, and a
ledger written at one worker count must resume at another.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.errors import ConfigError
from repro.flow import FlowEngine, reference_spec
from repro.flow.engine import FlowChaos
from repro.llm.backend import SimulatedBackend
from repro.llm.simulated import SimulatedLLM


@pytest.fixture(scope="module")
def spec():
    return reference_spec()


@pytest.fixture(scope="module")
def config(spec):
    return PipelineConfig(**dict(spec.config))


@pytest.fixture(scope="module")
def backend(config):
    return SimulatedBackend(model=config.model, seed=0)


def _run(spec, config, backend, workers, workdir=None):
    tables, __ = spec.build_inputs()
    engine = FlowEngine(
        None, config, workdir=workdir, backend=backend, workers=workers
    )
    return engine.run(spec.graph, dict(tables))


class TestIsolationDeterminism:
    def test_worker_count_cannot_change_the_result(self, spec, config,
                                                   backend):
        one = _run(spec, config, backend, workers=1)
        two = _run(spec, config, backend, workers=2)
        assert one.payload() == two.payload()

    def test_isolation_mode_reruns_bit_identical(self, spec, config, backend):
        assert (
            _run(spec, config, backend, workers=1).payload()
            == _run(spec, config, backend, workers=1).payload()
        )

    def test_ledger_resumes_across_worker_counts(self, spec, config, backend,
                                                 tmp_path):
        full = _run(spec, config, backend, workers=2, workdir=tmp_path)
        # Every stage is in the ledger now, so the resume replays all of
        # them — at a different worker count — and must agree exactly.
        resumed = _run(spec, config, backend, workers=1, workdir=tmp_path)
        assert resumed.payload() == full.payload()


class TestEngineContracts:
    def test_workers_above_one_require_a_backend(self, config):
        with pytest.raises(ConfigError, match="isolation"):
            FlowEngine(SimulatedLLM(config.model), config, workers=2)

    def test_client_or_backend_is_mandatory(self, config):
        with pytest.raises(ConfigError, match="client"):
            FlowEngine(None, config)

    def test_backend_must_satisfy_the_protocol(self, config):
        with pytest.raises(ConfigError, match="Backend"):
            FlowEngine(None, config, backend=SimulatedLLM(config.model))

    def test_nonpositive_workers_are_rejected(self, config, backend):
        with pytest.raises(ConfigError, match="workers"):
            FlowEngine(None, config, backend=backend, workers=0)

    def test_chaos_drills_stay_single_worker(self, spec, config, backend,
                                             tmp_path):
        tables, __ = spec.build_inputs()
        engine = FlowEngine(
            None, config, workdir=tmp_path, backend=backend, workers=2
        )
        with pytest.raises(ConfigError, match="workers=1"):
            engine.run(
                spec.graph, dict(tables),
                chaos=FlowChaos(stage="detect", site="pre_record"),
            )
