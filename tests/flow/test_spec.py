"""Flow spec parsing: strict YAML/dict declarations of flows."""

from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.flow import (
    REFERENCE_FLOW_DOC,
    REFERENCE_FLOW_YAML,
    load_flow_spec,
    parse_flow,
    reference_spec,
)

EXAMPLE_PATH = (
    Path(__file__).parent.parent.parent
    / "examples" / "flows" / "clean_match_beer.yaml"
)


def minimal_doc() -> dict:
    return {
        "flow": "tiny",
        "inputs": {"t": {"dataset": "adult", "size": 10}},
        "stages": [
            {"name": "detect", "kind": "detect_errors", "table": "inputs.t"},
        ],
    }


class TestParsing:
    def test_minimal_doc_parses(self):
        spec = parse_flow(minimal_doc())
        assert spec.name == "tiny"
        assert spec.graph.topological_order() == ("detect",)
        assert spec.inputs["t"].dataset == "adult"

    def test_non_mapping_document(self):
        with pytest.raises(ConfigError, match="must be a mapping"):
            parse_flow(["not", "a", "flow"])

    def test_missing_flow_name(self):
        doc = minimal_doc()
        del doc["flow"]
        with pytest.raises(ConfigError, match="missing its 'flow' name"):
            parse_flow(doc)

    def test_missing_stages(self):
        doc = minimal_doc()
        del doc["stages"]
        with pytest.raises(ConfigError, match="'stages' list"):
            parse_flow(doc)

    def test_unknown_top_level_key(self):
        doc = minimal_doc()
        doc["schedule"] = "eager"
        with pytest.raises(ConfigError, match="unknown key"):
            parse_flow(doc)

    def test_unknown_input_key(self):
        doc = minimal_doc()
        doc["inputs"]["t"]["shuffle"] = True
        with pytest.raises(ConfigError, match="unknown key"):
            parse_flow(doc)

    def test_input_without_dataset(self):
        doc = minimal_doc()
        doc["inputs"]["t"] = {"size": 10}
        with pytest.raises(ConfigError, match="missing 'dataset'"):
            parse_flow(doc)

    def test_bad_side(self):
        doc = minimal_doc()
        doc["inputs"]["t"]["side"] = "middle"
        with pytest.raises(ConfigError, match="'left' or 'right'"):
            parse_flow(doc)

    def test_unknown_corruption_kind(self):
        doc = minimal_doc()
        doc["inputs"]["t"]["corrupt"] = [
            {"kind": "scramble", "attribute": "age"}
        ]
        with pytest.raises(ConfigError, match="unknown corruption kind"):
            parse_flow(doc)

    def test_corruption_missing_attribute(self):
        doc = minimal_doc()
        doc["inputs"]["t"]["corrupt"] = [{"kind": "typos"}]
        with pytest.raises(ConfigError, match="missing 'attribute'"):
            parse_flow(doc)

    def test_stage_missing_name(self):
        doc = minimal_doc()
        del doc["stages"][0]["name"]
        with pytest.raises(ConfigError, match="missing 'name'"):
            parse_flow(doc)

    def test_stage_unknown_key(self):
        doc = minimal_doc()
        doc["stages"][0]["retries"] = 3
        with pytest.raises(ConfigError, match="unknown key"):
            parse_flow(doc)

    def test_graph_errors_surface_from_parse(self):
        doc = minimal_doc()
        doc["stages"][0]["table"] = "inputs.ghost"
        with pytest.raises(ConfigError, match="unknown flow input"):
            parse_flow(doc)


class TestYaml:
    def test_yaml_text_parses(self):
        spec = load_flow_spec(REFERENCE_FLOW_YAML)
        assert spec.name == "clean_match_beer"

    def test_invalid_yaml_is_config_error(self):
        with pytest.raises(ConfigError, match="not valid YAML"):
            load_flow_spec("flow: [unclosed")

    def test_yaml_and_dict_forms_are_equivalent(self):
        """The two shipped forms of the reference flow must not drift."""
        from_yaml = load_flow_spec(REFERENCE_FLOW_YAML)
        from_dict = parse_flow(REFERENCE_FLOW_DOC)
        assert from_yaml.payload() == from_dict.payload()

    def test_shipped_example_file_matches_reference(self):
        spec = load_flow_spec(EXAMPLE_PATH.read_text(encoding="utf-8"))
        assert spec.payload() == reference_spec().payload()


class TestBuildInputs:
    def test_corruption_audit_names_touched_cells(self):
        spec = reference_spec()
        tables, audits = spec.build_inputs()
        assert set(tables) == {"clean_right", "dirty_left"}
        dirty = tables["dirty_left"]
        # every audited cell actually differs from (or blanks) the original
        assert audits["dirty_left"]
        for row, attribute, original in audits["dirty_left"]:
            assert dirty[row][attribute] != original
        assert audits["clean_right"] == []

    def test_build_is_deterministic(self):
        spec = reference_spec()
        first, __ = spec.build_inputs()
        second, __ = spec.build_inputs()
        for name in first:
            assert [dict(r) for r in first[name]] == [
                dict(r) for r in second[name]
            ]

    def test_describe_mentions_corruption(self):
        text = reference_spec().describe()
        assert "typos(style@0.2)" in text
        assert "missing(style@0.25)" in text
        assert "match_entities" in text
