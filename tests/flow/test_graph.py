"""Static validation and deterministic scheduling of flow graphs."""

import pytest

from repro.errors import ConfigError
from repro.flow import FlowGraph, StageNode


def _detect(name: str, source: str) -> StageNode:
    return StageNode.make(
        name, "detect_errors", {"table": source}
    )


def _impute(name: str, source: str) -> StageNode:
    return StageNode.make(
        name, "impute_missing", {"table": source}, {"attribute": "a"}
    )


def _match(name: str, left: str, right: str) -> StageNode:
    return StageNode.make(
        name, "match_entities", {"left": left, "right": right}
    )


def diamond_stages() -> list[StageNode]:
    """detect -> impute, then two matchers fanning in."""
    return [
        _detect("detect", "inputs.dirty"),
        _impute("impute", "detect"),
        _match("match_a", "impute", "inputs.clean"),
        _match("match_b", "impute", "inputs.clean"),
    ]


class TestValidation:
    def test_valid_graph_builds(self):
        graph = FlowGraph(diamond_stages(), inputs=("dirty", "clean"))
        assert set(graph.stages) == {"detect", "impute", "match_a", "match_b"}

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigError, match="at least one stage"):
            FlowGraph([], inputs=("t",))

    def test_duplicate_stage_name(self):
        stages = [_detect("d", "inputs.t"), _detect("d", "inputs.t")]
        with pytest.raises(ConfigError, match="duplicate stage name"):
            FlowGraph(stages, inputs=("t",))

    def test_unknown_kind(self):
        node = StageNode.make("x", "normalize", {"table": "inputs.t"})
        with pytest.raises(ConfigError, match="unknown kind"):
            FlowGraph([node], inputs=("t",))

    @pytest.mark.parametrize("bad", ["a.b", "a/b", "a\\b", "a b", "inputs.x"])
    def test_unsafe_stage_names(self, bad):
        node = StageNode.make(bad, "detect_errors", {"table": "inputs.t"})
        with pytest.raises(ConfigError):
            FlowGraph([node], inputs=("t",))

    def test_empty_stage_name(self):
        node = StageNode.make("", "detect_errors", {"table": "inputs.t"})
        with pytest.raises(ConfigError, match="empty name"):
            FlowGraph([node], inputs=("t",))

    def test_missing_port(self):
        node = StageNode.make("m", "match_entities", {"left": "inputs.t"})
        with pytest.raises(ConfigError, match="unwired: right"):
            FlowGraph([node], inputs=("t",))

    def test_unknown_port(self):
        node = StageNode.make(
            "d", "detect_errors", {"table": "inputs.t", "aux": "inputs.t"}
        )
        with pytest.raises(ConfigError, match="unknown port"):
            FlowGraph([node], inputs=("t",))

    def test_double_wired_port(self):
        node = StageNode(
            name="d", kind="detect_errors",
            inputs=(("table", "inputs.t"), ("table", "inputs.u")),
        )
        with pytest.raises(ConfigError, match="wires a port twice"):
            FlowGraph([node], inputs=("t", "u"))

    def test_unknown_param(self):
        node = StageNode.make(
            "d", "detect_errors", {"table": "inputs.t"},
            {"attributes": ["a"], "threshold": 0.5},
        )
        with pytest.raises(ConfigError, match="unknown parameter"):
            FlowGraph([node], inputs=("t",))

    def test_missing_required_param(self):
        node = StageNode.make("i", "impute_missing", {"table": "inputs.t"})
        with pytest.raises(ConfigError, match="required parameter 'attribute'"):
            FlowGraph([node], inputs=("t",))

    def test_unknown_flow_input(self):
        node = _detect("d", "inputs.nope")
        with pytest.raises(ConfigError, match="unknown flow input"):
            FlowGraph([node], inputs=("t",))

    def test_unknown_stage_ref(self):
        node = _detect("d", "ghost")
        with pytest.raises(ConfigError, match="unknown stage 'ghost'"):
            FlowGraph([node], inputs=("t",))

    def test_typed_edges_reject_matches_into_table_port(self):
        """A matcher produces pair lists, which no table port may consume."""
        stages = [
            _match("m", "inputs.l", "inputs.r"),
            _detect("d", "m"),
        ]
        with pytest.raises(ConfigError, match="produces matches"):
            FlowGraph(stages, inputs=("l", "r"))

    def test_cycle_is_named(self):
        stages = [_detect("a", "b"), _detect("b", "a")]
        with pytest.raises(ConfigError, match="cycle involving stage"):
            FlowGraph(stages, inputs=())

    def test_self_loop_is_a_cycle(self):
        with pytest.raises(ConfigError, match="cycle"):
            FlowGraph([_detect("a", "a")], inputs=())


class TestScheduling:
    def test_topological_order_respects_edges(self):
        graph = FlowGraph(diamond_stages(), inputs=("dirty", "clean"))
        order = graph.topological_order()
        assert order.index("detect") < order.index("impute")
        assert order.index("impute") < order.index("match_a")
        assert order.index("impute") < order.index("match_b")

    def test_ties_break_lexicographically(self):
        graph = FlowGraph(diamond_stages(), inputs=("dirty", "clean"))
        assert graph.topological_order() == (
            "detect", "impute", "match_a", "match_b"
        )

    def test_order_ignores_insertion_order(self):
        stages = diamond_stages()
        forward = FlowGraph(stages, inputs=("dirty", "clean"))
        backward = FlowGraph(list(reversed(stages)), inputs=("dirty", "clean"))
        assert forward.topological_order() == backward.topological_order()

    def test_downstream_of(self):
        graph = FlowGraph(diamond_stages(), inputs=("dirty", "clean"))
        assert graph.downstream_of("impute") == ("match_a", "match_b")
        assert graph.downstream_of("match_a") == ()
        with pytest.raises(ConfigError, match="unknown stage"):
            graph.downstream_of("ghost")


class TestIntrospection:
    def test_spec_payload_is_insertion_order_free(self):
        stages = diamond_stages()
        forward = FlowGraph(stages, inputs=("dirty", "clean"))
        backward = FlowGraph(list(reversed(stages)), inputs=("clean", "dirty"))
        assert forward.spec_payload() == backward.spec_payload()

    def test_describe_lists_schedule_and_wiring(self):
        graph = FlowGraph(diamond_stages(), inputs=("dirty", "clean"))
        text = graph.describe()
        assert "inputs: clean, dirty" in text
        assert "1. detect [detect_errors] table<-inputs.dirty" in text
        assert "left<-impute" in text

    def test_upstream_stages_skips_flow_inputs(self):
        node = _match("m", "impute", "inputs.clean")
        assert node.upstream_stages() == ("impute",)
