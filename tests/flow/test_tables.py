"""Dataset-backed flow tables and seeded corruption injectors."""

import pytest

from repro.errors import ConfigError, DatasetError
from repro.flow import dataset_table, inject_missing, inject_typos


class TestDatasetTable:
    def test_error_detection_dataset_becomes_table(self):
        table = dataset_table("adult", size=20)
        assert len(table) > 0
        assert "age" in table.schema

    def test_imputation_dataset_restores_ground_truth(self):
        """DI instances blank their target cell; the flow table gets the
        true value back so corruption starts from clean data."""
        table = dataset_table("restaurant", size=20)
        missing = sum(
            1 for record in table for __, value in record if value is None
        )
        assert missing == 0

    def test_rows_are_deduplicated(self):
        table = dataset_table("adult", size=40)
        ids = [record.record_id for record in table]
        assert len(ids) == len(set(ids))

    def test_entity_matching_needs_a_side(self):
        with pytest.raises(ConfigError, match="needs side="):
            dataset_table("beer", size=10)

    def test_entity_matching_sides_differ(self):
        left = dataset_table("beer", size=20, side="left")
        right = dataset_table("beer", size=20, side="right")
        assert [r.record_id for r in left] != [r.record_id for r in right]

    def test_side_rejected_for_single_table_dataset(self):
        with pytest.raises(ConfigError, match="has no sides"):
            dataset_table("adult", size=10, side="left")

    def test_schema_matching_dataset_rejected(self):
        with pytest.raises(ConfigError, match="attribute pairs"):
            dataset_table("synthea", size=10)


class TestInjectors:
    def test_typos_touch_the_sampled_cells_only(self):
        table = dataset_table("adult", size=20)
        outcome = inject_typos(table, "occupation", rate=0.2, seed=3)
        touched = {(row, attribute) for row, attribute, __ in outcome.cells}
        assert touched
        for row, record in enumerate(outcome.table):
            for name, value in record:
                if (row, name) in touched:
                    assert value != table[row][name]
                else:
                    assert value == table[row][name]

    def test_original_table_is_not_mutated(self):
        table = dataset_table("adult", size=20)
        before = [dict(record) for record in table]
        inject_typos(table, "occupation", rate=0.5, seed=0)
        inject_missing(table, "occupation", rate=0.5, seed=0)
        assert [dict(record) for record in table] == before

    def test_missing_blanks_cells_and_audits_originals(self):
        table = dataset_table("adult", size=20)
        outcome = inject_missing(table, "education", rate=0.3, seed=1)
        assert outcome.cells
        for row, attribute, original in outcome.cells:
            assert outcome.table[row][attribute] is None
            assert str(table[row][attribute]) == original

    def test_same_seed_same_cells(self):
        table = dataset_table("adult", size=30)
        first = inject_typos(table, "occupation", rate=0.2, seed=5)
        second = inject_typos(table, "occupation", rate=0.2, seed=5)
        assert first.cells == second.cells

    def test_different_seed_different_sample(self):
        table = dataset_table("adult", size=30)
        first = inject_typos(table, "occupation", rate=0.2, seed=5)
        second = inject_typos(table, "occupation", rate=0.2, seed=6)
        assert first.cells != second.cells

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_rate_out_of_range(self, rate):
        table = dataset_table("adult", size=10)
        with pytest.raises(ConfigError, match="rate must be in"):
            inject_typos(table, "occupation", rate=rate)

    def test_unknown_attribute(self):
        table = dataset_table("adult", size=10)
        with pytest.raises(ConfigError, match="no attribute"):
            inject_missing(table, "ghost")

    def test_nothing_left_to_corrupt(self):
        table = dataset_table("adult", size=10)
        blanked = inject_missing(table, "occupation", rate=1.0, seed=0).table
        with pytest.raises(DatasetError, match="no non-missing cells"):
            inject_missing(blanked, "occupation", rate=0.5, seed=0)
