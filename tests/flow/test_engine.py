"""The flow engine: end-to-end runs, provenance, quarantine, durability."""

import pytest

from repro.core.config import PipelineConfig
from repro.errors import ConfigError
from repro.flow import (
    FlowChaos,
    FlowEngine,
    FlowGraph,
    StageNode,
    run_reference_flow,
    table_from_payload,
    table_payload,
)
from repro.flow.tables import dataset_table, inject_missing, inject_typos
from repro.llm import GarblingClient
from repro.llm.simulated import SimulatedLLM
from repro.obs.manifest import canonical_json
from repro.runtime.journal import ResumeMismatchError

MARKER = "!!GARBLED-CELL!!"


def small_graph() -> FlowGraph:
    return FlowGraph(
        [
            StageNode.make(
                "detect", "detect_errors",
                {"table": "inputs.dirty"},
                {"attributes": ["occupation"]},
            ),
            StageNode.make(
                "impute", "impute_missing",
                {"table": "detect"},
                {"attribute": "workclass"},
            ),
        ],
        inputs=("dirty",),
    )


def dirty_table(rows: int = 12):
    table = dataset_table("adult", size=4 * rows, seed=0)
    from repro.data.records import Table

    table = Table(table.schema, [r.copy() for r in list(table)[:rows]])
    table = inject_typos(table, "occupation", rate=0.2, seed=2).table
    table = inject_missing(table, "workclass", rate=0.25, seed=4).table
    return table


@pytest.fixture(scope="module")
def reference_result():
    return run_reference_flow()


class TestEndToEnd:
    def test_reference_flow_runs_all_four_stages(self, reference_result):
        result = reference_result
        assert result.order == ("detect", "impute", "align", "match")
        assert result.stages["detect"].output["flagged"]
        assert result.stages["impute"].output["imputed"]
        assert result.stages["align"].output["correspondences"]
        assert result.stages["match"].output["n_candidates"] > 0

    def test_report_rolls_up_stage_usage(self, reference_result):
        result = reference_result
        total = sum(
            result.stages[name].report.usage.prompt_tokens
            for name in result.order
        )
        assert result.report.usage.prompt_tokens == total
        assert result.report.n_requests == sum(
            result.stages[name].report.n_requests for name in result.order
        )

    def test_detect_output_table_blanks_flagged_cells(self, reference_result):
        detect = reference_result.stages["detect"]
        for cell in detect.output["flagged"]:
            assert detect.table[cell["row"]][cell["attribute"]] is None

    def test_impute_fills_blanked_cells(self, reference_result):
        impute = reference_result.stages["impute"]
        for row, value in impute.output["imputed"].items():
            assert impute.table[int(row)]["style"] == value

    def test_tables_property_lists_table_producers(self, reference_result):
        assert set(reference_result.tables) == {"detect", "impute"}

    def test_manifest_payload_carries_graph_and_stages(self, reference_result):
        manifest = reference_result.manifest_payload()
        assert manifest["kind"] == "flow_manifest"
        assert [s["name"] for s in manifest["flow"]["stages"]] == [
            "align", "detect", "impute", "match"
        ]
        assert set(manifest["stages"]) == set(reference_result.order)


class TestValidation:
    def test_missing_input_rejected(self):
        engine = FlowEngine(SimulatedLLM("gpt-3.5", seed=0))
        with pytest.raises(ConfigError, match="not provided: dirty"):
            engine.run(small_graph(), {})

    def test_extra_input_rejected(self):
        engine = FlowEngine(SimulatedLLM("gpt-3.5", seed=0))
        with pytest.raises(ConfigError, match="unexpected flow input"):
            engine.run(
                small_graph(),
                {"dirty": dirty_table(), "bonus": dirty_table()},
            )

    def test_chaos_must_target_a_known_stage(self):
        engine = FlowEngine(SimulatedLLM("gpt-3.5", seed=0))
        with pytest.raises(ConfigError, match="unknown stage"):
            engine.run(
                small_graph(), {"dirty": dirty_table()},
                chaos=FlowChaos(stage="ghost"),
            )

    def test_chaos_site_is_checked(self):
        with pytest.raises(ValueError, match="unknown flow chaos site"):
            FlowChaos(stage="detect", site="mid_flight")


class TestQuarantinePropagation:
    @pytest.fixture(scope="class")
    def poisoned_run(self):
        table = dirty_table()
        table[5]["occupation"] = MARKER
        client = GarblingClient(
            SimulatedLLM("gpt-3.5", seed=0), triggers=[MARKER]
        )
        config = PipelineConfig(degradation="ladder")
        engine = FlowEngine(client, config)
        return engine.run(small_graph(), {"dirty": table}), client

    def test_stage_n_quarantines_the_poisoned_cell(self, poisoned_run):
        result, client = poisoned_run
        assert client.n_garbled > 0
        detect = result.stages["detect"]
        assert {(q["row"], q["attribute"]) for q in detect.quarantine} == {
            (5, "occupation")
        }
        assert any(
            mark.row == 5 and mark.stage == "detect"
            for mark in detect.marks
        )

    def test_stage_n_plus_1_visibly_excludes_it(self, poisoned_run):
        result, __ = poisoned_run
        excluded = result.stages["impute"].provenance.excluded_upstream
        assert any(
            origin.row == 5 and "quarantined in detect" in origin.detail
            for origin in excluded
        )

    def test_excluded_row_is_never_imputed(self, poisoned_run):
        result, __ = poisoned_run
        assert "5" not in result.stages["impute"].output["imputed"]

    def test_healthy_rows_still_flow(self, poisoned_run):
        result, __ = poisoned_run
        assert result.stages["impute"].output["imputed"]


class TestDeterminism:
    def test_results_identical_at_concurrency_1_2_8(self):
        payloads = {
            concurrency: canonical_json(
                run_reference_flow(concurrency=concurrency).payload(
                    include_timing=False
                )
            )
            for concurrency in (1, 2, 8)
        }
        assert payloads[1] == payloads[2] == payloads[8]

    def test_table_payload_round_trips(self):
        table = dirty_table()
        clone = table_from_payload(table_payload(table))
        assert canonical_json(table_payload(clone)) == canonical_json(
            table_payload(table)
        )


class TestLedger:
    def test_rerun_restores_every_stage_from_the_ledger(self, tmp_path):
        table = dirty_table()
        config = PipelineConfig(degradation="ladder")

        def engine():
            return FlowEngine(
                SimulatedLLM("gpt-3.5", seed=0), config, workdir=tmp_path
            )

        first = engine().run(small_graph(), {"dirty": table})
        assert first.resumed_stages == ()
        second = engine().run(small_graph(), {"dirty": table})
        assert second.resumed_stages == ("detect", "impute")
        assert all(second.stages[name].resumed for name in second.order)
        assert canonical_json(second.payload()) == canonical_json(
            first.payload()
        )

    def test_ledger_refuses_a_different_flow(self, tmp_path):
        table = dirty_table()
        config = PipelineConfig(degradation="ladder")
        FlowEngine(
            SimulatedLLM("gpt-3.5", seed=0), config, workdir=tmp_path
        ).run(small_graph(), {"dirty": table})
        other = FlowGraph(
            [
                StageNode.make(
                    "detect", "detect_errors",
                    {"table": "inputs.dirty"},
                    {"attributes": ["education"]},
                ),
                StageNode.make(
                    "impute", "impute_missing",
                    {"table": "detect"},
                    {"attribute": "workclass"},
                ),
            ],
            inputs=("dirty",),
        )
        with pytest.raises(ResumeMismatchError):
            FlowEngine(
                SimulatedLLM("gpt-3.5", seed=0), config, workdir=tmp_path
            ).run(other, {"dirty": table})

    def test_stage_journals_are_written_per_stage(self, tmp_path):
        table = dirty_table()
        FlowEngine(
            SimulatedLLM("gpt-3.5", seed=0),
            PipelineConfig(degradation="ladder"),
            workdir=tmp_path,
        ).run(small_graph(), {"dirty": table})
        names = {path.name for path in tmp_path.iterdir()}
        assert "flow.journal" in names
        assert "stage-00-detect.journal" in names
        assert "stage-01-impute.journal" in names
