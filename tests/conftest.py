"""Shared fixtures: small datasets and simulated clients.

Dataset fixtures are session-scoped because generation is deterministic
and read-only; tests must not mutate the returned instances (copy first).
"""

from __future__ import annotations

import pytest

from repro.data.records import Record
from repro.data.schema import AttrType, Schema
from repro.datasets import load_dataset
from repro.llm.simulated import SimulatedLLM


@pytest.fixture(scope="session")
def restaurant_dataset():
    return load_dataset("restaurant", size=60)


@pytest.fixture(scope="session")
def buy_dataset():
    return load_dataset("buy", size=60)


@pytest.fixture(scope="session")
def adult_dataset():
    return load_dataset("adult", size=120)


@pytest.fixture(scope="session")
def hospital_dataset():
    return load_dataset("hospital", size=120)


@pytest.fixture(scope="session")
def synthea_dataset():
    return load_dataset("synthea", size=120)


@pytest.fixture(scope="session")
def beer_dataset():
    return load_dataset("beer", size=80)


@pytest.fixture(scope="session")
def amazon_google_dataset():
    return load_dataset("amazon_google", size=120)


@pytest.fixture(scope="session")
def gpt35():
    return SimulatedLLM("gpt-3.5")


@pytest.fixture(scope="session")
def gpt4():
    return SimulatedLLM("gpt-4")


@pytest.fixture()
def people_schema() -> Schema:
    return Schema.from_names(
        "people",
        ["name", "age", "city"],
        types={"age": AttrType.NUMERIC},
    )


@pytest.fixture()
def alice(people_schema) -> Record:
    return Record(
        schema=people_schema,
        values={"name": "alice", "age": 30, "city": "boston"},
        record_id="r0",
    )
