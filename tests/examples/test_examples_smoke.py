"""Smoke tests: every ``examples/`` script must run end to end.

The examples are the first code a new user runs, and nothing else
imports them — without these tests they rot silently.  Each script is
executed exactly as the README instructs (``python examples/<name>.py``)
in a subprocess with ``src`` on ``PYTHONPATH``, and must exit 0 with
output on stdout and no traceback on stderr.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def _run(script: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_all_five_examples_are_covered():
    """A new example script is automatically picked up; a deleted one is
    noticed.  The README promises exactly these five."""
    assert {script.name for script in EXAMPLE_SCRIPTS} == {
        "clean_census_records.py",
        "integrate_medical_schemas.py",
        "match_product_catalogs.py",
        "plan_budget_and_repair.py",
        "quickstart.py",
    }


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script):
    proc = _run(script)
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
    assert "Traceback" not in proc.stderr, proc.stderr[-2000:]
