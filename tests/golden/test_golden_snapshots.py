"""Golden conformance: every cell's behavior must match its recording.

These tests re-run each golden cell end to end and compare the fresh
payload byte-for-byte (as canonical JSON) against the snapshot checked in
under ``snapshots/``.  A failure means pipeline behavior drifted — the
structured diff names the exact JSON paths.  If the change is deliberate,
re-record with ``python -m repro.eval golden --update`` and review the
snapshot diff in the PR like any other code change.
"""

from pathlib import Path

import pytest

from repro.testing import (
    ALL_GOLDEN_CELLS,
    FACTORY_GOLDEN_CELLS,
    FLOW_GOLDEN_CELLS,
    GOLDEN_CELLS,
    RESILIENCE_GOLDEN_CELLS,
    SERVING_GOLDEN_CELLS,
    GoldenDiff,
    GoldenStore,
    capture_snapshot,
    diff_payloads,
    render_diffs,
    write_diff_artifact,
)

STORE = GoldenStore(Path(__file__).parent / "snapshots")

PIPELINE_NAMES = {cell.name for cell in GOLDEN_CELLS}
FLOW_NAMES = {cell.name for cell in FLOW_GOLDEN_CELLS}
FACTORY_NAMES = {cell.name for cell in FACTORY_GOLDEN_CELLS}
RESILIENCE_NAMES = {cell.name for cell in RESILIENCE_GOLDEN_CELLS}


@pytest.mark.parametrize(
    "cell", ALL_GOLDEN_CELLS, ids=lambda cell: cell.name
)
def test_cell_matches_golden(cell):
    payload = capture_snapshot(cell)
    diffs = STORE.verify(cell.name, payload)
    if diffs:
        report = render_diffs(cell.name, diffs)
        write_diff_artifact(report)
        pytest.fail(report, pytrace=False)


def test_every_snapshot_has_a_cell():
    """No orphan snapshot files, no unrecorded cells."""
    assert set(STORE.names()) == {cell.name for cell in ALL_GOLDEN_CELLS}


def test_snapshots_are_canonical_json():
    """load() rejects hand-edited (non-canonical) snapshot files."""
    for name in STORE.names():
        payload = STORE.load(name)
        assert payload["golden_version"] == 1
        if name in PIPELINE_NAMES or name in FACTORY_NAMES:
            assert payload["exchanges"], f"{name} recorded no exchanges"
        elif name in RESILIENCE_NAMES:
            assert payload["exchanges"], f"{name} recorded no exchanges"
            assert payload["degradation"]["primary"]["n_calls"] > 0
            assert payload["router"]["router"]["n_calls"] > 0
        elif name in FLOW_NAMES:
            assert payload["flow"]["stages"], f"{name} recorded no stages"
        else:
            assert payload["serve"]["responses"], (
                f"{name} recorded no responses"
            )


def test_serving_snapshot_covers_reject_and_share_paths():
    """The serving corpus must freeze more than the happy path: typed
    rejections, coalesced sharing, and cache hits all appear."""
    assert SERVING_GOLDEN_CELLS, "no serving cells recorded"
    for cell in SERVING_GOLDEN_CELLS:
        payload = STORE.load(cell.name)
        serve = payload["serve"]
        sources = serve["summary"]["sources"]
        assert sources["llm"] > 0
        assert sources["shared"] > 0
        assert sources["cache"] > 0
        reasons = {r["reason"] for r in serve["rejections"]}
        assert "tenant_rpm" in reasons
        assert serve["batches"], f"{cell.name} recorded no batches"
        # cache traffic is metered into the frozen metrics manifest
        counters = serve["metrics"]["counters"]
        assert counters["serving.cache.hits"] > 0
        assert counters["serving.cache.misses"] > 0


def test_flow_snapshot_covers_quarantine_propagation():
    """The flow corpus must freeze the staged-degradation story: a cell
    quarantined in one stage, and the next stage visibly excluding it."""
    assert FLOW_GOLDEN_CELLS, "no flow cells recorded"
    for cell in FLOW_GOLDEN_CELLS:
        payload = STORE.load(cell.name)
        assert payload["n_garbled"] > 0, "garbling never fired"
        stages = payload["flow"]["stages"]
        first, second = (
            stages[name] for name in payload["flow"]["order"]
        )
        quarantined = first["provenance"]["quarantined"]
        assert quarantined, f"{cell.name}: stage 1 quarantined nothing"
        excluded = second["provenance"]["excluded_upstream"]
        assert excluded, f"{cell.name}: stage 2 excluded nothing"
        # the exclusion names the stage that quarantined the cell
        assert any(
            first["name"] in entry["detail"] for entry in excluded
        )
        # each stage recorded its raw exchanges for replay
        assert first["exchanges"] and second["exchanges"]
        # the happy path still ran: stage 2 imputed the undamaged rows
        assert second["output"]["imputed"]


def test_factory_snapshots_pin_schema_and_ocr_channel():
    """The factory corpus must freeze the schema identity and visibly
    exercise the OCR noisy-document channel, not just clean rows."""
    assert FACTORY_NAMES, "no factory cells recorded"
    from repro.factory import preset

    saw_ocr_artifact = False
    for cell in FACTORY_GOLDEN_CELLS:
        payload = STORE.load(cell.name)
        frozen = payload["cell"]
        assert frozen["kind"] == "factory"
        # the recorded fingerprint must match the live preset: a schema
        # edit that happens to keep instances identical is still drift
        assert frozen["fingerprint"] == preset(cell.preset).fingerprint
        assert payload["exchanges"], f"{cell.name} recorded no exchanges"
        if cell.preset == "ocr_invoices":
            prompts = "\n".join(
                message["content"]
                for exchange in payload["exchanges"]
                for message in exchange["prompt"]
            )
            # distinctive OCR residue: a merged-column joiner, the
            # doubled-glyph confusion (w -> vv), or both
            saw_ocr_artifact = " | " in prompts or "vv" in prompts
    assert saw_ocr_artifact, "DI/OCR cell shows no OCR noise in prompts"


def test_snapshot_covers_all_parse_paths():
    """The corpus must exercise ok, format-error, and salvage-null paths —
    otherwise the replay layer silently loses its teeth."""
    strict_ok = strict_error = lenient_null = 0
    for name in PIPELINE_NAMES:
        for exchange in STORE.load(name)["exchanges"]:
            if "ok" in exchange["strict"]:
                strict_ok += 1
            else:
                strict_error += 1
            lenient_null += sum(
                1 for entry in exchange["lenient"] if entry is None
            )
    assert strict_ok > 0
    assert strict_error > 0
    assert lenient_null > 0


class TestDiffEngine:
    def test_equal_payloads_have_no_diff(self):
        payload = {"a": [1, {"b": True}], "c": "x"}
        assert diff_payloads(payload, payload) == []

    def test_changed_value_names_its_path(self):
        diffs = diff_payloads({"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}})
        assert diffs == [GoldenDiff("$.a.b[1]", "changed", 2, 3)]

    def test_missing_and_added_keys(self):
        diffs = diff_payloads({"a": 1, "b": 2}, {"b": 2, "c": 3})
        kinds = {(d.path, d.kind) for d in diffs}
        assert kinds == {("$.a", "missing"), ("$.c", "added")}

    def test_type_change_is_one_diff(self):
        diffs = diff_payloads({"a": [1, 2, 3]}, {"a": "123"})
        assert [(d.path, d.kind) for d in diffs] == [("$.a", "type")]

    def test_int_float_compare_numerically(self):
        assert diff_payloads({"a": 1}, {"a": 1.0}) == []

    def test_bool_int_do_not_unify(self):
        diffs = diff_payloads({"a": True}, {"a": 1})
        assert [d.kind for d in diffs] == ["type"]

    def test_length_mismatch_in_lists(self):
        diffs = diff_payloads([1, 2], [1, 2, 3])
        assert [(d.path, d.kind) for d in diffs] == [("$[2]", "added")]

    def test_render_mentions_update_workflow(self):
        diffs = diff_payloads({"a": 1}, {"a": 2})
        text = render_diffs("cell", diffs)
        assert "DRIFT" in text and "--update" in text and "$.a" in text


def test_verify_against_tampered_snapshot_reports_drift(tmp_path):
    """End to end through a throwaway store: tampering is detected."""
    name = GOLDEN_CELLS[0].name
    payload = STORE.load(name)
    scratch = GoldenStore(tmp_path)
    scratch.save(name, payload)
    assert scratch.verify(name, payload) == []
    tampered = dict(payload, predictions=list(payload["predictions"]))
    tampered["predictions"][0] = "__tampered__"
    diffs = scratch.verify(name, tampered)
    assert diffs and diffs[0].path == "$.predictions[0]"
