"""Tests for repro.eval.harness."""

import pytest

from repro.core.config import PipelineConfig
from repro.eval.harness import NOT_APPLICABLE_FALLBACK_RATE, evaluate_pipeline
from repro.llm.accounting import meter_response
from repro.llm.base import CompletionRequest, CompletionResponse
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedLLM


class _AlwaysGarbage:
    def complete(self, request: CompletionRequest) -> CompletionResponse:
        return meter_response(get_profile("gpt-3.5"), request, "mumble mumble")


class TestEvaluatePipeline:
    def test_run_fields(self, restaurant_dataset):
        run = evaluate_pipeline(
            SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4"),
            restaurant_dataset,
        )
        assert run.dataset == "restaurant"
        assert run.model == "gpt-4"
        assert run.metric_name == "accuracy"
        assert run.is_applicable
        assert 0.0 <= run.score <= 1.0
        assert run.total_tokens > 0
        assert run.cost_usd > 0
        assert run.hours > 0
        assert run.n_instances == len(restaurant_dataset.instances)

    def test_score_pct_format(self, restaurant_dataset):
        run = evaluate_pipeline(
            SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4"),
            restaurant_dataset,
        )
        assert run.score_pct.replace(".", "").isdigit()

    def test_na_on_persistent_garbage(self, restaurant_dataset):
        run = evaluate_pipeline(
            _AlwaysGarbage(), PipelineConfig(model="gpt-3.5"),
            restaurant_dataset,
        )
        assert run.fallback_rate > NOT_APPLICABLE_FALLBACK_RATE
        assert run.score is None
        assert run.score_pct == "N/A"

    def test_vicuna_na_on_error_detection(self, adult_dataset):
        """The paper's Table 1: Vicuna cannot do ED — reproduced as N/A."""
        small = adult_dataset.subset(30)
        run = evaluate_pipeline(
            SimulatedLLM("vicuna-13b"),
            PipelineConfig(model="vicuna-13b"),
            small,
        )
        assert run.score_pct == "N/A"

    def test_vicuna_applicable_on_small_em(self, beer_dataset):
        """…but it returns (mediocre) answers on small EM datasets."""
        run = evaluate_pipeline(
            SimulatedLLM("vicuna-13b"),
            PipelineConfig(model="vicuna-13b"),
            beer_dataset,
        )
        assert run.is_applicable
        assert run.score < 0.85  # well below the GPT models
