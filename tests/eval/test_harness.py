"""Tests for repro.eval.harness."""

import pytest

from repro.core.config import PipelineConfig
from repro.errors import ContextWindowExceededError
from repro.eval.harness import (
    NOT_APPLICABLE_FALLBACK_RATE,
    EvaluationRun,
    _not_applicable,
    evaluate_pipeline,
)
from repro.llm.accounting import meter_response
from repro.llm.base import CompletionRequest, CompletionResponse
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedLLM


class _AlwaysGarbage:
    def complete(self, request: CompletionRequest) -> CompletionResponse:
        return meter_response(get_profile("gpt-3.5"), request, "mumble mumble")


class _AlwaysOverflows:
    def complete(self, request: CompletionRequest) -> CompletionResponse:
        raise ContextWindowExceededError("gpt-3.5", 999_999, 4096)


class TestEvaluatePipeline:
    def test_run_fields(self, restaurant_dataset):
        run = evaluate_pipeline(
            SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4"),
            restaurant_dataset,
        )
        assert run.dataset == "restaurant"
        assert run.model == "gpt-4"
        assert run.metric_name == "accuracy"
        assert run.is_applicable
        assert 0.0 <= run.score <= 1.0
        assert run.total_tokens > 0
        assert run.cost_usd > 0
        assert run.hours > 0
        assert run.n_instances == len(restaurant_dataset.instances)

    def test_score_pct_format(self, restaurant_dataset):
        run = evaluate_pipeline(
            SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4"),
            restaurant_dataset,
        )
        assert run.score_pct.replace(".", "").isdigit()

    def test_na_on_persistent_garbage(self, restaurant_dataset):
        run = evaluate_pipeline(
            _AlwaysGarbage(), PipelineConfig(model="gpt-3.5"),
            restaurant_dataset,
        )
        assert run.fallback_rate > NOT_APPLICABLE_FALLBACK_RATE
        assert run.score is None
        assert run.score_pct == "N/A"

    def test_vicuna_na_on_error_detection(self, adult_dataset):
        """The paper's Table 1: Vicuna cannot do ED — reproduced as N/A."""
        small = adult_dataset.subset(30)
        run = evaluate_pipeline(
            SimulatedLLM("vicuna-13b"),
            PipelineConfig(model="vicuna-13b"),
            small,
        )
        assert run.score_pct == "N/A"

    def test_vicuna_applicable_on_small_em(self, beer_dataset):
        """…but it returns (mediocre) answers on small EM datasets."""
        run = evaluate_pipeline(
            SimulatedLLM("vicuna-13b"),
            PipelineConfig(model="vicuna-13b"),
            beer_dataset,
        )
        assert run.is_applicable
        assert run.score < 0.85  # well below the GPT models


class TestNotApplicable:
    """The N/A rule's constructor and the paths that reach it."""

    def test_fields_of_the_na_cell(self, restaurant_dataset):
        run = _not_applicable(
            restaurant_dataset, PipelineConfig(model="gpt-3.5"), "gpt-3.5"
        )
        assert run.score is None
        assert not run.is_applicable
        assert run.score_pct == "N/A"
        assert run.dataset == "restaurant"
        assert run.model == "gpt-3.5"
        assert run.metric_name == restaurant_dataset.task.metric_name
        assert run.n_instances == len(restaurant_dataset.instances)
        assert run.total_tokens == 0
        assert run.cost_usd == 0.0
        assert run.hours == 0.0
        assert run.n_requests == 0
        assert run.fallback_rate == 1.0
        assert run.execution is None
        assert run.manifest is None

    def test_context_overflow_reports_na(self, restaurant_dataset):
        """A prompt that can never be posed yields the N/A cell."""
        run = evaluate_pipeline(
            _AlwaysOverflows(), PipelineConfig(model="gpt-3.5", fewshot=0),
            restaurant_dataset,
        )
        assert run.score_pct == "N/A"
        assert run.n_requests == 0
        assert run.hours == 0.0


class TestSpeedupEdgeCases:
    """EvaluationRun.speedup must be well-defined off the happy path."""

    def _run(self, hours, hours_sequential=0.0, execution=None):
        return EvaluationRun(
            dataset="beer", model="gpt-3.5", metric_name="f1", score=0.9,
            n_instances=10, total_tokens=100, cost_usd=0.1, hours=hours,
            n_requests=1, fallback_rate=0.0,
            hours_sequential=hours_sequential, execution=execution,
        )

    def test_zero_hours_means_no_speedup_claim(self):
        """A free run (all cache hits) reports 1.0, not a division error."""
        assert self._run(hours=0.0, hours_sequential=0.0).speedup == 1.0

    def test_zero_hours_even_with_sequential_estimate(self):
        assert self._run(hours=0.0, hours_sequential=2.0).speedup == 1.0

    def test_missing_execution_defaults_to_no_overlap(self):
        """Without an execution report, hours_sequential defaults to 0."""
        run = self._run(hours=1.0)
        assert run.execution is None
        assert run.speedup == 0.0  # explicit: nothing to compare against

    def test_na_cell_speedup_is_one(self, restaurant_dataset):
        run = _not_applicable(
            restaurant_dataset, PipelineConfig(model="gpt-3.5"), "gpt-3.5"
        )
        assert run.speedup == 1.0

    def test_concurrency_one_speedup_is_one(self, beer_dataset):
        run = evaluate_pipeline(
            SimulatedLLM("gpt-3.5"), PipelineConfig(model="gpt-3.5"),
            beer_dataset,
        )
        assert run.speedup == pytest.approx(1.0)
