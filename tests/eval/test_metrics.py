"""Tests for repro.eval.metrics."""

import pytest

from repro.data.instances import Task
from repro.errors import EvaluationError
from repro.eval.metrics import (
    BinaryMetrics,
    accuracy,
    confusion_counts,
    f1_score,
    precision_recall_f1,
    score_predictions,
    values_match,
)


class TestConfusion:
    def test_counts(self):
        m = confusion_counts([True, True, False, False],
                             [True, False, True, False])
        assert (m.tp, m.fp, m.fn, m.tn) == (1, 1, 1, 1)

    def test_mismatched_lengths(self):
        with pytest.raises(EvaluationError):
            confusion_counts([True], [True, False])


class TestF1:
    def test_perfect(self):
        assert f1_score([True, False], [True, False]) == 1.0

    def test_no_positives_predicted(self):
        assert f1_score([False, False], [True, False]) == 0.0

    def test_textbook_value(self):
        # P = 2/3, R = 2/4 -> F1 = 4/7
        predictions = [True, True, True, False, False, False]
        labels = [True, True, False, True, True, False]
        assert f1_score(predictions, labels) == pytest.approx(4 / 7)

    def test_prf_triple(self):
        p, r, f = precision_recall_f1([True], [True])
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_degenerate_all_negative(self):
        assert f1_score([False], [False]) == 0.0


class TestBinaryMetricsProperties:
    def test_accuracy(self):
        m = BinaryMetrics(tp=3, fp=1, fn=1, tn=5)
        assert m.accuracy == 0.8

    def test_zero_division_safe(self):
        m = BinaryMetrics(tp=0, fp=0, fn=0, tn=0)
        assert m.precision == m.recall == m.f1 == m.accuracy == 0.0


class TestAccuracy:
    def test_normalized_comparison(self):
        assert values_match("New York", "new york")
        assert values_match(" atlanta. ", "Atlanta")
        assert not values_match("atlanta", "marietta")

    def test_accuracy_fraction(self):
        assert accuracy(["a", "b"], ["a", "c"]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            accuracy([], [])


class TestScorePredictions:
    def test_di_uses_accuracy(self):
        score = score_predictions(Task.DATA_IMPUTATION, ["x"], ["X"])
        assert score == 1.0

    def test_binary_uses_f1(self):
        score = score_predictions(Task.ENTITY_MATCHING, [True, False],
                                  [True, True])
        assert score == pytest.approx(2 / 3)
