"""Tests for repro.eval.experiments (small scales for speed)."""

import pytest

from repro.eval import experiments


class TestPaperConstants:
    def test_table1_covers_all_methods_and_paper_cells(self):
        assert len(experiments.TABLE1_METHODS) == 10
        # Exactly the paper's N/A structure for the classical baselines.
        assert set(experiments.PAPER_TABLE1["holoclean"]) == {"adult", "hospital"}
        assert set(experiments.PAPER_TABLE1["imp"]) == {"buy", "restaurant"}
        assert set(experiments.PAPER_TABLE1["smat"]) == {"synthea"}
        assert len(experiments.PAPER_TABLE1["ditto"]) == 7

    def test_table3_paper_rows(self):
        assert experiments.PAPER_TABLE3[1] == (44.0, 4.07, 8.14, 4.76)
        assert experiments.PAPER_TABLE3[15] == (46.3, 1.49, 2.99, 1.60)


class TestScaledSize:
    def test_full_scale_is_none(self):
        assert experiments.scaled_size("adult", 1.0) is None

    def test_scaled_down_with_floor(self):
        assert experiments.scaled_size("adult", 0.1) == 1000
        assert experiments.scaled_size("buy", 0.1) == 60  # floor at 60


class TestCells:
    def test_llm_cell(self):
        cell = experiments.run_table1_cell("gpt-4", "restaurant", scale=0.7)
        assert cell.paper == 97.7
        assert cell.measured is not None
        assert 0.5 <= cell.measured <= 1.0
        assert "(" in str(cell)

    def test_baseline_cell(self):
        cell = experiments.run_table1_cell("imp", "buy", scale=0.7)
        assert cell.measured is not None

    def test_not_applicable_combination(self):
        cell = experiments.run_table1_cell("holoclean", "beer", scale=0.5)
        assert cell.measured is None
        assert cell.measured_pct == "N/A"

    def test_unknown_method(self):
        with pytest.raises(Exception):
            experiments.run_table1_cell("gpt-5", "beer")

    def test_table2_cell(self):
        cell = experiments.run_table2_cell("ZS-T", "buy", scale=0.7)
        assert cell.paper == 86.2
        assert cell.measured is not None


class TestTable3:
    def test_token_amortization(self):
        results = experiments.run_table3(scale=0.03, batch_sizes=(1, 8))
        assert results[0].tokens_m > results[1].tokens_m
        assert results[0].cost_usd > results[1].cost_usd
        assert results[0].hours > results[1].hours

    def test_f1_stays_in_band(self):
        results = experiments.run_table3(scale=0.03, batch_sizes=(1, 8))
        scores = [r.f1 for r in results]
        assert all(s is not None for s in scores)
        assert abs(scores[0] - scores[1]) < 0.15  # paper: minor fluctuations


class TestInTextExperiments:
    def test_feature_selection_direction(self):
        result = experiments.run_feature_selection(scale=1.0)
        assert result.score_b > result.score_a  # selection helps on Beer

    def test_cluster_batching_runs(self):
        result = experiments.run_cluster_batching(scale=0.05)
        assert result.score_a is not None
        assert result.score_b is not None
