"""Tests for the error-analysis tooling."""

import pytest

from repro import PipelineConfig, Preprocessor, SimulatedLLM
from repro.data.instances import ground_truth_labels
from repro.errors import EvaluationError
from repro.eval.analysis import (
    disagreements,
    error_cases,
    per_group_metrics,
)


@pytest.fixture(scope="module")
def adult_run(adult_dataset):
    result = Preprocessor(
        SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4")
    ).run(adult_dataset)
    return adult_dataset, result.predictions


class TestPerGroupMetrics:
    def test_groups_by_target_attribute(self, adult_run):
        dataset, predictions = adult_run
        groups = per_group_metrics(list(dataset.instances), predictions)
        names = {g.group for g in groups}
        assert "age" in names or "occupation" in names
        assert sum(g.n for g in groups) == len(dataset.instances)

    def test_sorted_worst_first(self, adult_run):
        dataset, predictions = adult_run
        groups = per_group_metrics(list(dataset.instances), predictions)
        scores = [g.score for g in groups]
        assert scores == sorted(scores)

    def test_di_uses_accuracy(self, restaurant_dataset):
        result = Preprocessor(
            SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4")
        ).run(restaurant_dataset)
        groups = per_group_metrics(
            list(restaurant_dataset.instances), result.predictions
        )
        assert len(groups) == 1
        assert groups[0].group == "city"
        assert groups[0].score > 0.8

    def test_misaligned_rejected(self, adult_run):
        dataset, predictions = adult_run
        with pytest.raises(EvaluationError):
            per_group_metrics(list(dataset.instances), predictions[:-1])


class TestDisagreements:
    def test_finds_model_disagreements(self, adult_dataset):
        weak = Preprocessor(
            SimulatedLLM("gpt-3.5"),
            PipelineConfig(model="gpt-3.5", fewshot=0, reasoning=False),
        ).run(adult_dataset)
        strong = Preprocessor(
            SimulatedLLM("gpt-4"), PipelineConfig(model="gpt-4")
        ).run(adult_dataset)
        cases = disagreements(
            list(adult_dataset.instances), weak.predictions, strong.predictions
        )
        assert cases
        # The strong model should be right in most disagreements.
        strong_wins = sum(1 for c in cases if c.b_is_right)
        assert strong_wins > len(cases) / 2

    def test_identical_runs_have_none(self, adult_run):
        dataset, predictions = adult_run
        assert disagreements(list(dataset.instances), predictions,
                             predictions) == []


class TestErrorCases:
    def test_typed_mistakes(self, adult_run):
        dataset, predictions = adult_run
        cases = error_cases(list(dataset.instances), predictions)
        truths = ground_truth_labels(dataset.instances)
        wrong = sum(
            1 for p, t in zip(predictions, truths) if bool(p) != bool(t)
        )
        assert len(cases) == wrong
        for case in cases:
            assert case.kind in ("false_positive", "false_negative")
            if case.kind == "false_positive":
                assert case.prediction and not case.truth

    def test_di_wrong_value_kind(self, restaurant_dataset):
        truths = [i.true_value for i in restaurant_dataset.instances]
        wrong = ["nowhere"] * len(truths)
        cases = error_cases(list(restaurant_dataset.instances), wrong)
        assert len(cases) == len(truths)
        assert all(c.kind == "wrong_value" for c in cases)
