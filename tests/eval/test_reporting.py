"""Tests for repro.eval.reporting."""

import pytest

from repro.errors import EvaluationError
from repro.eval.reporting import format_score, render_table, side_by_side


class TestRenderTable:
    def test_alignment(self):
        text = render_table("T", ["col", "x"], [["a", "1"], ["bbbb", "22"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        # All data rows equal length (aligned).
        assert len(lines[3]) == len(lines[4])

    def test_empty_rows_ok(self):
        text = render_table("T", ["a"], [])
        assert "a" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(EvaluationError):
            render_table("T", ["a", "b"], [["only-one"]])

    def test_no_columns_rejected(self):
        with pytest.raises(EvaluationError):
            render_table("T", [], [])


class TestFormatters:
    def test_format_score(self):
        assert format_score(0.925) == "92.5"
        assert format_score(None) == "N/A"

    def test_side_by_side(self):
        assert side_by_side("92.5", 92.0) == "92.5 (92.0)"
        assert side_by_side("92.5", None) == "92.5"
