"""Tests for repro.eval.reporting."""

import pytest

from repro.core.executor import ExecutionReport, LaneReport
from repro.errors import EvaluationError
from repro.eval.reporting import (
    format_score,
    render_execution_report,
    render_table,
    side_by_side,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table("T", ["col", "x"], [["a", "1"], ["bbbb", "22"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        # All data rows equal length (aligned).
        assert len(lines[3]) == len(lines[4])

    def test_empty_rows_ok(self):
        text = render_table("T", ["a"], [])
        assert "a" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(EvaluationError):
            render_table("T", ["a", "b"], [["only-one"]])

    def test_no_columns_rejected(self):
        with pytest.raises(EvaluationError):
            render_table("T", [], [])


class TestFormatters:
    def test_format_score(self):
        assert format_score(0.925) == "92.5"
        assert format_score(None) == "N/A"

    def test_side_by_side(self):
        assert side_by_side("92.5", 92.0) == "92.5 (92.0)"
        assert side_by_side("92.5", None) == "92.5"


class TestExecutionReportRendering:
    def test_one_row_per_lane_plus_summary(self):
        report = ExecutionReport(
            concurrency=2,
            lanes=[
                LaneReport(lane=0, n_calls=3, n_retries=1, busy_s=30.0,
                           utilization=0.75),
                LaneReport(lane=1, n_calls=2, n_breaker_trips=1, busy_s=20.0,
                           utilization=0.5),
            ],
            makespan_s=40.0,
            sequential_s=50.0,
            n_calls=5,
            n_retries=1,
            n_breaker_trips=1,
            n_giveups=1,
            n_fallback_splits=2,
        )
        text = render_execution_report(report)
        lines = text.splitlines()
        assert "2 lane(s)" in lines[0]
        assert len([l for l in lines if l and l[0].isdigit()]) == 2
        assert "speedup 1.25x" in text
        assert "1 give-up(s)" in text
        assert "2 fallback split(s)" in text

    def test_speedup_handles_empty_run(self):
        report = ExecutionReport(concurrency=1)
        assert report.speedup == 1.0
        assert "0 give-up(s)" in render_execution_report(report)
