"""Tests for the repro-eval command-line interface."""

import json

import pytest

from repro.eval.__main__ import main


class TestCli:
    def test_table3_prints_measured_vs_paper(self, capsys):
        assert main(["table3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "(4.07)" in out   # the paper's token column appears
        assert "batch" in out

    def test_feature_selection_command(self, capsys):
        assert main(["feature-selection"]) == 0
        out = capsys.readouterr().out
        assert "74.1" in out and "90.3" in out

    def test_cluster_batching_command(self, capsys):
        assert main(["cluster-batching", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "random batching" in out
        assert "cluster batching" in out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliRoundTrip:
    """`run` writes a manifest, `trace` reads it back, and the golden
    layer's byte contract proves the artifact survives the loop intact."""

    def test_run_trace_manifest_roundtrip(self, tmp_path, capsys):
        from repro.obs import RunManifest, canonical_json
        from repro.testing import diff_payloads

        manifest_path = tmp_path / "run.json"
        assert main([
            "run", "--dataset", "beer", "--size", "30",
            "--manifest", str(manifest_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "beer / gpt-3.5" in out
        assert f"manifest written to {manifest_path}" in out

        assert main(["trace", str(manifest_path)]) == 0
        traced = capsys.readouterr().out
        assert "Manifest v1" in traced and "beer" in traced

        # Golden byte contract: load -> dump reproduces the file exactly,
        # and a full load -> to_dict -> from_dict loop is diff-free.
        written = manifest_path.read_text(encoding="utf-8")
        loaded = RunManifest.load(manifest_path)
        assert loaded.dumps() + "\n" == written
        reloaded = RunManifest.from_dict(json.loads(written))
        assert diff_payloads(loaded.to_dict(), reloaded.to_dict()) == []
        # and the canonical form is itself stable under a reload
        assert canonical_json(json.loads(canonical_json(loaded.to_dict()))) \
            == canonical_json(loaded.to_dict())

    def test_trace_rejects_missing_manifest(self, tmp_path):
        from repro.obs import ManifestError

        with pytest.raises(ManifestError):
            main(["trace", str(tmp_path / "absent.json")])


class TestGoldenCli:
    def test_golden_verify_single_cell_is_clean(self, capsys):
        assert main(["golden", "--cell", "di_restaurant_gpt4"]) == 0
        out = capsys.readouterr().out
        assert "golden di_restaurant_gpt4: OK" in out

    def test_golden_update_then_verify_in_scratch_store(self, tmp_path, capsys):
        store = str(tmp_path / "snapshots")
        assert main(["golden", "--update", "--cell", "sm_synthea_gpt35",
                     "--store", store]) == 0
        assert main(["golden", "--cell", "sm_synthea_gpt35",
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "OK" in out

    def test_golden_drift_exits_nonzero_and_writes_artifact(
        self, tmp_path, capsys
    ):
        from repro.testing import GoldenStore, capture_snapshot, cell_by_name

        cell = cell_by_name("sm_synthea_gpt35")
        store = GoldenStore(tmp_path / "snapshots")
        payload = capture_snapshot(cell)
        payload["predictions"][0] = "__tampered__"
        store.save(cell.name, payload)
        artifact = tmp_path / "GOLDEN_DIFF.txt"
        assert main(["golden", "--cell", cell.name,
                     "--store", str(store.root),
                     "--diff-artifact", str(artifact)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "$.predictions[0]" in out
        assert artifact.exists()
        assert "__tampered__" in artifact.read_text(encoding="utf-8")


class TestServeBenchCli:
    def test_serve_bench_writes_the_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_serving.json"
        assert main([
            "serve-bench", "--requests", "400", "--size", "40",
            "--baseline-requests", "100", "--out", str(out_path),
        ]) == 0
        printed = capsys.readouterr().out
        assert "serve-bench:" in printed
        assert "token cost per request" in printed

        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["bench"] == "serving"
        # the five headline metrics, flattened for dashboards
        for key in (
            "p50_latency_s", "p99_latency_s", "throughput_rps",
            "coalesce_rate", "cache_hit_rate",
        ):
            assert key in payload
            assert payload[key] == payload["coalesced"][key]
        assert payload["config"]["baseline_requests"] == 100
        assert payload["coalesced"]["n_requests"] == 400
        assert payload["uncoalesced"]["n_requests"] == 100
        assert payload["token_reduction"] > 1.0

    def test_serving_golden_cell_verifies_via_cli(self, capsys):
        assert main(["golden", "--cell", "serving_ed_adult_3tenants"]) == 0
        out = capsys.readouterr().out
        assert "golden serving_ed_adult_3tenants: OK" in out


class TestFlowCli:
    def test_describe_prints_the_plan_without_running(self, capsys):
        assert main(["flow", "--reference", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "flow: clean_match_beer" in out
        assert "1. detect [detect_errors]" in out
        assert "4. match [match_entities]" in out

    def test_run_resume_and_manifest(self, tmp_path, capsys):
        workdir = str(tmp_path / "flowrun")
        manifest = tmp_path / "flow_manifest.json"
        assert main([
            "flow", "--reference", "--workdir", workdir,
            "--manifest", str(manifest),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow clean_match_beer: 4 stage(s)" in out
        assert "end to end:" in out
        payload = json.loads(manifest.read_text(encoding="utf-8"))
        assert payload["kind"] == "flow_manifest"
        assert payload["order"] == ["detect", "impute", "align", "match"]

        assert main([
            "flow", "--reference", "--workdir", workdir, "--resume",
        ]) == 0
        resumed = capsys.readouterr().out
        assert resumed.count("resumed from ledger") == 4

    def test_spec_file_runs(self, tmp_path, capsys):
        from pathlib import Path

        example = (
            Path(__file__).parent.parent.parent
            / "examples" / "flows" / "clean_match_beer.yaml"
        )
        assert main(["flow", str(example), "--describe"]) == 0
        out = capsys.readouterr().out
        assert "flow: clean_match_beer" in out

    def test_errors_exit_2(self, tmp_path, capsys):
        # no spec and no --reference
        assert main(["flow"]) == 2
        # --resume without a ledger
        assert main([
            "flow", "--reference",
            "--workdir", str(tmp_path / "void"), "--resume",
        ]) == 2
        # unreadable spec path
        assert main(["flow", str(tmp_path / "absent.yaml")]) == 2
        # malformed spec
        bad = tmp_path / "bad.yaml"
        bad.write_text("flow: x\nstages: []\n", encoding="utf-8")
        assert main(["flow", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_bench_writes_the_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_flow.json"
        assert main(["flow", "--bench", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "flow-bench: clean_match_beer" in printed
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert set(payload["stages"]) == {"detect", "impute", "align", "match"}
        assert payload["end_to_end"]["n_requests"] > 0


class TestFuzzCli:
    def test_fuzz_command_reports_and_passes(self, capsys):
        assert main(["fuzz", "--cases", "40", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "40 cases" in out and "corpus digest" in out
        assert "0 violation(s)" in out


class TestShardCli:
    def test_run_with_workers_and_shards(self, capsys):
        assert main([
            "run", "--dataset", "adult", "--size", "24",
            "--workers", "2", "--shards", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "adult / gpt-3.5" in out
        assert "sharded: 3 shard(s) over 2 worker(s)" in out
        assert "sequential" in out

    def test_single_shard_run_agrees_with_the_legacy_path(self, capsys):
        assert main(["run", "--dataset", "adult", "--size", "24"]) == 0
        reference = capsys.readouterr().out.splitlines()[0]
        assert main([
            "run", "--dataset", "adult", "--size", "24", "--shards", "1",
        ]) == 0
        sharded = capsys.readouterr().out.splitlines()[0]
        # identical headline: metric, coverage, tokens, cost, and hours —
        # a single-shard plan reproduces the legacy run bit-for-bit
        # (more shards legitimately re-batch, so only S=1 must agree)
        assert sharded == reference

    def test_sharded_journal_and_resume(self, tmp_path, capsys):
        workdir = tmp_path / "journals"
        argv = [
            "run", "--dataset", "adult", "--size", "24", "--shards", "2",
            "--journal", str(workdir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert f"shard journals under {workdir}" in first
        journals = sorted(p.name for p in workdir.glob("shard-*.journal"))
        assert journals == ["shard-0000.journal", "shard-0001.journal"]
        # replaying against the same journals reproduces the run
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_shard_bench_writes_the_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_shards.json"
        assert main([
            "shard-bench", "--out", str(out_path),
            "--size", "40", "--shards", "2", "--workers", "1", "2",
            "--decode-n", "50",
        ]) == 0
        printed = capsys.readouterr().out
        assert "shard scaling" in printed and "batch decode" in printed
        assert f"report written to {out_path}" in printed
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["scaling"]["identical"] is True
        assert payload["decode"]["identical"] is True
        assert [run["workers"] for run in payload["scaling"]["runs"]] == [1, 2]

    def test_flow_with_workers(self, capsys):
        assert main(["flow", "--reference", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "flow clean_match_beer: 4 stage(s)" in parallel
        # parallel stage execution is deterministic run to run
        assert main(["flow", "--reference", "--workers", "2"]) == 0
        assert capsys.readouterr().out == parallel
