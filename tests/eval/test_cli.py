"""Tests for the repro-eval command-line interface."""

import pytest

from repro.eval.__main__ import main


class TestCli:
    def test_table3_prints_measured_vs_paper(self, capsys):
        assert main(["table3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "(4.07)" in out   # the paper's token column appears
        assert "batch" in out

    def test_feature_selection_command(self, capsys):
        assert main(["feature-selection"]) == 0
        out = capsys.readouterr().out
        assert "74.1" in out and "90.3" in out

    def test_cluster_batching_command(self, capsys):
        assert main(["cluster-batching", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "random batching" in out
        assert "cluster batching" in out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])
