"""Shard scaling benchmark — multi-process fan-out + vectorized decode.

Writes ``BENCH_shards.json`` with the two curves the scale-out layer is
judged on:

- **worker scaling**: one fixed shard plan at workers {1, 2, 4, 8}.  The
  determinism half of the bar (merged payload bit-identical at every
  count) is asserted unconditionally; the wall-clock half (≥ 2x at 4
  workers) only where the host actually has 4 CPUs to scale onto.
- **batch decode**: vectorized vs scalar decode over 1k pipeline
  requests.  The ≥ 3x bar is algorithmic — shared-prefix parses and
  few-shot fits amortize across the batch — so it holds on any host.
"""

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.shard import run_shard_bench
from repro.shard.bench import render_bench

OUT_PATH = Path("BENCH_shards.json")


def test_shard_scaling_and_decode(benchmark, seed):
    payload = run_once(
        benchmark,
        run_shard_bench,
        out=OUT_PATH,
        size=240,
        n_shards=8,
        worker_counts=(1, 2, 4, 8),
        decode_n=1000,
        seed=seed,
    )

    print()
    print(render_bench(payload))

    scaling = payload["scaling"]
    assert scaling["identical"], (
        "merged payloads diverged across worker counts"
    )
    assert [run["workers"] for run in scaling["runs"]] == [1, 2, 4, 8]

    decode = payload["decode"]
    assert decode["identical"], "vectorized decode diverged from scalar"
    assert decode["speedup"] >= 3.0, (
        f"batch decode speedup {decode['speedup']:.2f}x is below the 3x bar"
    )

    # the written report carries the same numbers the harness returned
    report = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    assert report["scaling"]["identical"] is True
    assert report["decode"]["speedup"] == decode["speedup"]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="wall-clock scaling needs at least 4 CPUs",
)
def test_four_workers_double_throughput(benchmark, seed):
    payload = run_once(
        benchmark,
        run_shard_bench,
        out=OUT_PATH,
        size=240,
        n_shards=8,
        worker_counts=(1, 4),
        decode_n=10,
        seed=seed,
    )
    runs = {run["workers"]: run for run in payload["scaling"]["runs"]}
    assert runs[4]["speedup"] >= 2.0, (
        f"4 workers reached only {runs[4]['speedup']:.2f}x over 1"
    )
