"""Section 4.2 in-text — random vs cluster batching on Amazon-Google.

The paper reports F1 45.8 (random) -> 50.6 (cluster) for GPT-3.5 without
few-shot prompting.  The mechanism: homogeneous batches suffer less
cross-question interference.
"""

from benchmarks.conftest import run_once
from repro.core.batching import batch_homogeneity, make_batches
from repro.core.prep import PrepArtifacts
from repro.datasets import load_dataset
from repro.eval import experiments


def test_cluster_batching_amazon_google(benchmark, scale, seed):
    result = run_once(
        benchmark, experiments.run_cluster_batching, max(scale, 0.1), seed
    )
    paper = result.paper
    print()
    print("Cluster batching — Amazon-Google EM, GPT-3.5, zero-shot")
    print(f"  {result.label_a}:  {result.score_a * 100:.1f}  (paper {paper[0]})")
    print(f"  {result.label_b}: {result.score_b * 100:.1f}  (paper {paper[1]})")

    assert result.score_a is not None and result.score_b is not None
    # Ordinal claim, with slack for noise at reduced scale: clustering
    # does not hurt, and usually helps (paper: +4.8 points).
    assert result.score_b >= result.score_a - 0.03


def test_cluster_batches_are_homogeneous(benchmark, seed):
    """The mechanism beneath the F1 gain, measured directly."""
    dataset = load_dataset("amazon_google", size=300, seed=seed)
    instances = list(dataset.instances)

    def homogeneity_gap():
        # One artifact cache across all four calls: instances are
        # serialized and embedded once, not four times.
        prep = PrepArtifacts()
        random_batches = make_batches(
            instances, 15, mode="random", seed=seed, artifacts=prep
        )
        cluster_batches = make_batches(
            instances, 15, mode="cluster", seed=seed, artifacts=prep
        )
        return (
            batch_homogeneity(instances, cluster_batches, artifacts=prep)
            - batch_homogeneity(instances, random_batches, artifacts=prep)
        )

    gap = run_once(benchmark, homogeneity_gap)
    print(f"\nwithin-batch similarity gain from clustering: +{gap:.3f}")
    assert gap > 0.02
