"""Executor scaling smoke — sequential vs concurrent simulated makespan.

Reruns the Table 3 batch setting (Adult ED, GPT-3.5, no few-shot) through
the batch executor at 1 and 8 lanes.  Predictions must be bit-identical —
concurrency only reshapes the virtual timeline — while the 8-lane makespan
must land at or below half the sequential estimate (the acceptance bar;
list scheduling over 8 lanes typically lands near 1/8th).
"""

from benchmarks.conftest import run_once
from repro import PipelineConfig, Preprocessor, SimulatedLLM, load_dataset
from repro.eval.reporting import render_execution_report, render_table

#: full Table 3 run uses the Adult dataset's published size
FULL_SIZE = 1000


def _run(dataset, concurrency, seed):
    client = SimulatedLLM("gpt-3.5", seed=seed)
    config = PipelineConfig(
        model="gpt-3.5", fewshot=0, seed=seed, concurrency=concurrency
    )
    return Preprocessor(client, config).run(dataset)


def _sweep(scale, seed):
    size = max(120, int(FULL_SIZE * scale))
    dataset = load_dataset("adult", size=size)
    return {c: _run(dataset, c, seed) for c in (1, 2, 8)}


def test_concurrent_makespan_halves_sequential(benchmark, scale, seed):
    results = run_once(benchmark, _sweep, scale, seed)

    rows = [
        [
            str(c),
            f"{r.estimated_seconds:.1f}",
            f"{r.execution.sequential_s:.1f}",
            f"{r.execution.speedup:.2f}x",
            f"{r.execution.mean_utilization * 100:.0f}%",
        ]
        for c, r in sorted(results.items())
    ]
    print()
    print(render_table(
        "Executor scaling — Adult ED, GPT-3.5, no few-shot",
        ["lanes", "makespan s", "sequential s", "speedup", "mean util"],
        rows,
    ))
    print(render_execution_report(results[8].execution))

    sequential = results[1]
    concurrent = results[8]
    # Concurrency must not change what the pipeline predicts.
    assert concurrent.predictions == sequential.predictions
    assert concurrent.usage == sequential.usage
    # Acceptance bar: 8 lanes finish in at most half the sequential time.
    assert concurrent.estimated_seconds <= 0.5 * sequential.estimated_seconds
    # Two lanes already help.
    assert results[2].estimated_seconds < sequential.estimated_seconds
