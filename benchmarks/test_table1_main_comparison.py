"""Table 1 — comparison with baselines (accuracy for DI, F1 otherwise).

Regenerates the paper's main table row by row.  Each benchmark covers one
method across the datasets it applies to and prints ``measured (paper)``
cells.  Absolute numbers come from the simulated substrate; the claims
under reproduction are the orderings (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval import experiments
from repro.eval.reporting import render_table

_LLM_ROWS = ("gpt-3", "gpt-3.5", "gpt-4", "vicuna-13b")
_BASELINE_ROWS = ("holoclean", "holodetect", "imp", "smat", "magellan", "ditto")


def _applicable_datasets(method: str) -> tuple[str, ...]:
    if method in _LLM_ROWS:
        return experiments.TABLE1_DATASETS
    return tuple(experiments.PAPER_TABLE1.get(method, {}))


def _run_row(method: str, scale: float, seed: int) -> dict:
    return {
        name: experiments.run_table1_cell(method, name, scale=scale, seed=seed)
        for name in _applicable_datasets(method)
    }


def _print_row(method: str, cells: dict) -> None:
    rows = [[name, cells[name].measured_pct, cells[name].paper_pct]
            for name in cells]
    print()
    print(render_table(f"Table 1 row: {method}",
                       ["dataset", "measured", "paper"], rows))


@pytest.mark.parametrize("method", _BASELINE_ROWS)
def test_table1_baseline_row(benchmark, method, scale, seed):
    cells = run_once(benchmark, _run_row, method, scale, seed)
    _print_row(method, cells)
    for name, cell in cells.items():
        assert cell.measured is not None, f"{method} N/A on {name}"


@pytest.mark.parametrize("method", _LLM_ROWS)
def test_table1_llm_row(benchmark, method, scale, seed):
    cells = run_once(benchmark, _run_row, method, scale, seed)
    _print_row(method, cells)
    # Where the paper reports a score, we must report one too (and the
    # converse for Vicuna outside EM).
    for name, cell in cells.items():
        paper_applicable = (
            experiments.PAPER_TABLE1.get(method, {}).get(name) is not None
        )
        if method != "vicuna-13b":
            assert (cell.measured is not None) == paper_applicable or (
                cell.measured is not None
            )


def test_table1_headline_orderings(benchmark, scale, seed):
    """The table's headline: GPT-4 at/near the top of most columns."""

    def run():
        out = {}
        for name in ("restaurant", "synthea", "beer", "walmart_amazon"):
            out[name] = {
                method: experiments.run_table1_cell(method, name,
                                                    scale=scale, seed=seed)
                for method in ("gpt-3.5", "gpt-4")
            }
        return out

    grid = run_once(benchmark, run)
    wins = sum(
        1 for name in grid
        if grid[name]["gpt-4"].measured >= grid[name]["gpt-3.5"].measured - 0.03
    )
    assert wins >= 3
