"""Figure 1 — the framework itself, stage by stage.

Figure 1 is the paper's architecture diagram (no data series); this
benchmark makes it concrete by timing each block of the pipeline —
contextualization + prompt assembly, the LLM call, and answer parsing —
and asserting every block composes into correct end-to-end behaviour.
"""

import pytest

from benchmarks.conftest import run_once
from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.core.config import PipelineConfig as Config
from repro.core.parsing import parse_batch_answers
from repro.core.prompts import PromptBuilder
from repro.data.instances import Task
from repro.llm.base import CompletionRequest


@pytest.fixture(scope="module")
def setup():
    dataset = load_dataset("restaurant")
    builder = PromptBuilder(Task.DATA_IMPUTATION, Config(model="gpt-4"),
                            target_attribute="city")
    examples = dataset.sample_fewshot(10)
    client = SimulatedLLM("gpt-4")
    return dataset, builder, examples, client


def test_stage_prompt_assembly(benchmark, setup):
    dataset, builder, examples, __ = setup
    batch = list(dataset.instances[:12])
    prompt = benchmark(builder.build, batch, examples)
    assert prompt.expected_answers == 12


def test_stage_completion(benchmark, setup):
    dataset, builder, examples, client = setup
    batch = list(dataset.instances[:12])
    prompt = builder.build(batch, fewshot_examples=examples)
    request = CompletionRequest(messages=prompt.messages, model="gpt-4",
                                temperature=0.65)
    response = run_once(benchmark, client.complete, request)
    assert response.usage.prompt_tokens > 0


def test_stage_answer_parsing(benchmark, setup):
    dataset, builder, examples, client = setup
    batch = list(dataset.instances[:12])
    prompt = builder.build(batch, fewshot_examples=examples)
    request = CompletionRequest(messages=prompt.messages, model="gpt-4",
                                temperature=0.65)
    text = client.complete(request).text
    answers = benchmark(parse_batch_answers, text, Task.DATA_IMPUTATION, 12)
    assert len(answers) == 12


def test_full_pipeline_throughput(benchmark, setup):
    """Instances per second of the whole Figure-1 loop (simulated model)."""
    dataset, __, __, client = setup
    from repro.core.pipeline import Preprocessor

    preprocessor = Preprocessor(client, PipelineConfig(model="gpt-4"))
    result = run_once(benchmark, preprocessor.run, dataset)
    assert len(result.predictions) == len(dataset.instances)
