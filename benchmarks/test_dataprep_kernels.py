"""Data-prep kernel scaling — scalar vs vectorized embedding path.

Times ``HashingEmbedder.embed_all`` (the vectorized kernel behind cluster
batching) against ``embed_all_scalar`` (the row-by-row reference) on
record-style corpora of growing size, asserts the two produce bit-identical
matrices, and requires the vectorized path to be at least
``MIN_SPEEDUP_AT_10K``x faster at the largest size.  The k-means
convergence exit is timed on the resulting matrix as a secondary row.

Writes ``BENCH_dataprep.json`` (machine-readable: per-size wall times,
speedups, hash-cache occupancy, k-means iteration counts) for CI artifact
upload.  Environment knobs:

- ``REPRO_DATAPREP_SIZES`` — comma-separated corpus sizes
  (default ``100,1000,10000``).  CI's smoke job sets ``100``; the speedup
  floor is only asserted when a size >= 10000 is included, because the
  vectorized path's fixed setup cost dominates tiny inputs.
- ``REPRO_DATAPREP_OUT`` — output path (default ``BENCH_dataprep.json``).
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.reporting import render_table
from repro.ml.kmeans import KMeans
from repro.text.embeddings import HashingEmbedder, clear_hash_cache, hash_cache_size

#: required scalar/vectorized wall-clock ratio at the 10k corpus
MIN_SPEEDUP_AT_10K = 5.0

DEFAULT_SIZES = (100, 1_000, 10_000)

_WORDS = (
    "stone brewing pale ale india lager stout porter amber wheat "
    "double imperial session hazy crisp malty hoppy citrus pine resin "
    "san diego portland denver chicago boston austin seattle tampa"
).split()


def _sizes():
    raw = os.environ.get("REPRO_DATAPREP_SIZES", "")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _make_corpus(n, seed):
    """Record serializations shaped like the EM/ED prompt inputs."""
    rng = np.random.default_rng(seed)
    corpus = []
    for _ in range(n):
        name = " ".join(rng.choice(_WORDS, size=3))
        style = f"{rng.choice(_WORDS)} ale"
        abv = f"{rng.uniform(3.5, 12.0):.1f}"
        corpus.append(f'[name: "{name}", style: "{style}", abv: "{abv}"]')
    return corpus


def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _measure(embedder, corpus):
    """Cold/warm vectorized and scalar wall times plus both matrices."""
    # Tiny calls first: numpy's lazy first-use setup (ufunc dispatch,
    # sliding-window machinery) must not be billed to either path.
    embedder.embed_all(corpus[:32])
    embedder.embed_all_scalar(corpus[:8])

    clear_hash_cache()
    started = time.perf_counter()
    cold_matrix = embedder.embed_all(corpus)
    cold_s = time.perf_counter() - started

    warm_matrix, warm_s = _best_of(lambda: embedder.embed_all(corpus), rounds=3)
    scalar_matrix, scalar_s = _best_of(
        lambda: embedder.embed_all_scalar(corpus), rounds=1
    )
    return {
        "cold_s": cold_s, "warm_s": warm_s, "scalar_s": scalar_s,
        "cold_matrix": cold_matrix, "warm_matrix": warm_matrix,
        "scalar_matrix": scalar_matrix, "cache_terms": hash_cache_size(),
    }


def _sweep(sizes, seed):
    embedder = HashingEmbedder()
    out = {}
    for n in sizes:
        corpus = _make_corpus(n, seed)
        cell = _measure(embedder, corpus)

        matrix = cell["warm_matrix"]
        k = max(2, min(16, n // 20))
        started = time.perf_counter()
        early = KMeans(k=k, seed=seed).fit(matrix)
        cell["kmeans_early_s"] = time.perf_counter() - started
        started = time.perf_counter()
        full = KMeans(k=k, seed=seed, early_stop=False).fit(matrix)
        cell["kmeans_full_s"] = time.perf_counter() - started
        cell["kmeans_k"] = k
        cell["kmeans_n_iter_early"] = early.n_iter_
        cell["kmeans_n_iter_full"] = full.n_iter_
        cell["kmeans_labels_equal"] = bool(
            np.array_equal(early.labels_, full.labels_)
        )
        out[n] = cell
    return out


def test_vectorized_kernels_scale(benchmark, seed):
    sizes = _sizes()
    results = run_once(benchmark, _sweep, sizes, seed)

    rows, payload = [], {}
    for n, cell in sorted(results.items()):
        speedup_cold = cell["scalar_s"] / cell["cold_s"]
        speedup_warm = cell["scalar_s"] / cell["warm_s"]
        rows.append([
            str(n),
            f"{cell['scalar_s'] * 1e3:.1f}",
            f"{cell['cold_s'] * 1e3:.1f}",
            f"{cell['warm_s'] * 1e3:.1f}",
            f"{speedup_warm:.1f}x",
            f"{cell['kmeans_n_iter_early']}/{cell['kmeans_n_iter_full']}",
        ])
        payload[f"n_{n}"] = {
            "scalar_s": cell["scalar_s"],
            "vectorized_cold_s": cell["cold_s"],
            "vectorized_warm_s": cell["warm_s"],
            "speedup_cold": speedup_cold,
            "speedup_warm": speedup_warm,
            "hash_cache_terms": cell["cache_terms"],
            "kmeans_k": cell["kmeans_k"],
            "kmeans_early_s": cell["kmeans_early_s"],
            "kmeans_full_s": cell["kmeans_full_s"],
            "kmeans_n_iter_early": cell["kmeans_n_iter_early"],
            "kmeans_n_iter_full": cell["kmeans_n_iter_full"],
        }
    payload["meta"] = {
        "sizes": list(sizes),
        "seed": seed,
        "min_speedup_at_10k": MIN_SPEEDUP_AT_10K,
        "embedder": {"dim": HashingEmbedder().dim,
                     "ngram": HashingEmbedder().ngram},
    }
    print()
    print(render_table(
        "Data-prep kernels — scalar vs vectorized embed_all",
        ["n", "scalar ms", "cold ms", "warm ms", "speedup", "km iters"],
        rows,
    ))

    out_path = os.environ.get("REPRO_DATAPREP_OUT", "BENCH_dataprep.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    for n, cell in results.items():
        # The optimization contract: faster, not different.
        assert (cell["cold_matrix"] == cell["scalar_matrix"]).all()
        assert (cell["warm_matrix"] == cell["scalar_matrix"]).all()
        assert cell["kmeans_labels_equal"]
        assert cell["kmeans_n_iter_early"] <= cell["kmeans_n_iter_full"]

    large = [n for n in results if n >= 10_000]
    for n in large:
        speedup = results[n]["scalar_s"] / results[n]["warm_s"]
        assert speedup >= MIN_SPEEDUP_AT_10K, (
            f"vectorized embed_all only {speedup:.1f}x faster than scalar "
            f"at n={n}; floor is {MIN_SPEEDUP_AT_10K}x"
        )
