"""Observability overhead — traced vs untraced pipeline runs.

Reruns the Adult ED setting with ``observability`` off and on at 1 and 8
lanes.  The virtual outputs (predictions, tokens, makespan) must be
bit-identical — tracing observes the timeline, it never shapes it — and
the wall-clock overhead of recording spans and metrics must stay small.

Besides the printed table, the run writes ``BENCH_observability.json``
(machine-readable: tokens, makespans, span counts, and the measured
trace overhead per configuration) for CI artifact upload.  Set
``REPRO_BENCH_OUT`` to change the output path.
"""

import json
import os
import time

from benchmarks.conftest import run_once
from repro import PipelineConfig, Preprocessor, SimulatedLLM, load_dataset
from repro.eval.reporting import render_table

#: full Table 3 run uses the Adult dataset's published size
FULL_SIZE = 1000

#: traced runs may take at most this multiple of the untraced wall-clock
MAX_OVERHEAD_RATIO = 2.0


def _run(dataset, concurrency, seed, observability):
    client = SimulatedLLM("gpt-3.5", seed=seed)
    config = PipelineConfig(
        model="gpt-3.5", fewshot=0, seed=seed,
        concurrency=concurrency, observability=observability,
    )
    started = time.perf_counter()
    result = Preprocessor(client, config).run(dataset)
    return result, time.perf_counter() - started


def _sweep(scale, seed):
    size = max(120, int(FULL_SIZE * scale))
    dataset = load_dataset("adult", size=size)
    out = {}
    for concurrency in (1, 8):
        plain, plain_s = _run(dataset, concurrency, seed, False)
        traced, traced_s = _run(dataset, concurrency, seed, True)
        out[concurrency] = {
            "plain": plain, "plain_s": plain_s,
            "traced": traced, "traced_s": traced_s,
        }
    return out


def test_tracing_is_free_on_the_virtual_clock(benchmark, scale, seed):
    results = run_once(benchmark, _sweep, scale, seed)

    rows, payload = [], {}
    for concurrency, cell in sorted(results.items()):
        plain, traced = cell["plain"], cell["traced"]
        overhead = (
            cell["traced_s"] / cell["plain_s"] if cell["plain_s"] > 0 else 1.0
        )
        n_spans = traced.observation.tracer.n_spans
        rows.append([
            str(concurrency),
            f"{plain.estimated_seconds:.1f}",
            f"{traced.estimated_seconds:.1f}",
            str(n_spans),
            f"{overhead:.2f}x",
        ])
        payload[f"lanes_{concurrency}"] = {
            "tokens": plain.usage.total_tokens,
            "makespan_s": plain.estimated_seconds,
            "traced_makespan_s": traced.estimated_seconds,
            "n_spans": n_spans,
            "plain_wall_s": cell["plain_s"],
            "traced_wall_s": cell["traced_s"],
            "trace_overhead_ratio": overhead,
        }
    print()
    print(render_table(
        "Observability overhead — Adult ED, GPT-3.5, no few-shot",
        ["lanes", "makespan s", "traced s", "spans", "wall overhead"],
        rows,
    ))

    out_path = os.environ.get("REPRO_BENCH_OUT", "BENCH_observability.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    for cell in results.values():
        plain, traced = cell["plain"], cell["traced"]
        # Tracing must not perturb the simulation in any way.
        assert traced.predictions == plain.predictions
        assert traced.usage == plain.usage
        assert traced.estimated_seconds == plain.estimated_seconds
        # ...and must record something when enabled.
        assert traced.observation.tracer.n_spans > 0
        assert plain.observation is None
    # Wall-clock overhead stays bounded (generous: CI machines are noisy).
    slowest = max(
        cell["traced_s"] / cell["plain_s"]
        for cell in results.values() if cell["plain_s"] > 0
    )
    assert slowest <= MAX_OVERHEAD_RATIO, (
        f"tracing overhead {slowest:.2f}x exceeds {MAX_OVERHEAD_RATIO}x"
    )
