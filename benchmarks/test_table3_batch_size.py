"""Table 3 — batch-size sweep on Adult ED (GPT-3.5, no few-shot).

Regenerates the F1 / tokens / cost / time columns.  Tokens are counted
from the actual prompt text, so the amortization of the instruction block
is mechanical.  At ``scale`` below 1.0 the absolute token/cost/time values
shrink proportionally; the paper's numbers correspond to scale=1.0.
"""

from benchmarks.conftest import run_once
from repro.eval import experiments
from repro.eval.reporting import render_table


def test_table3_batch_size_sweep(benchmark, scale, seed):
    results = run_once(
        benchmark, experiments.run_table3, min(scale, 0.3), seed
    )

    rows = []
    for result in results:
        paper = result.paper or ("?", "?", "?", "?")
        f1 = "N/A" if result.f1 is None else f"{result.f1 * 100:.1f}"
        rows.append([
            str(result.batch_size),
            f"{f1} ({paper[0]})",
            f"{result.tokens_m:.3f} ({paper[1]})",
            f"{result.cost_usd:.2f} ({paper[2]})",
            f"{result.hours:.2f} ({paper[3]})",
        ])
    print()
    print(render_table(
        "Table 3 — Adult ED, GPT-3.5, no few-shot (paper numbers: scale=1.0)",
        ["batch", "F1% (paper)", "tokens M (paper)", "cost $ (paper)",
         "time h (paper)"],
        rows,
    ))

    by_batch = {r.batch_size: r for r in results}
    # Monotone-ish savings: batch 15 well under half of batch 1's tokens in
    # the paper (4.07 -> 1.49); we require at least a 25% cut.
    assert by_batch[15].tokens_m < by_batch[1].tokens_m * 0.75
    assert by_batch[15].cost_usd < by_batch[1].cost_usd * 0.75
    assert by_batch[15].hours < by_batch[1].hours * 0.6
    # Tokens decrease monotonically with batch size.
    tokens = [by_batch[b].tokens_m for b in (1, 2, 4, 8, 15)]
    assert tokens == sorted(tokens, reverse=True)
    # Quality only fluctuates (paper: 44.0..46.3).
    scores = [by_batch[b].f1 for b in (1, 2, 4, 8, 15)]
    assert max(scores) - min(scores) < 0.15
