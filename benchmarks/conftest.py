"""Benchmark harness configuration.

Every benchmark regenerates one published table or in-text experiment and
prints the measured-vs-paper rows.  pytest-benchmark times the run; the
scientific payload is the printed table.

Dataset sizes are scaled by ``REPRO_BENCH_SCALE`` (default 0.15) so the
suite completes in minutes; run with ``REPRO_BENCH_SCALE=1.0`` for the
published sizes.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


@pytest.fixture(scope="session")
def seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def serve_requests() -> int:
    """Trace length for the serving benchmark; scaled independently of
    dataset size (``REPRO_BENCH_SERVE_REQUESTS``, default 20000)."""
    return int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "20000"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
