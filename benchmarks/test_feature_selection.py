"""Section 4.2 in-text — feature selection on Beer (GPT-4, zero-shot).

The paper reports F1 74.1 before and 90.3 after dropping the noisy
description column.  The mechanism here: each rating site writes its own
blurb, so the column misleads uniform attribute weighting.
"""

from benchmarks.conftest import run_once
from repro.eval import experiments


def test_feature_selection_beer(benchmark, seed):
    result = run_once(benchmark, experiments.run_feature_selection, 1.0, seed)
    paper = result.paper
    print()
    print("Feature selection — Beer EM, GPT-4, zero-shot")
    print(f"  {result.label_a}:  {result.score_a * 100:.1f}  (paper {paper[0]})")
    print(f"  {result.label_b}: {result.score_b * 100:.1f}  (paper {paper[1]})")

    assert result.score_a is not None and result.score_b is not None
    # The claim: selection helps substantially (paper: +16.2 points).
    assert result.score_b > result.score_a + 0.05
