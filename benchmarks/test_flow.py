"""Flow benchmark — per-stage and end-to-end cost of the reference flow.

Runs the shipped detect → impute → align → match reference flow on the
simulated clock and writes ``BENCH_flow.json`` with tokens, request
counts, and latency for every stage plus the end-to-end roll-up.  All
quantities come from the deterministic token meter, so the file is
byte-reproducible and the printed table doubles as a regression anchor:
a prompt-assembly change that bloats one stage's token bill shows up as
a diff in this artifact.
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.eval.reporting import render_table
from repro.flow import run_flow_bench

OUT_PATH = Path("BENCH_flow.json")


def test_reference_flow_cost_breakdown(benchmark):
    payload = run_once(benchmark, run_flow_bench, out_path=OUT_PATH)

    rows = []
    for name, stage in payload["stages"].items():
        rows.append([
            name,
            stage["kind"],
            str(stage["n_requests"]),
            str(stage["prompt_tokens"] + stage["completion_tokens"]),
            f"{stage['estimated_seconds']:.2f}",
            str(stage["n_quarantined"]),
        ])
    totals = payload["end_to_end"]
    rows.append([
        "end-to-end", "-",
        str(totals["n_requests"]),
        str(totals["prompt_tokens"] + totals["completion_tokens"]),
        f"{totals['estimated_seconds']:.2f}",
        "-",
    ])
    print()
    print(render_table(
        f"Flow — {payload['flow']}, Beer 30+30 rows, GPT-3.5, "
        f"concurrency {payload['concurrency']}",
        ["stage", "kind", "requests", "tokens", "sim s", "quarantined"],
        rows,
    ))

    # the roll-up must equal the sum of its stages
    for key in ("prompt_tokens", "completion_tokens", "n_requests"):
        assert totals[key] == sum(s[key] for s in payload["stages"].values())
    # the flow did real work at every stage
    assert payload["outputs"]["flagged"] > 0
    assert payload["outputs"]["imputed"] > 0
    assert payload["outputs"]["correspondences"] > 0
    assert totals["n_requests"] > 0

    # and the artifact on disk is the canonical form of what we measured
    written = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    assert written == payload
