"""Resilience benchmark — what adaptivity buys under a scripted outage.

Replays the same Adult ED workload against the same scripted degradation
(latency brownout, 429 storm, then a long blackout) through three arms —
unmitigated, the full resilient stack, and the resilient stack with
hedging off — and writes ``BENCH_resilience.json``.  The acceptance bar:
the resilient arm completes with >= 90% coverage while the non-adaptive
executor quarantines at least 3x more instances, and hedging improves
the p95 call-latency tail.

The dataset size is fixed (not ``REPRO_BENCH_SCALE``-scaled): the outage
windows sit at fixed virtual instants, so the workload must outlast them
or no arm ever meets the blackout.  Everything runs on the simulated
clock, making the assertions exact rather than flaky thresholds.
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.eval.reporting import render_table
from repro.resilience import run_resilience_bench

OUT_PATH = Path("BENCH_resilience.json")

#: fixed workload: long enough that the t=33s blackout lands mid-run
SIZE = 360


def test_resilient_stack_survives_the_outage(benchmark, seed):
    payload = run_once(
        benchmark,
        run_resilience_bench,
        out_path=OUT_PATH,
        size=SIZE,
        seed=seed,
    )

    def _row(arm: str, summary: dict) -> list[str]:
        return [
            arm,
            f"{summary['coverage'] * 100:.1f}%",
            str(summary["n_quarantined"]),
            f"{summary['p95_call_latency_s']:.1f}",
            f"{summary['makespan_s']:.0f}",
            str(summary["n_requests"]),
        ]

    unmitigated = payload["unmitigated"]
    resilient = payload["resilient"]
    unhedged = payload["unhedged"]
    print()
    print(render_table(
        f"Resilience — scripted brownout + blackout, Adult ED, "
        f"{payload['config']['size']} instance(s), "
        f"concurrency {payload['config']['concurrency']}",
        ["arm", "coverage", "quarantined", "p95 s", "makespan s", "calls"],
        [
            _row("unmitigated", unmitigated),
            _row("resilient", resilient),
            _row("unhedged", unhedged),
        ],
    ))
    comparison = payload["comparison"]
    print(
        f"quarantine ratio {comparison['quarantine_ratio']:.1f}x, "
        f"{comparison['hedge_wins']} hedge win(s), "
        f"hedged p95 gain {comparison['hedge_tail_gain_s']:.2f}s"
    )

    # The ISSUE acceptance bar, asserted exactly.
    assert resilient["coverage"] >= 0.9
    assert unmitigated["n_quarantined"] >= 3 * max(
        1, resilient["n_quarantined"]
    )
    assert comparison["hedge_wins"] > 0
    assert resilient["p95_call_latency_s"] <= unhedged["p95_call_latency_s"]
    # the failover router actually routed around the outage
    assert resilient["router"]["n_failovers"] > 0

    # the written report carries the same numbers the harness returned
    report = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    assert report["comparison"] == payload["comparison"]
