"""Table 2 — prompt-component ablation with GPT-3.5.

Regenerates all six ablation rows over a representative dataset column set
(one per task plus the two in-text EM datasets) and asserts the orderings
the paper's Section 4.2 narrates.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.config import ABLATION_ROWS
from repro.eval import experiments
from repro.eval.reporting import render_table

#: one column per task + the EM datasets discussed in the text
_COLUMNS = ("adult", "buy", "synthea", "amazon_google", "beer")


def _run_grid(scale: float, seed: int) -> dict:
    return {
        row: {
            name: experiments.run_table2_cell(row, name, scale=scale, seed=seed)
            for name in _COLUMNS
        }
        for row, __ in ABLATION_ROWS
    }


def test_table2_ablation_grid(benchmark, scale, seed):
    grid = run_once(benchmark, _run_grid, scale, seed)

    rows = [
        [label] + [str(grid[label][name]) for name in _COLUMNS]
        for label, __ in ABLATION_ROWS
    ]
    print()
    print(render_table("Table 2 — GPT-3.5 ablation, measured (paper)",
                       ["components"] + list(_COLUMNS), rows))

    def measured(row, name):
        value = grid[row][name].measured
        assert value is not None, f"{row}/{name} came back N/A"
        return value

    # ED: few-shot helps, reasoning helps further (25.9 -> 59.3 -> 92.0).
    assert measured("ZS-T+FS", "adult") > measured("ZS-T", "adult")
    assert measured("ZS-T+FS+B+ZS-R", "adult") > measured("ZS-T+FS+B", "adult")
    # SM: reasoning without examples collapses (17.4 -> 5.9).
    assert measured("ZS-T+B+ZS-R", "synthea") < measured("ZS-T+B", "synthea")
    # SM: few-shot is the big lift (18.2 -> 57.1).
    assert measured("ZS-T+FS", "synthea") > measured("ZS-T", "synthea") + 0.1
    # DI stays high throughout (>= 80 everywhere in the paper).
    for row, __ in ABLATION_ROWS:
        assert measured(row, "buy") > 0.7
    # The best rows sit at/near the top of each column.
    for name in _COLUMNS:
        best_row = max(ABLATION_ROWS, key=lambda r: measured(r[0], name))[0]
        assert "FS" in best_row or name == "amazon_google"
