"""Serving benchmark — online batch coalescing vs one-prompt-per-request.

Replays one Pareto-skewed 3-tenant trace (Adult ED, GPT-3.5) through the
coalescing service and through the uncoalesced baseline (batch size 1,
answer cache disabled) and writes ``BENCH_serving.json``.  The acceptance
bar is the paper's Table 3 amortization measured online: coalesced
serving must cut per-served-request token cost by at least 2x.  The
baseline pays one completion call per request, so it replays only a
prefix of the trace — its marginal cost is constant, which keeps the
ratio exact (and conservative for the coalesced side).
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.eval.reporting import render_table
from repro.serving import run_serve_bench

OUT_PATH = Path("BENCH_serving.json")


def test_coalescing_halves_token_cost(benchmark, serve_requests, seed):
    payload = run_once(
        benchmark,
        run_serve_bench,
        out_path=OUT_PATH,
        n_requests=serve_requests,
        seed=seed,
        baseline_requests=min(2000, serve_requests),
    )

    def _row(mode: str, summary: dict) -> list[str]:
        per_request = summary["total_tokens"] / max(summary["n_served"], 1)
        return [
            mode,
            f"{summary['p50_latency_s']:.3f}",
            f"{summary['p99_latency_s']:.3f}",
            f"{summary['throughput_rps']:.1f}",
            f"{summary['coalesce_rate']:.3f}",
            f"{summary['cache_hit_rate']:.3f}",
            f"{per_request:.0f}",
        ]

    print()
    print(render_table(
        f"Serving — {payload['config']['n_requests']} request(s), "
        f"{payload['config']['n_tenants']} tenant(s), Adult ED, GPT-3.5",
        ["mode", "p50 s", "p99 s", "req/s", "coalesce", "cache hit",
         "tok/req"],
        [
            _row("coalesced", payload["coalesced"]),
            _row("uncoalesced", payload["uncoalesced"]),
        ],
    ))
    print(f"token reduction: {payload['token_reduction']:.1f}x")

    # the written report carries the same numbers the harness returned
    report = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    assert report["token_reduction"] == payload["token_reduction"]
    for key in (
        "p50_latency_s", "p99_latency_s", "throughput_rps",
        "coalesce_rate", "cache_hit_rate",
    ):
        assert report[key] == payload["coalesced"][key]

    coalesced = payload["coalesced"]
    assert coalesced["n_served"] + coalesced["n_rejected"] == serve_requests
    # Acceptance bar: >= 2x cheaper per served request than uncoalesced.
    assert payload["token_reduction"] >= 2.0
