"""Ablations of the reproduction's own design choices (DESIGN.md §5).

The simulated models' competence knobs are the reproduction's scientific
core: each knob must move exactly the metric it claims to explain.  These
benches sweep one knob at a time with everything else frozen and assert
the monotone response — the mechanism-level validation that separates a
competence model from a lookup table.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro import PipelineConfig, SimulatedLLM, load_dataset
from repro.eval import evaluate_pipeline
from repro.eval.reporting import render_table
from repro.llm.profiles import get_profile


def _score_with(profile, dataset, config):
    client = SimulatedLLM(profile)
    run = evaluate_pipeline(client, config, dataset)
    return run.score if run.score is not None else 0.0


def _sweep(knob: str, values, dataset_name: str, size: int, config):
    base = get_profile(config.model)
    dataset = load_dataset(dataset_name, size=size)
    scores = []
    for value in values:
        profile = replace(base, **{knob: value})
        scores.append(_score_with(profile, dataset, config))
    return scores


def test_knowledge_coverage_drives_imputation(benchmark, seed):
    """More world knowledge -> more imputed cities; nothing else changes."""
    values = (0.2, 0.5, 0.8, 1.0)
    scores = run_once(
        benchmark, _sweep, "knowledge_coverage", values, "restaurant", 86,
        PipelineConfig(model="gpt-4", seed=seed),
    )
    print()
    print(render_table(
        "knowledge_coverage -> restaurant DI accuracy",
        ["coverage", "accuracy"],
        [[str(v), f"{s * 100:.1f}"] for v, s in zip(values, scores)],
    ))
    assert scores[-1] > scores[0] + 0.3
    assert all(b >= a - 0.05 for a, b in zip(scores, scores[1:]))


def test_concept_coverage_drives_schema_matching(benchmark, seed):
    """Specialist concept recall is what separates models on Synthea."""
    values = (0.0, 0.4, 0.8)
    scores = run_once(
        benchmark, _sweep, "concept_coverage", values, "synthea", 300,
        PipelineConfig(model="gpt-4", seed=seed),
    )
    print()
    print(render_table(
        "concept_coverage -> synthea SM F1",
        ["coverage", "F1"],
        [[str(v), f"{s * 100:.1f}"] for v, s in zip(values, scores)],
    ))
    assert scores[-1] > scores[0] + 0.1


def test_reasoning_strength_drives_error_detection(benchmark, seed):
    """The careful path (target confirmation, cross-field rules) is what
    chain-of-thought buys on ED."""
    values = (0.1, 0.5, 0.95)
    scores = run_once(
        benchmark, _sweep, "reasoning_strength", values, "adult", 400,
        PipelineConfig(model="gpt-4", seed=seed),
    )
    print()
    print(render_table(
        "reasoning_strength -> adult ED F1",
        ["strength", "F1"],
        [[str(v), f"{s * 100:.1f}"] for v, s in zip(values, scores)],
    ))
    assert scores[-1] > scores[0] + 0.08
    assert all(b >= a - 0.03 for a, b in zip(scores, scores[1:]))


def test_decision_noise_erodes_entity_matching(benchmark, seed):
    """Noise flips near-boundary pairs; the ceiling datasets feel it most."""
    values = (0.02, 0.15, 0.35)
    scores = run_once(
        benchmark, _sweep, "decision_noise", values, "beer", 91,
        PipelineConfig(model="gpt-4", seed=seed),
    )
    print()
    print(render_table(
        "decision_noise -> beer EM F1",
        ["noise", "F1"],
        [[str(v), f"{s * 100:.1f}"] for v, s in zip(values, scores)],
    ))
    assert scores[0] > scores[-1] + 0.05


def test_zero_shot_calibration_drives_the_ablation_gap(benchmark, seed):
    """Calibration only matters when there are no examples to re-fit from:
    the zero-shot score moves, the few-shot score does not."""
    base = get_profile("gpt-3.5")
    dataset = load_dataset("adult", size=300)

    def run():
        out = {}
        for calibration in (0.2, 0.9):
            profile = replace(base, zero_shot_calibration=calibration)
            zs = _score_with(
                profile, dataset,
                PipelineConfig(model="gpt-3.5", fewshot=0, reasoning=False,
                               seed=seed),
            )
            fs = _score_with(
                profile, dataset,
                PipelineConfig(model="gpt-3.5", reasoning=False, seed=seed),
            )
            out[calibration] = (zs, fs)
        return out

    out = run_once(benchmark, run)
    print()
    print(render_table(
        "zero_shot_calibration -> adult ED F1 (ZS vs FS)",
        ["calibration", "zero-shot", "few-shot"],
        [[str(c), f"{zs * 100:.1f}", f"{fs * 100:.1f}"]
         for c, (zs, fs) in out.items()],
    ))
    zs_gap = out[0.9][0] - out[0.2][0]
    fs_gap = abs(out[0.9][1] - out[0.2][1])
    assert zs_gap > 0.1          # calibration moves the zero-shot score...
    assert fs_gap < zs_gap       # ...far more than the few-shot score
